//! MapReduce implementations of Algorithm 2 (`MIS1`, Theorem 3.3) and
//! Algorithm 6 (`MIS2`, Theorem A.3): hungry-greedy maximal independent
//! set.
//!
//! Layout: vertices with adjacency lists are hash-partitioned
//! (`O(n^{1+µ})` words per machine w.h.p.); each machine also keeps a
//! removed-set bitmap (`⌈n/64⌉` words) refreshed by broadcast deltas, from
//! which alive degrees are maintained locally. Sampled heavy vertices send
//! their *alive* neighbour lists to the central machine — bounded by their
//! degree class — which is all the central machine needs to update
//! `I`/`N⁺(I)` and re-evaluate candidates mid-round.

use mrlr_graph::{Graph, VertexId};
use mrlr_mapreduce::{
    Bitset, Cluster, Metrics, MrError, MrResult, PayloadBatch, PayloadSink, WordSized,
};

use crate::hungry::mis::{degree_class, group_choice, MisParams, MIS_RNG_TAG};
use crate::mr::{dist_cache, MrConfig};
use crate::types::SelectionResult;

#[derive(Clone)]
pub(crate) struct VertexRec {
    pub v: VertexId,
    /// Sorted neighbour ids.
    pub nbrs: Vec<VertexId>,
    pub alive: bool,
    pub d_alive: usize,
}

impl WordSized for VertexRec {
    fn words(&self) -> usize {
        3 + self.nbrs.words()
    }
}

#[derive(Clone)]
pub(crate) struct MisChunk {
    pub recs: Vec<VertexRec>,
    pub removed: Bitset,
}

impl WordSized for MisChunk {
    fn words(&self) -> usize {
        1 + self.recs.iter().map(WordSized::words).sum::<usize>() + self.removed.words()
    }
}

impl MisChunk {
    /// Applies a removal delta: marks removed vertices, zeroes their
    /// degrees, decrements neighbours' alive degrees. `delta` sorted.
    /// Membership runs through a round-local [`Bitset`] so the adjacency
    /// walk is O(1) per neighbour instead of a binary search per edge.
    pub fn apply_delta(&mut self, delta: &[VertexId]) {
        let mut delta_bits = Bitset::new(self.removed.len());
        for &v in delta {
            delta_bits.set(v as usize);
        }
        self.removed.union_with(&delta_bits);
        for rec in &mut self.recs {
            if !rec.alive {
                continue;
            }
            if delta_bits.get(rec.v as usize) {
                rec.alive = false;
                rec.d_alive = 0;
            } else {
                rec.d_alive -= rec
                    .nbrs
                    .iter()
                    .filter(|&&x| delta_bits.get(x as usize))
                    .count();
            }
        }
    }

    /// Streams a record's alive neighbours (via the replicated removed
    /// bitmap) into a payload sink under `head` — the zero-alloc
    /// replacement for the old `alive_nbrs(...) -> Vec<VertexId>`, which
    /// allocated one list per sampled vertex per round.
    pub fn sink_alive_nbrs<H>(&self, sink: &mut PayloadSink<H, VertexId>, head: H, rec: &VertexRec)
    where
        H: Copy + WordSized,
    {
        let mut w = sink.begin(head);
        for &x in &rec.nbrs {
            if !self.removed.get(x as usize) {
                w.push(x);
            }
        }
    }
}

pub(crate) fn build_chunks(g: &Graph, cfg: &MrConfig) -> Vec<MisChunk> {
    // MIS1 and MIS2 partition vertices identically, so within a batch the
    // two registry keys share one cached snapshot per instance + shape.
    let key = dist_cache::DistKey::new(0x006d_6973, g, (g.n(), g.m()), cfg);
    dist_cache::get_or_build(key, || {
        let adj = g.neighbours();
        let mut chunks: Vec<MisChunk> = (0..cfg.machines)
            .map(|_| MisChunk {
                recs: Vec::new(),
                removed: Bitset::new(g.n()),
            })
            .collect();
        for v in 0..g.n() {
            let mut nbrs = adj[v].clone();
            nbrs.sort_unstable();
            chunks[cfg.place(v as u64)].recs.push(VertexRec {
                v: v as VertexId,
                d_alive: nbrs.len(),
                nbrs,
                alive: true,
            });
        }
        chunks
    })
}

/// The central machine's view of this round's additions: processes a
/// sampled group member, returning the removal delta it causes.
struct CentralRound {
    /// Vertices removed this round (a [`Bitset`] for O(1) membership).
    removed_now: Bitset,
    delta: Vec<VertexId>,
    added: Vec<VertexId>,
}

impl CentralRound {
    fn new(n: usize) -> Self {
        CentralRound {
            removed_now: Bitset::new(n),
            delta: Vec::new(),
            added: Vec::new(),
        }
    }

    fn current_degree(&self, alive_list: &[VertexId]) -> usize {
        alive_list
            .iter()
            .filter(|&&w| !self.removed_now.get(w as usize))
            .count()
    }

    fn add(&mut self, v: VertexId, alive_list: &[VertexId]) {
        debug_assert!(!self.removed_now.get(v as usize));
        self.added.push(v);
        self.removed_now.set(v as usize);
        self.delta.push(v);
        for &w in alive_list {
            if self.removed_now.set(w as usize) {
                self.delta.push(w);
            }
        }
    }
}

/// Per-sample fixed-width head on the payload plane: `(class, group, v)`;
/// the variable-size alive-neighbour list rides in the flat element arena.
/// Word count (3 + 1 + len) is identical to the `(u64, u64, VertexId,
/// Vec<VertexId>)` tuple it replaced, so metrics and goldens don't move.
type SampleHead = (u64, u64, VertexId);

/// Processes gathered samples group-by-group, `accept(class)` giving the
/// degree threshold; returns the removal delta. Ordering matches the
/// in-memory drivers: groups ascending, members ascending, max current
/// degree wins (first max = smallest id). The batch stays flat — sorting
/// permutes an index column, never the neighbour lists.
fn process_groups(
    sample: &PayloadBatch<SampleHead, VertexId>,
    round: &mut CentralRound,
    accept: impl Fn(u64) -> f64,
) {
    // `(class, group, v)` keys are unique (a vertex samples at most once),
    // so the index sort reproduces the old in-place message sort exactly.
    let mut order: Vec<usize> = (0..sample.len()).collect();
    order.sort_unstable_by_key(|&i| sample.head(i));
    let mut idx = 0usize;
    while idx < order.len() {
        let (c, gid, _) = sample.head(order[idx]);
        let mut best: Option<(usize, usize)> = None; // (degree, batch index)
        while idx < order.len() {
            let (c2, g2, v) = sample.head(order[idx]);
            if (c2, g2) != (c, gid) {
                break;
            }
            if !round.removed_now.get(v as usize) {
                let d = round.current_degree(sample.payload(order[idx]));
                if (d as f64) >= accept(c) {
                    best = match best {
                        None => Some((d, order[idx])),
                        Some((bd, _)) if d > bd => Some((d, order[idx])),
                        other => other,
                    };
                }
            }
            idx += 1;
        }
        if let Some((_, bi)) = best {
            let (_, _, v) = sample.head(bi);
            round.add(v, sample.payload(bi));
        }
    }
}

/// The final central round: gathers the residual graph and finishes with
/// the greedy MIS in ascending vertex order. Returns the chosen vertices.
fn central_finish(cluster: &mut Cluster<MisChunk>, n: usize) -> MrResult<Vec<VertexId>> {
    let residual: PayloadBatch<VertexId, VertexId> =
        cluster.gather_payload(|_, s: &mut MisChunk, sink| {
            for rec in &s.recs {
                if rec.alive {
                    s.sink_alive_nbrs(sink, rec.v, rec);
                }
            }
        })?;
    let mut order: Vec<usize> = (0..residual.len()).collect();
    order.sort_unstable_by_key(|&i| residual.head(i));
    let mut round = CentralRound::new(n);
    let mut chosen = Vec::new();
    for i in order {
        let v = residual.head(i);
        if !round.removed_now.get(v as usize) {
            round.add(v, residual.payload(i));
            chosen.push(v);
        }
    }
    Ok(chosen)
}

/// Algorithm 6 (`MIS2`) on the cluster. Output is bit-identical to
/// [`crate::hungry::mis::mis_fast`] with the same parameters.
///
/// Deprecated entry point: dispatch `Registry::solve("mis2", …)` from
/// [`crate::api`] instead — same run, plus a verified, witness-bearing [`Report`]
/// whose [`Certificate`](crate::api::Certificate) can be re-checked
/// offline (`mrlr verify`, [`crate::api::witness::audit`]).
///
/// [`Report`]: crate::api::Report
///
/// # Example
///
/// ```
/// use mrlr_core::api::{Instance, Registry};
/// use mrlr_core::hungry::MisParams;
/// use mrlr_core::mr::MrConfig;
/// use mrlr_graph::generators;
///
/// let g = generators::densified(16, 0.3, 4);
/// let cfg = MrConfig::auto(16, g.m().max(1), 0.3, 4);
/// let report = Registry::with_defaults()
///     .solve("mis2", &Instance::Graph(g.clone()), &cfg)
///     .unwrap();
/// #[allow(deprecated)]
/// let (legacy, _metrics) =
///     mrlr_core::mr::mis::mr_mis_fast(&g, MisParams::mis2(16, cfg.mu, cfg.seed), cfg).unwrap();
/// assert_eq!(report.solution.as_selection().unwrap(), &legacy);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "dispatch through `mrlr_core::api` (`Registry::get(\"mis2\")` or `MisDriver`)"
)]
pub fn mr_mis_fast(
    g: &Graph,
    params: MisParams,
    cfg: MrConfig,
) -> MrResult<(SelectionResult, Metrics)> {
    run_fast(g, params, cfg)
}

/// Implementation shared by the deprecated [`mr_mis_fast`] wrapper and the
/// [`crate::api::MisDriver`]. Serves both cluster backends: `Backend::Mr`
/// runs it on the classic engine, `Backend::Shard` on the sharded
/// runtime (`MrConfig::exec.runtime`) — bit-identical either way.
pub(crate) fn run_fast(
    g: &Graph,
    params: MisParams,
    cfg: MrConfig,
) -> MrResult<(SelectionResult, Metrics)> {
    if !(params.alpha > 0.0 && params.alpha <= 1.0) || params.group_size == 0 || params.eta == 0 {
        return Err(MrError::BadConfig(
            "invalid hungry-greedy parameters".into(),
        ));
    }
    let n = g.n();
    if n == 0 {
        return Ok((
            SelectionResult {
                vertices: vec![],
                phases: 0,
                iterations: 0,
            },
            Metrics::new(cfg.machines, cfg.capacity),
        ));
    }
    let nf = (n.max(2)) as f64;
    let num_classes = (1.0 / params.alpha).ceil() as usize;
    let mut cluster = Cluster::new(cfg.cluster(), build_chunks(g, &cfg))?;
    let mut in_i = vec![false; n];
    cluster.charge_central(2 + n / 32)?;

    let mut k = 0usize;
    loop {
        let alive_edges = cluster.aggregate_sum(|_, s: &MisChunk| {
            s.recs.iter().filter(|r| r.alive).map(|r| r.d_alive).sum()
        })? / 2;
        if alive_edges < params.eta {
            break;
        }
        k += 1;
        if k > 64 + 4 * n {
            return Err(cluster.fail("MIS2 round budget exhausted"));
        }

        // Class sizes up the tree, back down for local group choices.
        let class_sizes: Vec<u64> = cluster.aggregate(
            |_, s: &MisChunk| {
                let mut counts = vec![0u64; num_classes + 1];
                for r in &s.recs {
                    if r.alive && r.d_alive > 0 {
                        counts[degree_class(r.d_alive, nf, params.alpha, num_classes)] += 1;
                    }
                }
                counts
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )?;
        cluster.broadcast(&class_sizes)?;

        let seed = params.seed;
        let alpha = params.alpha;
        let gs = params.group_size;
        let sizes = class_sizes.clone();
        let sample: PayloadBatch<SampleHead, VertexId> =
            cluster.gather_payload(move |_, s: &mut MisChunk, sink| {
                for r in &s.recs {
                    if !r.alive || r.d_alive == 0 {
                        continue;
                    }
                    let i = degree_class(r.d_alive, nf, alpha, num_classes);
                    let groups_count = nf.powf((i + 1) as f64 * alpha).ceil() as usize;
                    if let Some(gid) = group_choice(
                        seed,
                        &[MIS_RNG_TAG, 0x6d32, k as u64, i as u64],
                        r.v as u64,
                        groups_count,
                        gs,
                        sizes[i] as usize,
                    ) {
                        s.sink_alive_nbrs(sink, (i as u64, gid as u64, r.v), r);
                    }
                }
            })?;

        let mut round = CentralRound::new(n);
        process_groups(&sample, &mut round, |c| {
            nf.powf(1.0 - (c as f64 + 1.0) * params.alpha)
        });
        for &v in &round.added {
            in_i[v as usize] = true;
        }

        let mut delta = round.delta;
        delta.sort_unstable();
        cluster.broadcast(&delta)?;
        cluster.local(move |_, s: &mut MisChunk| s.apply_delta(&delta))?;
    }

    for v in central_finish(&mut cluster, n)? {
        in_i[v as usize] = true;
    }
    let result = SelectionResult {
        vertices: (0..n as VertexId).filter(|&v| in_i[v as usize]).collect(),
        phases: k,
        iterations: k + 1,
    };
    let (_, metrics) = cluster.into_parts();
    Ok((result, metrics))
}

/// Algorithm 2 (`MIS1`) on the cluster. Output is bit-identical to
/// [`crate::hungry::mis::mis_simple`] with the same parameters.
///
/// Deprecated entry point: dispatch `Registry::solve("mis1", …)` from
/// [`crate::api`] instead — same run, plus a verified, witness-bearing [`Report`]
/// whose [`Certificate`](crate::api::Certificate) can be re-checked
/// offline (`mrlr verify`, [`crate::api::witness::audit`]).
///
/// [`Report`]: crate::api::Report
///
/// # Example
///
/// ```
/// use mrlr_core::api::{Instance, Registry};
/// use mrlr_core::hungry::MisParams;
/// use mrlr_core::mr::MrConfig;
/// use mrlr_graph::generators;
///
/// let g = generators::densified(16, 0.3, 4);
/// let cfg = MrConfig::auto(16, g.m().max(1), 0.3, 4);
/// let report = Registry::with_defaults()
///     .solve("mis1", &Instance::Graph(g.clone()), &cfg)
///     .unwrap();
/// #[allow(deprecated)]
/// let (legacy, _metrics) =
///     mrlr_core::mr::mis::mr_mis_simple(&g, MisParams::mis1(16, cfg.mu, cfg.seed), cfg).unwrap();
/// assert_eq!(report.solution.as_selection().unwrap(), &legacy);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "dispatch through `mrlr_core::api` (`Registry::get(\"mis1\")` or `MisDriver`)"
)]
pub fn mr_mis_simple(
    g: &Graph,
    params: MisParams,
    cfg: MrConfig,
) -> MrResult<(SelectionResult, Metrics)> {
    run_simple(g, params, cfg)
}

/// Implementation shared by the deprecated [`mr_mis_simple`] wrapper and the
/// [`crate::api::MisDriver`]. Serves both cluster backends: `Backend::Mr`
/// runs it on the classic engine, `Backend::Shard` on the sharded
/// runtime (`MrConfig::exec.runtime`) — bit-identical either way.
pub(crate) fn run_simple(
    g: &Graph,
    params: MisParams,
    cfg: MrConfig,
) -> MrResult<(SelectionResult, Metrics)> {
    if !(params.alpha > 0.0 && params.alpha <= 1.0) || params.group_size == 0 || params.eta == 0 {
        return Err(MrError::BadConfig(
            "invalid hungry-greedy parameters".into(),
        ));
    }
    let n = g.n();
    if n == 0 {
        return Ok((
            SelectionResult {
                vertices: vec![],
                phases: 0,
                iterations: 0,
            },
            Metrics::new(cfg.machines, cfg.capacity),
        ));
    }
    let nf = (n.max(2)) as f64;
    let final_degree = (params.eta as f64 / nf).max(1.0);
    let mut cluster = Cluster::new(cfg.cluster(), build_chunks(g, &cfg))?;
    let mut in_i = vec![false; n];
    cluster.charge_central(2 + n / 32)?;

    let mut phases = 0usize;
    let mut iterations = 0usize;
    let mut i = 0usize;
    loop {
        i += 1;
        let tau = nf.powf(1.0 - i as f64 * params.alpha);
        if tau <= final_degree || tau < 1.0 {
            break;
        }
        phases += 1;
        let groups_target = nf.powf(i as f64 * params.alpha).ceil() as usize;
        let mut guard = 0usize;
        loop {
            let heavy_count = cluster.aggregate_sum(move |_, s: &MisChunk| {
                s.recs
                    .iter()
                    .filter(|r| r.alive && r.d_alive as f64 >= tau)
                    .count()
            })?;
            if heavy_count < groups_target {
                // Stragglers of this phase go to the central machine.
                let stragglers: PayloadBatch<VertexId, VertexId> =
                    cluster.gather_payload(move |_, s: &mut MisChunk, sink| {
                        for r in &s.recs {
                            if r.alive && r.d_alive as f64 >= tau {
                                s.sink_alive_nbrs(sink, r.v, r);
                            }
                        }
                    })?;
                let mut order: Vec<usize> = (0..stragglers.len()).collect();
                order.sort_unstable_by_key(|&i| stragglers.head(i));
                let mut round = CentralRound::new(n);
                for i in order {
                    let v = stragglers.head(i);
                    if !round.removed_now.get(v as usize) {
                        round.add(v, stragglers.payload(i));
                        in_i[v as usize] = true;
                    }
                }
                let mut delta = round.delta;
                delta.sort_unstable();
                cluster.broadcast(&delta)?;
                cluster.local(move |_, s: &mut MisChunk| s.apply_delta(&delta))?;
                iterations += 1;
                break;
            }
            iterations += 1;
            guard += 1;
            if guard > 64 + 4 * n {
                return Err(cluster.fail("MIS1 inner loop budget exhausted"));
            }

            let seed = params.seed;
            let gs = params.group_size;
            let sample: PayloadBatch<SampleHead, VertexId> =
                cluster.gather_payload(move |_, s: &mut MisChunk, sink| {
                    for r in &s.recs {
                        if !r.alive || (r.d_alive as f64) < tau {
                            continue;
                        }
                        if let Some(gid) = group_choice(
                            seed,
                            &[MIS_RNG_TAG, i as u64, guard as u64],
                            r.v as u64,
                            groups_target,
                            gs,
                            heavy_count,
                        ) {
                            s.sink_alive_nbrs(sink, (0u64, gid as u64, r.v), r);
                        }
                    }
                })?;

            let mut round = CentralRound::new(n);
            process_groups(&sample, &mut round, |_| tau);
            for &v in &round.added {
                in_i[v as usize] = true;
            }
            let mut delta = round.delta;
            delta.sort_unstable();
            cluster.broadcast(&delta)?;
            cluster.local(move |_, s: &mut MisChunk| s.apply_delta(&delta))?;
        }
    }

    for v in central_finish(&mut cluster, n)? {
        in_i[v as usize] = true;
    }
    iterations += 1;
    let result = SelectionResult {
        vertices: (0..n as VertexId).filter(|&v| in_i[v as usize]).collect(),
        phases,
        iterations,
    };
    let (_, metrics) = cluster.into_parts();
    Ok((result, metrics))
}

#[cfg(test)]
#[allow(deprecated)] // the legacy wrappers are themselves under test
mod tests {
    use super::*;
    use crate::hungry::mis::{mis_fast, mis_simple};
    use crate::verify::is_maximal_independent_set;
    use mrlr_graph::generators::densified;

    #[test]
    fn mis2_matches_driver_bit_for_bit() {
        for seed in 0..4 {
            let g = densified(60, 0.4, seed);
            let params = MisParams::mis2(60, 0.3, seed);
            let cfg = MrConfig::auto(60, g.m(), 0.3, seed);
            let (mr, metrics) = mr_mis_fast(&g, params, cfg).unwrap();
            let seq = mis_fast(&g, params).unwrap();
            assert_eq!(mr.vertices, seq.vertices, "seed {seed}");
            assert_eq!(mr.phases, seq.phases);
            assert!(is_maximal_independent_set(&g, &mr.vertices));
            assert!(metrics.rounds > 0);
        }
    }

    #[test]
    fn mis1_matches_driver_bit_for_bit() {
        for seed in 0..4 {
            let g = densified(60, 0.4, seed);
            let params = MisParams::mis1(60, 0.3, seed);
            let cfg = MrConfig::auto(60, g.m(), 0.3, seed);
            let (mr, _) = mr_mis_simple(&g, params, cfg).unwrap();
            let seq = mis_simple(&g, params).unwrap();
            assert_eq!(mr.vertices, seq.vertices, "seed {seed}");
            assert!(is_maximal_independent_set(&g, &mr.vertices));
        }
    }

    #[test]
    fn capacity_guard_fires() {
        let g = densified(50, 0.5, 1);
        let params = MisParams::mis2(50, 0.3, 1);
        let cfg = MrConfig::auto(50, g.m(), 0.3, 1).with_capacity(30);
        assert!(matches!(
            mr_mis_fast(&g, params, cfg),
            Err(MrError::CapacityExceeded { .. })
        ));
    }
}
