//! MapReduce implementation of Algorithm 4 (Theorem 5.6): 2-approximate
//! maximum weight matching.
//!
//! Layout: every vertex lives on a machine with its incident edge list, so
//! each edge is stored at both endpoints' machines (the paper stores both
//! an edge partition and a vertex partition; co-locating incidence makes
//! the per-vertex sampling machine-local). Machines hold a replicated copy
//! of the potential vector `ϕ` (`n` words ≤ `n^{1+µ}`), refreshed with
//! broadcast deltas — an edge's aliveness (`w − ϕ(u) − ϕ(v) > 0`) is then a
//! local test, and pushed edges die automatically because the push makes
//! their modified weight negative.
//!
//! Per iteration: aggregate `|E_i|`; if `< 4η`, gather the residual graph
//! and finish centrally; otherwise gather per-vertex samples
//! (`p = η/|E_i|`, fail if `Σ|E'_v| > 8η`), push centrally, broadcast `ϕ`
//! deltas.

use std::collections::HashMap;

use mrlr_graph::{EdgeId, Graph, VertexId};
use mrlr_mapreduce::rng::coin;
use mrlr_mapreduce::{Cluster, Ingest, Metrics, MrError, MrResult, WordSized};

use crate::mr::{dist_cache, MrConfig, CENTRAL_FINISH_SLACK, MATCHING_GATHER_SLACK};
use crate::rlr::matching::MATCH_COIN_TAG;
use crate::seq::local_ratio_matching::{finish_with, MatchingLocalRatio};
use crate::types::{MatchingResult, POS_TOL};

#[derive(Clone)]
struct VertexAdj {
    v: VertexId,
    /// Incident edges `(edge id, other endpoint, original weight)`,
    /// ascending edge id.
    inc: Vec<(EdgeId, VertexId, f64)>,
}

impl WordSized for VertexAdj {
    fn words(&self) -> usize {
        1 + self.inc.words()
    }
}

#[derive(Clone)]
struct MatchState {
    vertices: Vec<VertexAdj>,
    /// Replicated potential vector (n words).
    phi: Vec<f64>,
}

impl MatchState {
    fn edge_alive(&self, u: VertexId, v: VertexId, w: f64) -> bool {
        w - self.phi[u as usize] - self.phi[v as usize] > POS_TOL
    }

    /// Alive incident edges counted per endpoint copy (each alive edge is
    /// counted twice across the cluster).
    fn alive_halves(&self) -> usize {
        self.vertices
            .iter()
            .map(|va| {
                va.inc
                    .iter()
                    .filter(|&&(_, o, w)| self.edge_alive(va.v, o, w))
                    .count()
            })
            .sum()
    }
}

impl WordSized for MatchState {
    fn words(&self) -> usize {
        1 + self.vertices.iter().map(WordSized::words).sum::<usize>() + self.phi.len()
    }
}

/// Runs Algorithm 4 on the cluster. Output is bit-identical to
/// [`crate::rlr::matching::approx_max_matching`] with `(cfg.eta, cfg.seed)`.
///
/// Deprecated entry point: dispatch `Registry::solve("matching", …)` from
/// [`crate::api`] instead — same run, plus a verified, witness-bearing [`Report`]
/// whose [`Certificate`](crate::api::Certificate) can be re-checked
/// offline (`mrlr verify`, [`crate::api::witness::audit`]).
///
/// [`Report`]: crate::api::Report
///
/// # Example
///
/// ```
/// use mrlr_core::api::{Instance, Registry};
/// use mrlr_core::mr::MrConfig;
/// use mrlr_graph::generators;
///
/// let g = generators::with_uniform_weights(&generators::densified(16, 0.3, 1), 1.0, 9.0, 1);
/// let cfg = MrConfig::auto(16, g.m(), 0.3, 1);
/// let report = Registry::with_defaults()
///     .solve("matching", &Instance::Graph(g.clone()), &cfg)
///     .unwrap();
/// #[allow(deprecated)]
/// let (legacy, _metrics) = mrlr_core::mr::matching::mr_matching(&g, cfg).unwrap();
/// assert_eq!(report.solution.as_matching().unwrap(), &legacy);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "dispatch through `mrlr_core::api` (`Registry::get(\"matching\")` or `MatchingDriver`)"
)]
pub fn mr_matching(g: &Graph, cfg: MrConfig) -> MrResult<(MatchingResult, Metrics)> {
    run(g, cfg)
}

/// Implementation shared by the deprecated [`mr_matching`] wrapper and the
/// [`crate::api::MatchingDriver`]. Serves both cluster backends: `Backend::Mr`
/// runs it on the classic engine, `Backend::Shard` on the sharded
/// runtime (`MrConfig::exec.runtime`) — bit-identical either way.
pub(crate) fn run(g: &Graph, cfg: MrConfig) -> MrResult<(MatchingResult, Metrics)> {
    if cfg.eta == 0 {
        return Err(MrError::BadConfig("eta must be positive".into()));
    }
    let n = g.n();

    // Vertex-partitioned adjacency; batch jobs sharing this instance and
    // cluster shape reuse the distributed snapshot (`super::dist_cache`).
    let key = dist_cache::DistKey::new(0x6d61_7463, g, (n, g.m()), &cfg);
    let states: Vec<MatchState> = dist_cache::get_or_build(key, || {
        let adj = g.adjacency();
        let mut states: Vec<MatchState> = (0..cfg.machines)
            .map(|_| MatchState {
                vertices: Vec::new(),
                phi: vec![0.0; n],
            })
            .collect();
        for (v, nbrs) in adj.iter().enumerate().take(n) {
            let dst = cfg.place(v as u64);
            states[dst].vertices.push(VertexAdj {
                v: v as VertexId,
                inc: nbrs.iter().map(|&(o, e)| (e, o, g.edge(e).w)).collect(),
            });
        }
        // Adjacency lists come out in edge-id order per vertex; sort to be sure.
        for s in &mut states {
            for va in &mut s.vertices {
                va.inc.sort_unstable_by_key(|&(e, _, _)| e);
            }
        }
        states
    });
    let outcome = run_states(states, n, g.m(), cfg)?;
    Ok((outcome.result, outcome.metrics))
}

/// Everything a run of Algorithm 4 produces: the solution, the cluster
/// metrics, and the endpoints/weights of every stacked edge — the latter
/// is what lets the streamed path certify its result without a central
/// [`Graph`] (the stack is `O(n log n)` edges w.h.p., not `O(m)`).
pub(crate) struct RunOutcome {
    pub(crate) result: MatchingResult,
    pub(crate) metrics: Metrics,
    /// `edge id → (u, v, original weight)` for every pushed edge.
    pub(crate) pushed: HashMap<EdgeId, (VertexId, VertexId, f64)>,
    /// Vertex count of the instance.
    pub(crate) n: usize,
}

/// Per-machine state for a matching run built *without* a central graph:
/// edge records stream in ascending edge-id order (the materialized
/// [`Graph`]'s id order) and are scattered to both endpoints' machines via
/// [`MrConfig::place`] — the exact layout [`run`] builds from a central
/// adjacency, reproduced incrementally, so the solve downstream is
/// bit-identical.
pub(crate) struct StreamedMatching {
    cfg: MrConfig,
    n: usize,
    m: usize,
    /// Edge halves `(owner vertex, edge id, other endpoint, weight)`
    /// accumulating per machine.
    halves: Ingest<(VertexId, EdgeId, VertexId, f64)>,
}

impl StreamedMatching {
    /// A builder for a `p graph <n> <m>` stream under `cfg`.
    pub(crate) fn new(n: usize, m: usize, cfg: MrConfig) -> MrResult<Self> {
        if cfg.eta == 0 {
            return Err(MrError::BadConfig("eta must be positive".into()));
        }
        Ok(StreamedMatching {
            cfg,
            n,
            m,
            halves: Ingest::new(cfg.machines),
        })
    }

    /// Routes edge `e = {u, v}` (weight `w`) to both endpoints' machines.
    /// Edges must arrive in ascending id order.
    pub(crate) fn push_edge(
        &mut self,
        e: EdgeId,
        u: VertexId,
        v: VertexId,
        w: f64,
    ) -> MrResult<()> {
        self.halves.push(self.cfg.place(u as u64), (u, e, v, w))?;
        self.halves.push(self.cfg.place(v as u64), (v, e, u, w))
    }

    /// Finalizes the per-machine states and runs Algorithm 4. The states
    /// are bit-identical to what [`run`] builds centrally: vertices in
    /// ascending id order per machine, incidence lists in ascending edge
    /// id (arrival order, kept by the stable sort).
    pub(crate) fn solve(self) -> MrResult<RunOutcome> {
        let StreamedMatching { cfg, n, m, halves } = self;
        // Which vertices each machine owns, ascending (isolated vertices
        // included — the materialized layout gives every vertex an entry).
        let mut owners: Vec<Vec<VertexId>> = (0..cfg.machines).map(|_| Vec::new()).collect();
        for v in 0..n {
            owners[cfg.place(v as u64)].push(v as VertexId);
        }
        let mut states: Vec<MatchState> = Vec::with_capacity(cfg.machines);
        for (dst, mut block) in halves.into_blocks().into_iter().enumerate() {
            // Stable: per-vertex groups keep ascending edge-id arrival order.
            block.sort_by_key(|&(v, _, _, _)| v);
            let mut vertices = Vec::with_capacity(owners[dst].len());
            let mut pos = 0usize;
            for &v in &owners[dst] {
                let start = pos;
                while pos < block.len() && block[pos].0 == v {
                    pos += 1;
                }
                vertices.push(VertexAdj {
                    v,
                    inc: block[start..pos]
                        .iter()
                        .map(|&(_, e, o, w)| (e, o, w))
                        .collect(),
                });
            }
            drop(block); // free each flat block before converting the next
            states.push(MatchState {
                vertices,
                phi: vec![0.0; n],
            });
        }
        run_states(states, n, m, cfg)
    }
}

/// The Algorithm 4 driver loop over prepared per-machine states — shared
/// verbatim by the materialized ([`run`]) and streamed
/// ([`StreamedMatching::solve`]) paths, so both produce bit-identical
/// solutions, witnesses and [`Metrics`]. Central bookkeeping records the
/// endpoints of every pushed edge, which is all the unwind and the
/// certificate ever look up — `O(stack)` words, never `O(m)`.
fn run_states(states: Vec<MatchState>, n: usize, m: usize, cfg: MrConfig) -> MrResult<RunOutcome> {
    let mut cluster = Cluster::new(cfg.cluster(), states)?;

    let mut lr = MatchingLocalRatio::new(n);
    let mut pushed: HashMap<EdgeId, (VertexId, VertexId, f64)> = HashMap::new();
    cluster.charge_central(n + 2)?;

    let mut iteration = 0usize;
    loop {
        let alive = cluster.aggregate_sum(|_, s: &MatchState| s.alive_halves())? / 2;
        if alive == 0 {
            break;
        }
        iteration += 1;

        if alive < CENTRAL_FINISH_SLACK * cfg.eta {
            // Final central iteration: gather the residual graph once (the
            // copy at the smaller endpoint reports the edge) and run the
            // exhaustive pass in ascending edge order.
            let mut residual: Vec<(EdgeId, VertexId, VertexId, f64)> =
                cluster.gather(|_, s: &mut MatchState| {
                    let mut out = Vec::new();
                    for va in &s.vertices {
                        for &(e, o, w) in &va.inc {
                            if va.v < o && s.edge_alive(va.v, o, w) {
                                out.push((e, va.v, o, w));
                            }
                        }
                    }
                    out
                })?;
            residual.sort_unstable_by_key(|&(e, _, _, _)| e);
            for (e, u, v, w) in residual {
                if lr.push(e, u, v, w) {
                    pushed.insert(e, (u, v, w));
                }
            }
            break;
        }

        let p = (cfg.eta as f64 / alive as f64).min(1.0);
        cluster.broadcast_words(1)?;

        let seed = cfg.seed;
        let mut sample: Vec<(VertexId, EdgeId, VertexId, f64)> =
            cluster.gather(|_, s: &mut MatchState| {
                let mut out = Vec::new();
                for va in &s.vertices {
                    for &(e, o, w) in &va.inc {
                        if s.edge_alive(va.v, o, w)
                            && coin(
                                seed,
                                &[MATCH_COIN_TAG, iteration as u64, va.v as u64, e as u64],
                                p,
                            )
                        {
                            out.push((va.v, e, o, w));
                        }
                    }
                }
                out
            })?;
        if sample.len() > MATCHING_GATHER_SLACK * cfg.eta {
            return Err(cluster.fail(format!(
                "Σ|E'_v| = {} > {}η = {}",
                sample.len(),
                MATCHING_GATHER_SLACK,
                MATCHING_GATHER_SLACK * cfg.eta
            )));
        }

        // Central: vertices in ascending order; heaviest sampled edge by
        // current modified weight (tie: smaller edge id).
        sample.sort_unstable_by_key(|&(v, e, _, _)| (v, e));
        let mut idx = 0usize;
        let mut touched: Vec<VertexId> = Vec::new();
        while idx < sample.len() {
            let v = sample[idx].0;
            let mut best: Option<(f64, EdgeId, VertexId, f64)> = None;
            while idx < sample.len() && sample[idx].0 == v {
                let (_, e, o, w) = sample[idx];
                let m = lr.modified(v, o, w);
                let better = match best {
                    None => true,
                    Some((bm, be, _, _)) => m > bm || (m == bm && e < be),
                };
                if better {
                    best = Some((m, e, o, w));
                }
                idx += 1;
            }
            if let Some((_, e, o, w)) = best {
                if lr.push(e, v, o, w) {
                    pushed.insert(e, (v, o, w));
                    touched.push(v);
                    touched.push(o);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();

        // Broadcast ϕ deltas ((vertex, value) pairs) down the tree;
        // machines refresh their replicated copies.
        let delta: Vec<(VertexId, f64)> = touched.iter().map(|&v| (v, lr.phi(v))).collect();
        cluster.broadcast(&delta)?;
        cluster.local(move |_, s: &mut MatchState| {
            for &(v, phi) in &delta {
                s.phi[v as usize] = phi;
            }
        })?;
        // Charge the growing central stack.
        cluster.charge_central(n + 2 + 2 * lr.stack_len())?;

        if iteration > 64 + 4 * m {
            return Err(cluster.fail("iteration budget exhausted"));
        }
    }

    let result = finish_with(n, lr, iteration, |id| pushed[&id]);
    let (_, metrics) = cluster.into_parts();
    Ok(RunOutcome {
        result,
        metrics,
        pushed,
        n,
    })
}

#[cfg(test)]
#[allow(deprecated)] // the legacy wrappers are themselves under test
mod tests {
    use super::*;
    use crate::rlr::matching::approx_max_matching;
    use crate::verify::is_matching;
    use mrlr_graph::generators::{densified, with_uniform_weights};

    #[test]
    fn matches_sequential_driver_bit_for_bit() {
        for seed in 0..4 {
            let g = with_uniform_weights(&densified(50, 0.4, seed), 0.5, 10.0, seed + 31);
            let cfg = MrConfig::auto(50, g.m(), 0.3, seed);
            let (mr, metrics) = mr_matching(&g, cfg).unwrap();
            let seq = approx_max_matching(&g, cfg.eta, seed).unwrap();
            assert_eq!(mr.matching, seq.matching, "seed {seed}");
            assert_eq!(mr.iterations, seq.iterations);
            assert!((mr.stack_gain - seq.stack_gain).abs() < 1e-9);
            assert!(is_matching(&g, &mr.matching));
            assert!(metrics.rounds > 0);
            assert!(mr.certified_ratio(2.0) <= 2.0 + 1e-6);
        }
    }

    #[test]
    fn mu_zero_regime_runs() {
        let n = 60;
        let g = with_uniform_weights(&densified(n, 0.5, 2), 1.0, 4.0, 5);
        let mut cfg = MrConfig::auto(n, g.m(), 0.0, 3);
        cfg.eta = n; // Appendix C: η = n
        let (r, metrics) = mr_matching(&g, cfg).unwrap();
        assert!(is_matching(&g, &r.matching));
        assert!(r.iterations <= 60, "iterations {}", r.iterations);
        assert!(metrics.peak_central_words <= cfg.capacity);
    }

    #[test]
    fn undersized_capacity_fails() {
        let g = with_uniform_weights(&densified(40, 0.5, 1), 1.0, 2.0, 1);
        let cfg = MrConfig::auto(40, g.m(), 0.3, 1).with_capacity(60);
        assert!(matches!(
            mr_matching(&g, cfg),
            Err(MrError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(3, vec![]);
        let cfg = MrConfig::auto(3, 1, 0.3, 1);
        let (r, _) = mr_matching(&g, cfg).unwrap();
        assert!(r.matching.is_empty());
    }
}
