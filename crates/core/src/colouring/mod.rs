//! Section 6: `(1+o(1))Δ` vertex and edge colouring in `O(1)` rounds.
//!
//! Algorithm 5 randomly partitions the vertices into `κ = n^{(c−µ)/2}`
//! groups; within a group the maximum induced degree is
//! `(1 + n^{-µ/2}√(6 ln n))·Δ/κ` w.h.p. (Lemma 6.1) and the induced edge
//! count is ≤ `13 n^{1+µ}` w.h.p. (Lemma 6.2), so one machine per group can
//! greedily colour its subgraph with a private palette of `Δ_i + 1`
//! colours. The union uses `κ(max_i Δ_i + 1) = (1+o(1))Δ` colours
//! (Corollary 6.3). Remark 6.5: edge colouring works identically with
//! *edges* partitioned and Misra–Gries (`Δ_i + 1` colours, Vizing) as the
//! per-group subroutine.

use mrlr_graph::{EdgeId, Graph, VertexId};
use mrlr_mapreduce::rng::mix_tags;
use mrlr_mapreduce::{MrError, MrResult};

use crate::seq::greedy_graph::greedy_colouring_with_order;
use crate::seq::misra_gries::misra_gries_edge_colouring;
use crate::types::ColouringResult;

/// Tag mixed into the group-assignment hashes (shared with the MR driver).
pub const COLOUR_TAG: u64 = 0x434f_4c52;

/// The paper's group count `κ = n^{(c−µ)/2}` for a graph with `m = n^{1+c}`
/// edges and memory exponent `µ`. At least 1.
pub fn group_count(n: usize, m: usize, mu: f64) -> usize {
    if n < 2 || m == 0 {
        return 1;
    }
    let nf = n as f64;
    let c = ((m as f64).ln() / nf.ln() - 1.0).max(0.0);
    nf.powf(((c - mu) / 2.0).max(0.0)).round().max(1.0) as usize
}

/// The group of vertex `v` — a pure hash, computable anywhere without
/// communication.
#[inline]
pub fn vertex_group(seed: u64, v: VertexId, kappa: usize) -> usize {
    (mix_tags(seed, &[COLOUR_TAG, v as u64]) % kappa as u64) as usize
}

/// The group of edge `e` — likewise a pure hash.
#[inline]
pub fn edge_group(seed: u64, e: EdgeId, kappa: usize) -> usize {
    (mix_tags(seed, &[COLOUR_TAG, 0x6564_6765, e as u64]) % kappa as u64) as usize
}

/// Algorithm 5: `(1+o(1))Δ` vertex colouring with `kappa` random groups.
/// `edge_limit` is the per-group edge bound of line 4 (`13 n^{1+µ}`);
/// exceeding it triggers the paper's `fail`. Pass `None` to skip the check.
pub fn vertex_colouring(
    g: &Graph,
    kappa: usize,
    edge_limit: Option<usize>,
    seed: u64,
) -> MrResult<ColouringResult> {
    if kappa == 0 {
        return Err(MrError::BadConfig("kappa must be positive".into()));
    }
    let n = g.n();
    let groups: Vec<usize> = (0..n as VertexId)
        .map(|v| vertex_group(seed, v, kappa))
        .collect();

    // Partition intra-group edges.
    let mut group_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); kappa];
    for (idx, e) in g.edges().iter().enumerate() {
        let gu = groups[e.u as usize];
        if gu == groups[e.v as usize] {
            group_edges[gu].push(idx as EdgeId);
        }
    }
    if let Some(limit) = edge_limit {
        for (i, ge) in group_edges.iter().enumerate() {
            if ge.len() > limit {
                return Err(MrError::AlgorithmFailed {
                    round: 0,
                    reason: format!(
                        "group {i} has {} > {limit} edges (Lemma 6.2 guard)",
                        ge.len()
                    ),
                });
            }
        }
    }

    // Colour each group greedily with a private palette; offset palettes so
    // colours are globally distinct per group.
    let mut colours = vec![0u32; n];
    let mut next_palette_start = 0u32;
    let mut total_colours = 0usize;
    for gi in 0..kappa {
        let members: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| groups[v as usize] == gi)
            .collect();
        if members.is_empty() {
            continue;
        }
        // The induced subgraph keeps original vertex ids, so the greedy
        // subroutine colours members directly.
        let sub = g.induced(|v| groups[v as usize] == gi);
        let local = greedy_colouring_with_order(&sub, &members);
        let mut used = 0u32;
        for &v in &members {
            let c = local.colours[v as usize];
            colours[v as usize] = next_palette_start + c;
            used = used.max(c + 1);
        }
        next_palette_start += used;
        total_colours += used as usize;
    }

    Ok(ColouringResult {
        colours,
        num_colours: total_colours,
        groups: kappa,
    })
}

/// Remark 6.5: `(1+o(1))Δ` edge colouring — random *edge* groups, each
/// coloured by Misra–Gries with a private palette of `Δ_i + 1` colours.
pub fn edge_colouring(
    g: &Graph,
    kappa: usize,
    edge_limit: Option<usize>,
    seed: u64,
) -> MrResult<ColouringResult> {
    if kappa == 0 {
        return Err(MrError::BadConfig("kappa must be positive".into()));
    }
    let m = g.m();
    let groups: Vec<usize> = (0..m as EdgeId)
        .map(|e| edge_group(seed, e, kappa))
        .collect();
    if let Some(limit) = edge_limit {
        let mut counts = vec![0usize; kappa];
        for &gi in &groups {
            counts[gi] += 1;
        }
        if let Some((i, &cnt)) = counts.iter().enumerate().find(|&(_, &c)| c > limit) {
            return Err(MrError::AlgorithmFailed {
                round: 0,
                reason: format!("edge group {i} has {cnt} > {limit} edges"),
            });
        }
    }

    let mut colours = vec![0u32; m];
    let mut next_palette_start = 0u32;
    let mut total_colours = 0usize;
    for gi in 0..kappa {
        let members: Vec<EdgeId> = (0..m as EdgeId)
            .filter(|&e| groups[e as usize] == gi)
            .collect();
        if members.is_empty() {
            continue;
        }
        // Subgraph containing exactly this group's edges (vertex ids kept).
        let sub = Graph::new(g.n(), members.iter().map(|&e| *g.edge(e)).collect());
        let local = misra_gries_edge_colouring(&sub);
        let mut used = 0u32;
        for (sub_idx, &orig) in members.iter().enumerate() {
            let c = local.colours[sub_idx];
            colours[orig as usize] = next_palette_start + c;
            used = used.max(c + 1);
        }
        next_palette_start += used;
        total_colours += used as usize;
    }

    Ok(ColouringResult {
        colours,
        num_colours: total_colours,
        groups: kappa,
    })
}

/// Corollary 6.3's colour budget
/// `(1 + n^{-µ/2}√(6 ln n) + n^{-µ}) Δ` — the number the measured colour
/// count is compared against in the experiments.
pub fn colour_budget(n: usize, delta: usize, mu: f64) -> f64 {
    if n < 2 {
        return delta as f64 + 1.0;
    }
    let nf = n as f64;
    (1.0 + nf.powf(-mu / 2.0) * (6.0 * nf.ln()).sqrt() + nf.powf(-mu)) * delta as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_proper_colouring, is_proper_edge_colouring};
    use mrlr_graph::generators::{complete, densified, gnm};

    #[test]
    fn vertex_colouring_proper_all_kappa() {
        let g = gnm(60, 400, 3);
        for kappa in [1usize, 2, 4, 8] {
            let r = vertex_colouring(&g, kappa, None, 7).unwrap();
            assert!(is_proper_colouring(&g, &r.colours), "kappa {kappa}");
            assert_eq!(r.groups, kappa);
            // Union of per-group palettes ≤ κ(Δ+1) — and never more than n.
            assert!(r.num_colours <= g.n());
        }
    }

    #[test]
    fn kappa_one_is_plain_greedy_bound() {
        let g = gnm(40, 200, 1);
        let r = vertex_colouring(&g, 1, None, 1).unwrap();
        assert!(is_proper_colouring(&g, &r.colours));
        assert!(r.num_colours <= g.max_degree() + 1);
    }

    #[test]
    fn edge_colouring_proper_all_kappa() {
        let g = gnm(40, 250, 5);
        for kappa in [1usize, 3, 6] {
            let r = edge_colouring(&g, kappa, None, 11).unwrap();
            assert!(is_proper_edge_colouring(&g, &r.colours), "kappa {kappa}");
        }
    }

    #[test]
    fn edge_colouring_kappa_one_vizing() {
        let g = complete(9);
        let r = edge_colouring(&g, 1, None, 2).unwrap();
        assert!(is_proper_edge_colouring(&g, &r.colours));
        assert!(r.num_colours <= g.max_degree() + 1);
    }

    #[test]
    fn colour_count_within_budget_on_dense_graphs() {
        // Dense graph, moderate µ: measured colours ≤ (1+o(1))Δ budget.
        let n = 120;
        let g = densified(n, 0.6, 9);
        let mu = 0.3;
        let kappa = group_count(n, g.m(), mu);
        assert!(kappa >= 2, "kappa {kappa}");
        let r = vertex_colouring(&g, kappa, None, 5).unwrap();
        assert!(is_proper_colouring(&g, &r.colours));
        let budget = colour_budget(n, g.max_degree(), mu);
        assert!(
            (r.num_colours as f64) <= budget,
            "{} colours > budget {budget}",
            r.num_colours
        );
    }

    #[test]
    fn edge_limit_guard_fires() {
        let g = complete(10); // 45 edges; kappa = 1 puts them all in one group
        let err = vertex_colouring(&g, 1, Some(10), 3).unwrap_err();
        assert!(matches!(err, MrError::AlgorithmFailed { .. }));
        let err = edge_colouring(&g, 1, Some(10), 3).unwrap_err();
        assert!(matches!(err, MrError::AlgorithmFailed { .. }));
    }

    #[test]
    fn group_count_formula() {
        // n = 100, m = n^1.5 → c = 0.5; µ = 0.1 → κ = n^0.2 ≈ 2.5.
        let kappa = group_count(100, 1000, 0.1);
        assert!((2..=3).contains(&kappa), "kappa {kappa}");
        assert_eq!(group_count(1, 0, 0.2), 1);
        // µ ≥ c → κ = 1.
        assert_eq!(group_count(100, 1000, 0.8), 1);
    }

    #[test]
    fn deterministic() {
        let g = gnm(30, 150, 2);
        let a = vertex_colouring(&g, 4, None, 9).unwrap();
        let b = vertex_colouring(&g, 4, None, 9).unwrap();
        assert_eq!(a.colours, b.colours);
    }
}
