//! # mrlr-core — the paper's algorithms
//!
//! Implementations of every algorithm in *"Greedy and Local Ratio
//! Algorithms in the MapReduce Model"* (Harvey, Liaw, Liu; SPAA 2018),
//! exposed uniformly through the [`api`] registry: each algorithm is one
//! [`api::Driver`] with a stable string key and up to three
//! [`api::Backend`]s (`Seq` reference, `Rlr` in-memory randomized driver,
//! `Mr` cluster run — `Rlr` and `Mr` are bit-identical for equal seeds).
//!
//! | Paper | Registry key | Backend modules |
//! |---|---|---|
//! | Alg 1 / Thm 2.4 local-ratio set cover (`f`-approx) | `"set-cover-f"` | [`seq::local_ratio_sc`], [`rlr::setcover`], [`mr::set_cover`] |
//! | Thm 2.4 `f = 2` vertex cover fast path | `"vertex-cover"` | [`rlr::setcover`], [`mr::vertex_cover`] |
//! | Alg 3 `(1+ε) ln Δ` set cover | `"set-cover-greedy"` | [`seq::greedy_sc`], [`hungry::setcover`], [`mr::set_cover_greedy`] |
//! | Alg 2 hungry-greedy MIS (`MIS1`) | `"mis1"` | [`seq::greedy_graph`], [`hungry::mis`], [`mr::mis`] |
//! | Alg 6 hungry-greedy MIS (`MIS2`) | `"mis2"` | [`seq::greedy_graph`], [`hungry::mis`], [`mr::mis`] |
//! | App B maximal clique | `"clique"` | [`seq::greedy_graph`], [`hungry::clique`], [`mr::clique`] |
//! | Alg 4 / App C matching | `"matching"` | [`mod@seq::local_ratio_matching`], [`rlr::matching`], [`mr::matching`] |
//! | Alg 7 / App D b-matching | `"b-matching"` | [`seq::local_ratio_bmatching`], [`rlr::bmatching`], [`mr::bmatching`] |
//! | Alg 5 vertex colouring | `"vertex-colouring"` | [`seq::greedy_graph`], [`colouring`], [`mr::colouring`] |
//! | Rem 6.5 edge colouring | `"edge-colouring"` | [`seq::misra_gries`], [`colouring`], [`mr::colouring`] |
//!
//! ```
//! use mrlr_core::api::{Instance, Registry};
//! use mrlr_core::mr::MrConfig;
//! use mrlr_graph::generators;
//!
//! let g = generators::with_uniform_weights(&generators::densified(30, 0.4, 1), 1.0, 9.0, 1);
//! let cfg = MrConfig::auto(30, g.m(), 0.3, 1);
//! let report = Registry::with_defaults()
//!     .solve("matching", &Instance::Graph(g), &cfg)
//!     .unwrap();
//! assert!(report.certificate.feasible);
//! ```
//!
//! Plus: sequential baselines ([`seq`]), exact solvers ([`exact`]) and
//! validators/certificates ([`verify`]). The per-module free functions
//! (`mr::matching::mr_matching`, …) survive as deprecated thin wrappers;
//! new code should dispatch through [`api`].

#![warn(missing_docs)]

pub mod api;
pub mod colouring;
pub mod exact;
pub mod hungry;
pub mod io;
pub mod mr;
pub mod rlr;
pub mod seq;
pub mod types;
pub mod verify;

pub use api::{Backend, Certificate, Driver, Problem, Registry, Report};
pub use types::{ColouringResult, CoverResult, MatchingResult, SelectionResult, POS_TOL};
