//! # mrlr-core — the paper's algorithms
//!
//! Implementations of every algorithm in *"Greedy and Local Ratio
//! Algorithms in the MapReduce Model"* (Harvey, Liaw, Liu; SPAA 2018):
//!
//! | Paper | Module |
//! |---|---|
//! | Thm 2.1 sequential local-ratio set cover | [`seq::local_ratio_sc`] |
//! | Alg 1 randomized local-ratio set cover (`f`-approx) | [`rlr::setcover`], [`mr::set_cover`] |
//! | Thm 2.4 `f = 2` vertex cover fast path | [`mr::vertex_cover`] |
//! | Alg 2 / Alg 6 hungry-greedy MIS | [`hungry::mis`], [`mr::mis`] |
//! | App B maximal clique | [`hungry::clique`], [`mr::clique`] |
//! | Alg 3 `(1+ε) ln Δ` set cover | [`hungry::setcover`], [`mr::set_cover_greedy`] |
//! | Alg 4 / App C matching | [`rlr::matching`], [`mr::matching`] |
//! | Alg 7 / App D b-matching | [`rlr::bmatching`], [`mr::bmatching`] |
//! | Alg 5 vertex colouring, Rem 6.5 edge colouring | [`colouring`], [`mr::colouring`] |
//!
//! Plus: sequential baselines ([`seq`]), exact solvers ([`exact`]) and
//! validators/certificates ([`verify`]).

#![warn(missing_docs)]

pub mod colouring;
pub mod exact;
pub mod hungry;
pub mod mr;
pub mod rlr;
pub mod seq;
pub mod types;
pub mod verify;

pub use types::{ColouringResult, CoverResult, MatchingResult, SelectionResult, POS_TOL};
