//! Algorithm 1: the randomized local-ratio `f`-approximation for minimum
//! weight set cover (Section 2.1, Theorem 2.3).
//!
//! Each round samples every still-uncovered element independently with
//! probability `p = min(1, 2η/|U_r|)`, runs the sequential local-ratio
//! algorithm on the sample, and removes every element covered by the
//! zero-weight sets. Lemma 2.2: the uncovered set shrinks by a factor
//! `≈ η/n` per round, so with `η = n^{1+µ}` and `m ≤ n^{1+c}` the loop ends
//! within `⌈c/µ⌉` rounds w.h.p.
//!
//! All sampling coins are hash-derived from `(seed, round, element)`
//! ([`mrlr_mapreduce::rng::coin`]), so this driver and the MapReduce
//! implementation ([`crate::mr::set_cover`]) produce *identical* output for
//! identical seeds.

use mrlr_mapreduce::rng::coin;
use mrlr_mapreduce::{MrError, MrResult};
use mrlr_setsys::{ElemId, SetSystem};

use crate::seq::local_ratio_sc::ScLocalRatio;
use crate::types::CoverResult;

/// Tag mixed into Algorithm 1's sampling coins (shared with the MR driver).
pub const SC_COIN_TAG: u64 = 0x5343_414c_4731;

/// The per-round sampling probability `p = min(1, 2η/|U_r|)`.
pub fn sample_probability(eta: usize, alive: usize) -> f64 {
    if alive == 0 {
        1.0
    } else {
        (2.0 * eta as f64 / alive as f64).min(1.0)
    }
}

/// Runs Algorithm 1 with sample budget `eta` (the paper's `η = n^{1+µ}`).
///
/// Fails with [`MrError::AlgorithmFailed`] when a sample exceeds `6η`
/// (line 6 of Algorithm 1) and with [`MrError::Infeasible`] when some
/// element is contained in no set.
pub fn approx_set_cover_f(sys: &SetSystem, eta: usize, seed: u64) -> MrResult<CoverResult> {
    if !sys.is_coverable() {
        return Err(MrError::Infeasible(
            "set cover instance leaves an element uncovered".into(),
        ));
    }
    if eta == 0 {
        return Err(MrError::BadConfig("eta must be positive".into()));
    }
    let m = sys.universe();
    let dual_view = sys.dual();
    let mut lr = ScLocalRatio::new(sys.weights());
    // alive[j] ⟺ j ∈ U_r: no containing set has zero residual weight.
    let mut alive = vec![true; m];
    let mut alive_count = m;
    let mut round = 0usize;

    while alive_count > 0 {
        round += 1;
        let p = sample_probability(eta, alive_count);
        // Sample U' ⊆ U_r i.i.d.
        let sample: Vec<ElemId> = (0..m as ElemId)
            .filter(|&j| alive[j as usize] && coin(seed, &[SC_COIN_TAG, round as u64, j as u64], p))
            .collect();
        if sample.len() > crate::mr::SET_COVER_SAMPLE_SLACK * eta {
            return Err(MrError::AlgorithmFailed {
                round,
                reason: format!(
                    "|U'| = {} > {}η = {}",
                    sample.len(),
                    crate::mr::SET_COVER_SAMPLE_SLACK,
                    crate::mr::SET_COVER_SAMPLE_SLACK * eta
                ),
            });
        }
        // Central: local ratio on the sample (natural order).
        for &j in &sample {
            lr.process(j, &dual_view[j as usize]);
        }
        // U_{r+1} = U_r \ S(C): drop every element some zero-weight set
        // covers.
        for j in 0..m {
            if alive[j] && dual_view[j].iter().any(|&i| lr.in_cover(i)) {
                alive[j] = false;
                alive_count -= 1;
            }
        }
        if round > 64 + 2 * m {
            // Unreachable under the algorithm's invariants (p = 1 clears
            // everything); guards against an accounting bug looping forever.
            return Err(MrError::AlgorithmFailed {
                round,
                reason: "round budget exhausted".into(),
            });
        }
    }

    let cover = lr.cover();
    debug_assert!(sys.covers(&cover));
    Ok(CoverResult {
        weight: sys.cover_weight(&cover),
        cover,
        lower_bound: lr.dual(),
        dual: lr.dual_vector(),
        iterations: round,
    })
}

/// Theorem 2.3's predicted iteration bound `⌈c/µ⌉ + 1` for `m = n^{1+c}`
/// elements, `η = n^{1+µ}`.
pub fn predicted_rounds(n: usize, m: usize, eta: usize) -> usize {
    if n < 2 || m < 2 {
        return 1;
    }
    let ln_n = (n as f64).ln();
    let c = (m as f64).ln() / ln_n - 1.0;
    let mu = (eta as f64).ln() / ln_n - 1.0;
    if mu <= 0.0 {
        return m; // η ≤ n: no geometric shrinkage guarantee
    }
    (c / mu).ceil().max(1.0) as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_cover;
    use mrlr_setsys::generators::{bounded_frequency, with_uniform_weights};

    #[test]
    fn covers_and_meets_f_guarantee() {
        for seed in 0..6 {
            let sys = with_uniform_weights(bounded_frequency(40, 600, 3, seed), 1.0, 8.0, seed);
            let f = sys.max_frequency() as f64;
            let r = approx_set_cover_f(&sys, 80, seed).unwrap();
            assert!(is_cover(&sys, &r.cover));
            assert!(
                r.weight <= f * r.lower_bound + 1e-6,
                "seed {seed}: weight {} > f · dual {}",
                r.weight,
                f * r.lower_bound
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let sys = bounded_frequency(30, 400, 2, 5);
        let a = approx_set_cover_f(&sys, 50, 99).unwrap();
        let b = approx_set_cover_f(&sys, 50, 99).unwrap();
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.iterations, b.iterations);
        // A different seed still produces a valid cover (identity of the
        // cover across seeds is possible, so only validity is asserted).
        let c = approx_set_cover_f(&sys, 50, 100).unwrap();
        assert!(sys.covers(&c.cover));
    }

    #[test]
    fn big_eta_finishes_in_one_round() {
        let sys = bounded_frequency(20, 100, 2, 1);
        let r = approx_set_cover_f(&sys, 100, 3).unwrap();
        // p = min(1, 200/100) = 1: everything sampled, one round.
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn rounds_shrink_geometrically() {
        // With η ≪ m the loop takes several rounds but far fewer than m.
        let sys = bounded_frequency(50, 2000, 2, 2);
        let r = approx_set_cover_f(&sys, 100, 7).unwrap();
        assert!(r.iterations >= 2, "too fast: {}", r.iterations);
        assert!(r.iterations <= 20, "too slow: {}", r.iterations);
    }

    #[test]
    fn infeasible_detected() {
        let sys = SetSystem::unit(3, vec![vec![0], vec![1]]);
        assert!(matches!(
            approx_set_cover_f(&sys, 10, 1),
            Err(MrError::Infeasible(_))
        ));
    }

    #[test]
    fn zero_eta_rejected() {
        let sys = SetSystem::unit(1, vec![vec![0]]);
        assert!(matches!(
            approx_set_cover_f(&sys, 0, 1),
            Err(MrError::BadConfig(_))
        ));
    }

    #[test]
    fn predicted_rounds_sane() {
        // n = 100, m = n^1.5, eta = n^1.2 → c = 0.5, µ = 0.2 → 3 + 1.
        let n = 100usize;
        let m = 100_000usize; // 10^5 = n^2.5 → c = 1.5 ⇒ ceil(1.5/0.2)=8
        let eta = 251usize; // ~n^1.2
        let pr = predicted_rounds(n, m, eta);
        assert!((8..=10).contains(&pr), "pr = {pr}");
        assert_eq!(predicted_rounds(1, 1, 10), 1);
    }
}
