//! Ablation of Algorithm 4's key design choice: **per-vertex** sampling.
//!
//! Section 5.2's intuition: sampling `≈ n^µ` of *each vertex's* alive edges
//! and pushing the heaviest per vertex cuts every heavy vertex's degree by
//! an `n^{-µ/4}` factor per iteration (Lemma 5.4) — the per-vertex structure
//! is what the proof leans on. The natural descendant of the filtering
//! technique would instead sample one **global pool** of `η` edges i.i.d.
//! and push whatever is in the pool. Correctness survives (the local ratio
//! method tolerates any order — Theorem 5.1), but the degree-decay guarantee
//! does not: a hub of degree `d ≫ η·d/|E_i|` receives few pooled pushes per
//! iteration, so hubs drain slowly.
//!
//! [`approx_max_matching_pooled`] implements the pooled variant;
//! [`degree_decay_trace`] records `Δ_i` per iteration for either variant, so
//! experiments (E13) can plot the decay the lemma predicts against the
//! decay the ablation loses.

use mrlr_graph::{EdgeId, Graph};
use mrlr_mapreduce::rng::coin;
use mrlr_mapreduce::{MrError, MrResult};

use crate::rlr::matching::MATCH_COIN_TAG;
use crate::seq::local_ratio_matching::{finish, MatchingLocalRatio};
use crate::types::MatchingResult;

/// Tag mixed into the pooled variant's coins (distinct from the per-vertex
/// tag so the two variants draw independent samples).
pub const POOLED_COIN_TAG: u64 = 0x504f_4f4c;

/// The pooled-sampling ablation of Algorithm 4: one global i.i.d. sample of
/// expected size `η` per iteration; every pooled edge that is still alive is
/// pushed (in edge-id order). Still a certified 2-approximation; loses the
/// per-vertex degree-decay guarantee of Lemma 5.4.
pub fn approx_max_matching_pooled(g: &Graph, eta: usize, seed: u64) -> MrResult<MatchingResult> {
    if eta == 0 {
        return Err(MrError::BadConfig("eta must be positive".into()));
    }
    let mut lr = MatchingLocalRatio::new(g.n());
    let mut alive: Vec<bool> = vec![true; g.m()];
    let mut alive_count = g.m();
    let mut iteration = 0usize;

    while alive_count > 0 {
        iteration += 1;
        if alive_count < 4 * eta {
            for (idx, e) in g.edges().iter().enumerate() {
                if alive[idx] {
                    lr.push(idx as EdgeId, e.u, e.v, e.w);
                    alive[idx] = false;
                }
            }
            break;
        }
        let p = (eta as f64 / alive_count as f64).min(1.0);
        let mut pool: Vec<EdgeId> = Vec::new();
        for (idx, is_alive) in alive.iter().enumerate() {
            if *is_alive && coin(seed, &[POOLED_COIN_TAG, iteration as u64, idx as u64], p) {
                pool.push(idx as EdgeId);
            }
        }
        if pool.len() > crate::mr::MATCHING_GATHER_SLACK * eta {
            return Err(MrError::AlgorithmFailed {
                round: iteration,
                reason: format!(
                    "|pool| = {} > {}η = {}",
                    pool.len(),
                    crate::mr::MATCHING_GATHER_SLACK,
                    crate::mr::MATCHING_GATHER_SLACK * eta
                ),
            });
        }
        // Central pass over the pool in edge-id order; `push` is a no-op on
        // edges the pass itself has already killed.
        for eid in pool {
            let e = g.edge(eid);
            if lr.push(eid, e.u, e.v, e.w) {
                alive[eid as usize] = false;
                alive_count -= 1;
            }
        }
        for (idx, e) in g.edges().iter().enumerate() {
            if alive[idx] && !lr.alive(e.u, e.v, e.w) {
                alive[idx] = false;
                alive_count -= 1;
            }
        }
        if iteration > 64 + 4 * g.m() {
            return Err(MrError::AlgorithmFailed {
                round: iteration,
                reason: "iteration budget exhausted".into(),
            });
        }
    }
    Ok(finish(g, lr, iteration))
}

/// Which sampling strategy a trace should follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Algorithm 4's per-vertex sampling (the paper's design).
    PerVertex,
    /// The pooled ablation.
    Pooled,
}

/// Runs the chosen variant and records the maximum alive degree `Δ_i` at the
/// *start* of every iteration (Lemma 5.4's quantity). Returns the trace;
/// `trace\[0\]` is the initial `Δ`, and the final entry precedes the central
/// finish. Fails exactly when the underlying variant fails.
pub fn degree_decay_trace(
    g: &Graph,
    eta: usize,
    seed: u64,
    strategy: SamplingStrategy,
) -> MrResult<Vec<usize>> {
    if eta == 0 {
        return Err(MrError::BadConfig("eta must be positive".into()));
    }
    let n = g.n();
    let adj = g.adjacency();
    let mut lr = MatchingLocalRatio::new(n);
    let mut alive: Vec<bool> = vec![true; g.m()];
    let mut alive_count = g.m();
    let mut iteration = 0usize;
    let mut trace = Vec::new();

    let max_alive_degree = |alive: &[bool]| -> usize {
        let mut deg = vec![0usize; n];
        for (idx, e) in g.edges().iter().enumerate() {
            if alive[idx] {
                deg[e.u as usize] += 1;
                deg[e.v as usize] += 1;
            }
        }
        deg.into_iter().max().unwrap_or(0)
    };

    while alive_count > 0 {
        trace.push(max_alive_degree(&alive));
        iteration += 1;
        if alive_count < 4 * eta {
            break;
        }
        let p = (eta as f64 / alive_count as f64).min(1.0);
        match strategy {
            SamplingStrategy::PerVertex => {
                let mut samples: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
                for (v, nbrs) in adj.iter().enumerate() {
                    for &(_, eid) in nbrs {
                        if alive[eid as usize]
                            && coin(
                                seed,
                                &[MATCH_COIN_TAG, iteration as u64, v as u64, eid as u64],
                                p,
                            )
                        {
                            samples[v].push(eid);
                        }
                    }
                }
                for sample in &samples {
                    let mut best: Option<(f64, EdgeId)> = None;
                    for &eid in sample {
                        let e = g.edge(eid);
                        let m = lr.modified(e.u, e.v, e.w);
                        let better = match best {
                            None => true,
                            Some((bm, bid)) => m > bm || (m == bm && eid < bid),
                        };
                        if better {
                            best = Some((m, eid));
                        }
                    }
                    if let Some((_, eid)) = best {
                        let e = g.edge(eid);
                        if lr.push(eid, e.u, e.v, e.w) {
                            alive[eid as usize] = false;
                            alive_count -= 1;
                        }
                    }
                }
            }
            SamplingStrategy::Pooled => {
                // `alive` is mutated inside the loop, so an iterator borrow
                // is not an option here.
                #[allow(clippy::needless_range_loop)]
                for idx in 0..alive.len() {
                    if alive[idx] && coin(seed, &[POOLED_COIN_TAG, iteration as u64, idx as u64], p)
                    {
                        let e = g.edge(idx as EdgeId);
                        if lr.push(idx as EdgeId, e.u, e.v, e.w) {
                            alive[idx] = false;
                            alive_count -= 1;
                        }
                    }
                }
            }
        }
        for (idx, e) in g.edges().iter().enumerate() {
            if alive[idx] && !lr.alive(e.u, e.v, e.w) {
                alive[idx] = false;
                alive_count -= 1;
            }
        }
        if iteration > 64 + 4 * g.m() {
            return Err(MrError::AlgorithmFailed {
                round: iteration,
                reason: "iteration budget exhausted".into(),
            });
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::max_weight_matching;
    use crate::rlr::approx_max_matching;
    use crate::verify::is_matching;
    use mrlr_graph::generators::{gnm, with_degree_weights, with_uniform_weights};

    #[test]
    fn pooled_is_valid_and_two_approx_certified() {
        for seed in 0..6 {
            let g = with_uniform_weights(&gnm(40, 300, seed), 0.5, 10.0, seed + 3);
            let r = approx_max_matching_pooled(&g, 30, seed).unwrap();
            assert!(is_matching(&g, &r.matching), "seed {seed}");
            assert!(r.certified_ratio(2.0) <= 2.0 + 1e-6);
        }
    }

    #[test]
    fn pooled_within_two_of_exact() {
        for seed in 0..6 {
            let g = with_uniform_weights(&gnm(14, 40, seed), 1.0, 9.0, seed + 5);
            let (opt, _) = max_weight_matching(&g);
            let r = approx_max_matching_pooled(&g, 8, seed).unwrap();
            assert!(2.0 * r.weight + 1e-9 >= opt, "seed {seed}");
        }
    }

    #[test]
    fn traces_start_at_delta_and_shrink() {
        let g = with_uniform_weights(&gnm(60, 900, 2), 1.0, 9.0, 3);
        for strategy in [SamplingStrategy::PerVertex, SamplingStrategy::Pooled] {
            let trace = degree_decay_trace(&g, 50, 7, strategy).unwrap();
            assert!(!trace.is_empty());
            assert_eq!(trace[0], g.max_degree());
            // Δ_i never increases (edges only die).
            for w in trace.windows(2) {
                assert!(w[1] <= w[0], "{strategy:?}: {trace:?}");
            }
        }
    }

    #[test]
    fn per_vertex_trace_matches_algorithm_iterations() {
        let g = with_uniform_weights(&gnm(60, 900, 2), 1.0, 9.0, 3);
        let r = approx_max_matching(&g, 50, 7).unwrap();
        let trace = degree_decay_trace(&g, 50, 7, SamplingStrategy::PerVertex).unwrap();
        assert_eq!(trace.len(), r.iterations);
    }

    #[test]
    fn per_vertex_decays_hub_degrees_no_slower_than_pooled() {
        // A hub-heavy graph with degree-correlated weights: per-vertex
        // sampling attacks every hub each iteration; pooled sampling only
        // pushes an expected η edges wherever they land. Compare Δ after
        // two sampling iterations (deterministic seeds).
        let g = with_degree_weights(&gnm(80, 2000, 5), 0.5);
        let pv = degree_decay_trace(&g, 100, 9, SamplingStrategy::PerVertex).unwrap();
        let pl = degree_decay_trace(&g, 100, 9, SamplingStrategy::Pooled).unwrap();
        let at = |t: &[usize], i: usize| t.get(i).copied().unwrap_or(0);
        assert!(
            at(&pv, 2) <= at(&pl, 2),
            "per-vertex {pv:?} vs pooled {pl:?}"
        );
        // And the pooled variant needs at least as many iterations.
        assert!(pv.len() <= pl.len(), "{} vs {}", pv.len(), pl.len());
    }

    #[test]
    fn pooled_rejects_zero_eta() {
        let g = gnm(5, 4, 0);
        assert!(approx_max_matching_pooled(&g, 0, 0).is_err());
        assert!(degree_decay_trace(&g, 0, 0, SamplingStrategy::Pooled).is_err());
    }

    #[test]
    fn empty_graph_trace_is_empty() {
        let g = mrlr_graph::Graph::new(3, vec![]);
        let trace = degree_decay_trace(&g, 5, 1, SamplingStrategy::PerVertex).unwrap();
        assert!(trace.is_empty());
        let r = approx_max_matching_pooled(&g, 5, 1).unwrap();
        assert!(r.matching.is_empty());
    }
}
