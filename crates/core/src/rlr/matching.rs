//! Algorithm 4: the randomized local-ratio 2-approximation for maximum
//! weight matching (Section 5.2, Theorems 5.5/5.6), including the `µ = 0`
//! regime of Appendix C.
//!
//! Each iteration samples, for every vertex `v`, each alive incident edge
//! into `E'_v` with probability `p = min(η/|E_i|, 1)`; the central machine
//! scans vertices in order, pushing the heaviest sampled edge (by current
//! modified weight) per vertex. When fewer than `4η` edges remain alive the
//! whole residual graph moves to the central machine, which finishes the
//! local-ratio pass exhaustively and unwinds the stack.
//!
//! Sampling coins are derived from `(seed, iteration, vertex, edge)`, so
//! the MapReduce driver ([`crate::mr::matching`]) reproduces this exactly.

use mrlr_graph::{EdgeId, Graph};
use mrlr_mapreduce::rng::coin;
use mrlr_mapreduce::{MrError, MrResult};

use crate::seq::local_ratio_matching::{finish, MatchingLocalRatio};
use crate::types::MatchingResult;

/// Tag mixed into Algorithm 4's sampling coins (shared with the MR driver).
pub const MATCH_COIN_TAG: u64 = 0x4d41_5443_4834;

/// Runs Algorithm 4 with sample budget `eta` (`η = n^{1+µ}`; `η = n` gives
/// the Appendix C `O(log n)` regime).
///
/// Fails with [`MrError::AlgorithmFailed`] when `Σ_v |E'_v| > 8η`
/// (line 10 of Algorithm 4).
pub fn approx_max_matching(g: &Graph, eta: usize, seed: u64) -> MrResult<MatchingResult> {
    if eta == 0 {
        return Err(MrError::BadConfig("eta must be positive".into()));
    }
    let n = g.n();
    let adj = g.adjacency();
    let mut lr = MatchingLocalRatio::new(n);
    // alive[e] ⟺ e ∈ E_i (positive modified weight, not pushed).
    let mut alive: Vec<bool> = vec![true; g.m()];
    let mut alive_count = g.m();
    let mut iteration = 0usize;

    while alive_count > 0 {
        iteration += 1;
        if alive_count < 4 * eta {
            // Final iteration: the whole residual graph fits centrally; one
            // exhaustive local-ratio pass (any order) kills everything.
            for (idx, e) in g.edges().iter().enumerate() {
                if alive[idx] {
                    lr.push(idx as EdgeId, e.u, e.v, e.w);
                    alive[idx] = false;
                }
            }
            break;
        }

        let p = (eta as f64 / alive_count as f64).min(1.0);
        // E'_v per vertex; total sample volume guard.
        let mut samples: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut total = 0usize;
        for (v, nbrs) in adj.iter().enumerate() {
            for &(_, eid) in nbrs {
                if alive[eid as usize]
                    && coin(
                        seed,
                        &[MATCH_COIN_TAG, iteration as u64, v as u64, eid as u64],
                        p,
                    )
                {
                    samples[v].push(eid);
                    total += 1;
                }
            }
        }
        if total > crate::mr::MATCHING_GATHER_SLACK * eta {
            return Err(MrError::AlgorithmFailed {
                round: iteration,
                reason: format!(
                    "Σ|E'_v| = {total} > {}η = {}",
                    crate::mr::MATCHING_GATHER_SLACK,
                    crate::mr::MATCHING_GATHER_SLACK * eta
                ),
            });
        }

        // Central: per vertex in ascending order, push the heaviest sampled
        // edge by *current* modified weight (ties: smaller edge id).
        for sample in samples.iter() {
            let mut best: Option<(f64, EdgeId)> = None;
            for &eid in sample {
                let e = g.edge(eid);
                let m = lr.modified(e.u, e.v, e.w);
                let better = match best {
                    None => true,
                    Some((bm, bid)) => m > bm || (m == bm && eid < bid),
                };
                if better {
                    best = Some((m, eid));
                }
            }
            if let Some((_, eid)) = best {
                let e = g.edge(eid);
                if lr.push(eid, e.u, e.v, e.w) {
                    alive[eid as usize] = false;
                    alive_count -= 1;
                }
            }
        }

        // E_{i+1}: recompute aliveness under the new potentials.
        for (idx, e) in g.edges().iter().enumerate() {
            if alive[idx] && !lr.alive(e.u, e.v, e.w) {
                alive[idx] = false;
                alive_count -= 1;
            }
        }

        if iteration > 64 + 4 * g.m() {
            return Err(MrError::AlgorithmFailed {
                round: iteration,
                reason: "iteration budget exhausted".into(),
            });
        }
    }

    Ok(finish(g, lr, iteration))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::max_weight_matching;
    use crate::verify::is_matching;
    use mrlr_graph::generators::{gnm, with_uniform_weights};

    #[test]
    fn valid_and_two_approx_certified() {
        for seed in 0..6 {
            let g = with_uniform_weights(&gnm(40, 300, seed), 0.5, 10.0, seed + 50);
            let r = approx_max_matching(&g, 30, seed).unwrap();
            assert!(is_matching(&g, &r.matching));
            assert!(r.weight + 1e-6 >= r.stack_gain);
            assert!(r.certified_ratio(2.0) <= 2.0 + 1e-6);
        }
    }

    #[test]
    fn within_two_of_exact_on_small_graphs() {
        for seed in 0..8 {
            let g = with_uniform_weights(&gnm(14, 40, seed), 1.0, 9.0, seed + 7);
            let (opt, _) = max_weight_matching(&g);
            let r = approx_max_matching(&g, 8, seed).unwrap();
            assert!(
                2.0 * r.weight + 1e-9 >= opt,
                "seed {seed}: matching {} vs OPT {}",
                r.weight,
                opt
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = with_uniform_weights(&gnm(30, 200, 3), 1.0, 5.0, 4);
        let a = approx_max_matching(&g, 20, 11).unwrap();
        let b = approx_max_matching(&g, 20, 11).unwrap();
        assert_eq!(a.matching, b.matching);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn big_eta_single_iteration() {
        let g = with_uniform_weights(&gnm(20, 60, 1), 1.0, 3.0, 2);
        let r = approx_max_matching(&g, 100, 5).unwrap();
        // 60 < 4·100: immediately the central pass.
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn mu_zero_regime_terminates_logarithmically() {
        // η = n (Appendix C): iterations should be O(log n), far below m/n.
        let n = 60usize;
        let g = with_uniform_weights(&gnm(n, 900, 2), 1.0, 4.0, 3);
        let r = approx_max_matching(&g, n, 13).unwrap();
        assert!(is_matching(&g, &r.matching));
        assert!(
            r.iterations <= 40,
            "µ=0 regime took {} iterations",
            r.iterations
        );
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(4, vec![]);
        let r = approx_max_matching(&g, 10, 1).unwrap();
        assert!(r.matching.is_empty());
        assert_eq!(r.iterations, 0);
    }
}
