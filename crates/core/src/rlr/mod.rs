//! The randomized local-ratio technique (Sections 2.1 and 5.2, Appendix D):
//! sample i.i.d., run the sequential local-ratio algorithm on the sample
//! centrally, and let the weight reductions eliminate unsampled elements.
//!
//! These drivers operate on in-memory instances; the [`crate::mr`] module
//! contains the cluster implementations, which share these modules' coin
//! streams and therefore produce identical output for identical seeds.

pub mod ablation;
pub mod bmatching;
pub mod matching;
pub mod setcover;

pub use ablation::{approx_max_matching_pooled, degree_decay_trace, SamplingStrategy};
pub use bmatching::{approx_b_matching, push_budget, BMatchingParams};
pub use matching::approx_max_matching;
pub use setcover::{approx_set_cover_f, predicted_rounds, sample_probability};
