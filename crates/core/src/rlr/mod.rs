//! The randomized local-ratio technique (Sections 2.1 and 5.2, Appendix D):
//! sample i.i.d., run the sequential local-ratio algorithm on the sample
//! centrally, and let the weight reductions eliminate unsampled elements.
//!
//! These drivers operate on in-memory instances; the [`crate::mr`] module
//! contains the cluster implementations, which share these modules' coin
//! streams and therefore produce identical output for identical seeds.
//!
//! # The local-ratio stack as a certificate
//!
//! In the paper's notation, processing an element `j` (set cover) reduces
//! the residual weight of every set in `T_j` by
//! `ε_j = min_{i ∈ T_j} w_i`; pushing an edge `e = {u, v}` (matching)
//! records its modified weight `m_e = w_e − ϕ(u) − ϕ(v)` and adds `m_e`
//! to both potentials. The transcripts `{(j, ε_j)}` and `{(e, m_e)}` are
//! exactly the objects the proofs of Theorems 2.1 and 5.1 manipulate:
//! the `ε_j` form a feasible LP dual (`Σ_{j ∈ S_i} ε_j ≤ w_i`, so
//! `Σ_j ε_j ≤ OPT ≤ w(C) ≤ f · Σ_j ε_j`), and the stack satisfies
//! `OPT ≤ 2 Σ_e m_e ≤ 2 · w(M)`. Every driver here records its
//! transcript ([`crate::types::CoverResult::dual`],
//! [`crate::types::MatchingResult::stack`]), so any stored run can be
//! re-verified without re-running the solver:
//!
//! ```
//! use mrlr_core::api::witness::{check_cover_dual, replay_matching_stack};
//! use mrlr_core::rlr::{approx_max_matching, approx_set_cover_f};
//!
//! // Algorithm 1 on a tiny system: {0,1} w=1, {1,2} w=1, {0,2} w=10.
//! let sys = mrlr_setsys::SetSystem::new(
//!     3,
//!     vec![vec![0, 1], vec![1, 2], vec![0, 2]],
//!     vec![1.0, 1.0, 10.0],
//! );
//! let cover = approx_set_cover_f(&sys, 10, 7).unwrap();
//! // The recorded reductions are a feasible dual summing to the claimed
//! // lower bound — the whole Theorem 2.3 guarantee, re-checked.
//! check_cover_dual(&sys, &cover.dual, cover.lower_bound).unwrap();
//!
//! // Algorithm 4 on a weighted path; replaying the stack reproduces the
//! // matching and the gain bit-for-bit (Theorem 5.1's certificate).
//! let g = mrlr_graph::Graph::new(
//!     4,
//!     vec![
//!         mrlr_graph::Edge::new(0, 1, 1.0),
//!         mrlr_graph::Edge::new(1, 2, 10.0),
//!         mrlr_graph::Edge::new(2, 3, 1.0),
//!     ],
//! );
//! let matching = approx_max_matching(&g, 10, 7).unwrap();
//! let replay = replay_matching_stack(&g, &matching.stack).unwrap();
//! assert_eq!(replay.matching, matching.matching);
//! assert_eq!(replay.gain.to_bits(), matching.stack_gain.to_bits());
//! assert!(2.0 * replay.gain >= matching.weight); // OPT ≤ 2·Σ m_e
//! ```

pub mod ablation;
pub mod bmatching;
pub mod matching;
pub mod setcover;

pub use ablation::{approx_max_matching_pooled, degree_decay_trace, SamplingStrategy};
pub use bmatching::{approx_b_matching, push_budget, BMatchingParams};
pub use matching::approx_max_matching;
pub use setcover::{approx_set_cover_f, predicted_rounds, sample_probability};
