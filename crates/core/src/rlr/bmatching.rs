//! Algorithm 7: the randomized ε-adjusted local-ratio
//! `(3 − 2/b + 2ε)`-approximation for maximum weight b-matching
//! (Appendix D.2, Theorem D.3).
//!
//! Differences from Algorithm 4 (matching): each vertex samples a *fixed
//! number* `b(v)·ln(1/δ)·n^µ` of alive incident edges (without
//! replacement), the central machine pushes up to `b(v)·ln(1/δ)` edges per
//! vertex per iteration using ε-adjusted reductions (`δ = ε/(1+ε)`), and an
//! edge dies once `w ≤ (1+ε)(ϕ(u)+ϕ(v))`.

use mrlr_graph::{EdgeId, Graph};
use mrlr_mapreduce::rng::DetRng;
use mrlr_mapreduce::{MrError, MrResult};

use crate::seq::local_ratio_bmatching::BMatchingLocalRatio;
use crate::types::MatchingResult;

/// Tag mixed into Algorithm 7's sampling RNG (shared with the MR driver).
pub const BMATCH_RNG_TAG: u64 = 0x424d_4154_4348;

/// Parameters of Algorithm 7.
#[derive(Debug, Clone, Copy)]
pub struct BMatchingParams {
    /// The adjustment `ε > 0`; the guarantee is `3 − 2/max{2,b} + 2ε`.
    pub eps: f64,
    /// The `n^µ` oversampling factor (how many times more edges are
    /// sampled than will be pushed). Larger = fewer iterations.
    pub n_mu: f64,
    /// The space budget `η = n^{1+µ}`: when `|E_i| < 2 b_max ln(1/δ) η` the
    /// residual graph is finished centrally.
    pub eta: usize,
    /// Sampling seed.
    pub seed: u64,
}

/// Per-vertex central push budget `⌈b(v) · ln(1/δ)⌉`.
pub fn push_budget(b_v: u32, eps: f64) -> usize {
    let delta = eps / (1.0 + eps);
    (b_v as f64 * (1.0 / delta).ln()).ceil().max(1.0) as usize
}

/// Runs Algorithm 7. `b[v] ≥ 1` is the per-vertex capacity.
pub fn approx_b_matching(
    g: &Graph,
    b: &[u32],
    params: BMatchingParams,
) -> MrResult<MatchingResult> {
    if params.eps <= 0.0 || !params.eps.is_finite() {
        return Err(MrError::BadConfig("eps must be positive".into()));
    }
    if params.eta == 0 || params.n_mu < 1.0 {
        return Err(MrError::BadConfig(
            "eta must be positive and n_mu >= 1".into(),
        ));
    }
    assert_eq!(b.len(), g.n());
    let n = g.n();
    let adj = g.adjacency();
    let delta = params.eps / (1.0 + params.eps);
    let ln_inv_delta = (1.0 / delta).ln();
    let b_max = b.iter().copied().max().unwrap_or(1) as f64;
    let central_threshold = (2.0 * b_max * ln_inv_delta * params.eta as f64) as usize;

    let mut lr = BMatchingLocalRatio::new(b, params.eps);
    let mut alive: Vec<bool> = vec![true; g.m()];
    let mut alive_count = g.m();
    let mut iteration = 0usize;

    while alive_count > 0 {
        iteration += 1;
        if alive_count < central_threshold.max(crate::mr::CENTRAL_FINISH_SLACK * params.eta) {
            // Residual graph fits centrally: exhaustive ε-adjusted pass.
            for (idx, e) in g.edges().iter().enumerate() {
                if alive[idx] {
                    lr.push(idx as EdgeId, e.u, e.v, e.w);
                    alive[idx] = false;
                }
            }
            break;
        }

        // Per-vertex sample of b(v)·ln(1/δ)·n^µ alive incident edges,
        // without replacement, in deterministic per-vertex RNG streams.
        let mut samples: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for (v, nbrs) in adj.iter().enumerate() {
            let alive_inc: Vec<EdgeId> = nbrs
                .iter()
                .map(|&(_, eid)| eid)
                .filter(|&eid| alive[eid as usize])
                .collect();
            if alive_inc.is_empty() {
                continue;
            }
            let k = (b[v] as f64 * ln_inv_delta * params.n_mu).ceil() as usize;
            let mut rng =
                DetRng::derive(params.seed, &[BMATCH_RNG_TAG, iteration as u64, v as u64]);
            samples[v] = rng
                .sample_indices(alive_inc.len(), k)
                .into_iter()
                .map(|i| alive_inc[i])
                .collect();
        }

        // Central: per vertex, push up to b(v)·ln(1/δ) heaviest-by-current-
        // modified-weight sampled edges with ε-adjusted reductions.
        for (v, sample) in samples.iter().enumerate() {
            let budget = push_budget(b[v], params.eps);
            let mut remaining: Vec<EdgeId> = sample.clone();
            for _ in 0..budget {
                let mut best: Option<(f64, usize)> = None;
                for (pos, &eid) in remaining.iter().enumerate() {
                    if !alive[eid as usize] {
                        continue;
                    }
                    let e = g.edge(eid);
                    if !lr.alive(e.u, e.v, e.w) {
                        continue;
                    }
                    let m = lr.modified(e.u, e.v, e.w);
                    let better = match best {
                        None => true,
                        Some((bm, bpos)) => m > bm || (m == bm && eid < remaining[bpos]),
                    };
                    if better {
                        best = Some((m, pos));
                    }
                }
                let Some((_, pos)) = best else { break };
                let eid = remaining.swap_remove(pos);
                let e = g.edge(eid);
                if lr.push(eid, e.u, e.v, e.w) {
                    alive[eid as usize] = false;
                    alive_count -= 1;
                }
            }
        }

        // E_{i+1}: recompute ε-adjusted aliveness.
        for (idx, e) in g.edges().iter().enumerate() {
            if alive[idx] && !lr.alive(e.u, e.v, e.w) {
                alive[idx] = false;
                alive_count -= 1;
            }
        }

        if iteration > 64 + 4 * g.m() {
            return Err(MrError::AlgorithmFailed {
                round: iteration,
                reason: "iteration budget exhausted".into(),
            });
        }
    }

    let matching = lr.unwind(g);
    let weight: f64 = matching.iter().map(|&e| g.edge(e).w).sum();
    Ok(MatchingResult {
        matching,
        weight,
        stack_gain: lr.gain(),
        stack: lr.stack().to_vec(),
        iterations: iteration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::max_weight_b_matching;
    use crate::seq::local_ratio_bmatching::b_matching_multiplier;
    use crate::verify::is_b_matching;
    use mrlr_graph::generators::{gnm, with_uniform_weights};

    fn params(eta: usize, seed: u64) -> BMatchingParams {
        BMatchingParams {
            eps: 0.25,
            n_mu: 2.0,
            eta,
            seed,
        }
    }

    #[test]
    fn valid_and_certified() {
        for seed in 0..6 {
            let g = with_uniform_weights(&gnm(30, 200, seed), 0.5, 8.0, seed + 3);
            let b: Vec<u32> = (0..g.n()).map(|v| 1 + (v % 3) as u32).collect();
            let p = params(10, seed);
            let r = approx_b_matching(&g, &b, p).unwrap();
            assert!(is_b_matching(&g, &b, &r.matching));
            let mult = b_matching_multiplier(&b, p.eps);
            assert!(r.certified_ratio(mult) <= mult + 1e-6);
        }
    }

    #[test]
    fn within_bound_of_exact_small() {
        for seed in 0..6 {
            let g = with_uniform_weights(&gnm(10, 20, seed), 1.0, 5.0, seed + 20);
            let b: Vec<u32> = (0..g.n()).map(|v| 1 + (v % 2) as u32).collect();
            let (opt, _) = max_weight_b_matching(&g, &b);
            let p = params(4, seed);
            let r = approx_b_matching(&g, &b, p).unwrap();
            let mult = b_matching_multiplier(&b, p.eps);
            assert!(
                mult * r.weight + 1e-9 >= opt,
                "seed {seed}: {} · {} < {}",
                mult,
                r.weight,
                opt
            );
        }
    }

    #[test]
    fn deterministic() {
        let g = with_uniform_weights(&gnm(20, 100, 1), 1.0, 6.0, 2);
        let b = vec![2u32; g.n()];
        let a = approx_b_matching(&g, &b, params(8, 5)).unwrap();
        let c = approx_b_matching(&g, &b, params(8, 5)).unwrap();
        assert_eq!(a.matching, c.matching);
    }

    #[test]
    fn bad_params_rejected() {
        let g = gnm(4, 3, 0);
        let b = vec![1u32; 4];
        assert!(approx_b_matching(
            &g,
            &b,
            BMatchingParams {
                eps: 0.0,
                n_mu: 2.0,
                eta: 4,
                seed: 0
            }
        )
        .is_err());
        assert!(approx_b_matching(
            &g,
            &b,
            BMatchingParams {
                eps: 0.2,
                n_mu: 0.5,
                eta: 4,
                seed: 0
            }
        )
        .is_err());
    }

    #[test]
    fn push_budget_values() {
        // eps = e/(1-e)… δ = eps/(1+eps); budget = ceil(b ln(1/δ)).
        let eps = 1.0; // δ = 0.5, ln 2 ≈ 0.693
        assert_eq!(push_budget(1, eps), 1);
        assert_eq!(push_budget(3, eps), (3.0f64 * 2.0f64.ln()).ceil() as usize);
    }
}
