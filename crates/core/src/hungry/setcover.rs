//! Algorithm 3: the hungry-greedy `(1+ε) H_Δ ≈ (1+ε) ln Δ` approximation
//! for minimum weight set cover (Section 4, Theorems 4.5/4.6).
//!
//! The ε-greedy rule (Kumar et al.): always add a set whose
//! cover-per-weight ratio is within `(1+ε)` of the best. Sets are bucketed
//! by cost-ratio *level* `L` (divided by `1+ε` when a level empties) and,
//! within a level, grouped by cardinality class
//! `|S_ℓ \ C| ∈ [m^{1-iα}, m^{1-(i-1)α})`. Each round samples groups of
//! expected size `m^{µ/2}` per class; the central machine takes at most one
//! qualifying set per group — a set still covering `≥ m^{1-(i+1)α}/2` new
//! elements at ratio `≥ L/(1+ε)`. Lemma 4.3: the potential
//! `Φ_k = Σ_{ratio ≥ L/(1+ε)} |S_ℓ \ C_k|` shrinks by `m^{µ/8}` per round.
//!
//! The paper's line 20 tests only the cardinality; we also re-test the
//! ratio at add time, which the ε-greedy correctness argument (and the
//! definition of `S'_{k,i}` in Lemma 4.2) requires.

use mrlr_mapreduce::{MrError, MrResult};
use mrlr_setsys::{SetId, SetSystem};

use crate::hungry::mis::group_choice;
use crate::seq::greedy_sc::{fitted_dual, harmonic};
use crate::types::CoverResult;

/// Tag mixed into Algorithm 3's sampling RNG (shared with the MR driver).
pub const HSC_RNG_TAG: u64 = 0x4853_4337;

/// Parameters of Algorithm 3.
#[derive(Debug, Clone, Copy)]
pub struct HungryScParams {
    /// The ε-greedy slack (`> 0`); approximation `(1+ε) H_Δ`.
    pub eps: f64,
    /// Class granularity `α` (the paper analyzes `α = µ/8`).
    pub alpha: f64,
    /// Expected group size (the paper's `m^{µ/2}`).
    pub group_size: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl HungryScParams {
    /// The paper's parameterization for universe size `m` and memory
    /// exponent `µ`.
    pub fn new(m: usize, mu: f64, eps: f64, seed: u64) -> Self {
        let mf = m.max(2) as f64;
        HungryScParams {
            eps,
            alpha: mu / 8.0,
            group_size: mf.powf(mu / 2.0).ceil() as usize,
            seed,
        }
    }
}

/// Per-round statistics for the potential-decay experiment (Lemma 4.3).
#[derive(Debug, Clone, Default)]
pub struct HungryScTrace {
    /// `Φ_k` at the start of each inner-loop round.
    pub potentials: Vec<f64>,
    /// Number of levels (`L` decrements).
    pub levels: usize,
    /// Rounds on which a group overflowed (`|X_{i,j}| > 4·gs`) and the
    /// iteration was skipped.
    pub failed_rounds: usize,
}

/// Runs Algorithm 3, returning the cover and the per-round trace.
pub fn hungry_set_cover(
    sys: &SetSystem,
    params: HungryScParams,
) -> MrResult<(CoverResult, HungryScTrace)> {
    if params.eps <= 0.0 || !params.eps.is_finite() {
        return Err(MrError::BadConfig("eps must be positive".into()));
    }
    if !(params.alpha > 0.0 && params.alpha <= 1.0) || params.group_size == 0 {
        return Err(MrError::BadConfig("invalid alpha/group_size".into()));
    }
    if !sys.is_coverable() {
        return Err(MrError::Infeasible("element contained in no set".into()));
    }

    let m = sys.universe();
    let n = sys.n_sets();
    let mf = (m.max(2)) as f64;
    let num_classes = (1.0 / params.alpha).ceil() as usize;
    let dual_view = sys.dual();

    let mut covered = vec![false; m];
    let mut covered_count = 0usize;
    let mut uncov: Vec<usize> = sys.sets().iter().map(Vec::len).collect();
    let mut chosen_flag = vec![false; n];
    let mut solution: Vec<SetId> = Vec::new();
    let mut price_sum = 0.0f64;
    let mut prices: Vec<(mrlr_setsys::ElemId, f64)> = Vec::new();
    let mut trace = HungryScTrace::default();

    let ratio = |ell: usize, uncov: &[usize]| uncov[ell] as f64 / sys.weight(ell as SetId);
    let mut level = (0..n).map(|l| ratio(l, &uncov)).fold(0.0f64, f64::max);
    let mut k = 0usize;

    #[allow(clippy::too_many_arguments)]
    let add_set = |ell: usize,
                   covered: &mut Vec<bool>,
                   covered_count: &mut usize,
                   uncov: &mut Vec<usize>,
                   chosen_flag: &mut Vec<bool>,
                   solution: &mut Vec<SetId>,
                   price_sum: &mut f64,
                   prices: &mut Vec<(mrlr_setsys::ElemId, f64)>| {
        debug_assert!(!chosen_flag[ell] && uncov[ell] > 0);
        let price = sys.weight(ell as SetId) / uncov[ell] as f64;
        chosen_flag[ell] = true;
        solution.push(ell as SetId);
        for &j in sys.set(ell as SetId) {
            if !covered[j as usize] {
                covered[j as usize] = true;
                *covered_count += 1;
                *price_sum += price;
                prices.push((j, price));
                for &owner in &dual_view[j as usize] {
                    uncov[owner as usize] -= 1;
                }
            }
        }
    };

    while covered_count < m {
        // Inner loop for the current level L.
        loop {
            let exists = (0..n).any(|l| {
                !chosen_flag[l] && uncov[l] > 0 && ratio(l, &uncov) >= level / (1.0 + params.eps)
            });
            if !exists {
                break;
            }
            k += 1;
            if k > 10_000 + 16 * n {
                return Err(MrError::AlgorithmFailed {
                    round: k,
                    reason: "Algorithm 3 inner-loop budget exhausted".into(),
                });
            }
            // Potential Φ_k for the trace.
            let phi: f64 = (0..n)
                .filter(|&l| !chosen_flag[l] && ratio(l, &uncov) >= level / (1.0 + params.eps))
                .map(|l| uncov[l] as f64)
                .sum();
            trace.potentials.push(phi);

            // Classify qualifying sets by cardinality class.
            let mut classes: Vec<Vec<usize>> = vec![Vec::new(); num_classes + 1];
            for l in 0..n {
                if chosen_flag[l] || uncov[l] == 0 {
                    continue;
                }
                if ratio(l, &uncov) < level / (1.0 + params.eps) {
                    continue;
                }
                let i = super::mis::degree_class(uncov[l], mf, params.alpha, num_classes);
                classes[i].push(l);
            }

            // Sample groups per class; detect overflow (fail & continue).
            let mut overflow = false;
            let mut all_groups: Vec<(usize, Vec<usize>)> = Vec::new(); // (class, members)
            for (i, class) in classes.iter().enumerate().skip(1) {
                if class.is_empty() {
                    continue;
                }
                let groups_count = (2.0 * mf.powf((i + 1) as f64 * params.alpha)).ceil() as usize;
                let mut members: Vec<Vec<usize>> = vec![Vec::new(); groups_count];
                for &l in class {
                    if let Some(gid) = group_choice(
                        params.seed,
                        &[HSC_RNG_TAG, k as u64, i as u64],
                        l as u64,
                        groups_count,
                        params.group_size,
                        class.len(),
                    ) {
                        members[gid].push(l);
                    }
                }
                if members.iter().any(|g| g.len() > 4 * params.group_size) {
                    overflow = true;
                    break;
                }
                for g in members {
                    if !g.is_empty() {
                        all_groups.push((i, g));
                    }
                }
            }
            if overflow {
                // Paper lines 15-17: fail this iteration, continue.
                trace.failed_rounds += 1;
                continue;
            }

            // Central: one qualifying set per group, classes ascending.
            for (i, group) in &all_groups {
                let accept = mf.powf(1.0 - (*i as f64 + 1.0) * params.alpha) / 2.0;
                let mut best: Option<usize> = None;
                for &l in group {
                    if chosen_flag[l]
                        || (uncov[l] as f64) < accept
                        || ratio(l, &uncov) < level / (1.0 + params.eps)
                    {
                        continue;
                    }
                    best = match best {
                        None => Some(l),
                        Some(b) if uncov[l] > uncov[b] => Some(l),
                        other => other,
                    };
                }
                if let Some(l) = best {
                    add_set(
                        l,
                        &mut covered,
                        &mut covered_count,
                        &mut uncov,
                        &mut chosen_flag,
                        &mut solution,
                        &mut price_sum,
                        &mut prices,
                    );
                }
            }
        }
        if covered_count < m {
            level /= 1.0 + params.eps;
            trace.levels += 1;
        }
    }

    solution.sort_unstable();
    let weight = sys.cover_weight(&solution);
    let h = harmonic(sys.max_set_size());
    let result = CoverResult {
        cover: solution,
        weight,
        lower_bound: price_sum / ((1.0 + params.eps) * h),
        dual: fitted_dual(&prices, params.eps, h),
        iterations: k,
    };
    Ok((result, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::min_weight_set_cover;
    use crate::verify::is_cover;
    use mrlr_setsys::generators::{bounded_set_size, with_uniform_weights};

    fn params(m: usize, seed: u64) -> HungryScParams {
        HungryScParams::new(m, 0.4, 0.2, seed)
    }

    #[test]
    fn covers_and_meets_ln_delta_guarantee() {
        for seed in 0..5 {
            let sys = with_uniform_weights(bounded_set_size(120, 80, 10, seed), 1.0, 6.0, seed);
            let (r, _) = hungry_set_cover(&sys, params(80, seed)).unwrap();
            assert!(is_cover(&sys, &r.cover), "seed {seed}");
            let bound = (1.0 + 0.2) * harmonic(sys.max_set_size());
            assert!(
                r.weight <= bound * r.lower_bound * (1.0 + 1e-9) + 1e-9,
                "seed {seed}: {} > {}",
                r.weight,
                bound * r.lower_bound
            );
        }
    }

    #[test]
    fn near_exact_on_small_instances() {
        for seed in 0..5 {
            let sys = with_uniform_weights(bounded_set_size(12, 16, 6, seed), 1.0, 3.0, seed);
            let (opt, _) = min_weight_set_cover(&sys).unwrap();
            let (r, _) = hungry_set_cover(&sys, params(16, seed)).unwrap();
            let bound = (1.0 + 0.2) * harmonic(sys.max_set_size());
            assert!(
                r.weight <= bound * opt + 1e-9,
                "seed {seed}: {} > {} * {}",
                r.weight,
                bound,
                opt
            );
        }
    }

    #[test]
    fn potential_decreases() {
        let sys = bounded_set_size(400, 200, 20, 7);
        let (_, trace) = hungry_set_cover(&sys, params(200, 3)).unwrap();
        assert!(!trace.potentials.is_empty());
        // The potential at the last recorded round of each level is below
        // the first (weak sanity of Lemma 4.3's direction).
        assert!(trace.potentials.last().unwrap() <= &trace.potentials[0]);
    }

    #[test]
    fn deterministic() {
        let sys = bounded_set_size(60, 50, 8, 2);
        let (a, _) = hungry_set_cover(&sys, params(50, 9)).unwrap();
        let (b, _) = hungry_set_cover(&sys, params(50, 9)).unwrap();
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn infeasible_rejected() {
        let sys = SetSystem::unit(3, vec![vec![0], vec![1]]);
        assert!(matches!(
            hungry_set_cover(&sys, params(3, 1)),
            Err(MrError::Infeasible(_))
        ));
    }

    #[test]
    fn bad_params_rejected() {
        let sys = SetSystem::unit(1, vec![vec![0]]);
        let mut p = params(1, 1);
        p.eps = 0.0;
        assert!(hungry_set_cover(&sys, p).is_err());
    }
}
