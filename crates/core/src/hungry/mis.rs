//! Algorithms 2 and 6: hungry-greedy maximal independent set.
//!
//! The hungry-greedy idea (Section 3): repeatedly sample groups of *heavy*
//! vertices — not to maximize anything, but because adding one heavy vertex
//! to `I` disqualifies ≥ `n^{1-iα}` others, shrinking the instance
//! geometrically. Algorithm 2 (`MIS1`) runs `1/α` phases, each reducing the
//! maximum alive degree by `n^α`, in `O(1/µ²)` rounds total. Algorithm 6
//! (`MIS2`) handles all degree classes simultaneously and terminates once
//! the alive edge count drops below `η = n^{1+µ}` — `O(c/µ)` rounds
//! (Theorem A.3).
//!
//! Group sampling uses one hash-derived group choice per heavy vertex with
//! the same expected group size `n^{µ/2}` as the paper's draws (see
//! DESIGN.md, substitutions) — this keeps sampling machine-local.

use mrlr_graph::{Graph, VertexId};
use mrlr_mapreduce::rng::DetRng;
use mrlr_mapreduce::{MrError, MrResult};

use crate::types::SelectionResult;

/// Tag mixed into the MIS sampling RNG (shared with the MR driver).
pub const MIS_RNG_TAG: u64 = 0x4d49_5331;

/// Parameters of the hungry-greedy MIS algorithms.
#[derive(Debug, Clone, Copy)]
pub struct MisParams {
    /// Phase granularity `α` (`µ/2` for Algorithm 2, `µ/8` for
    /// Algorithm 6).
    pub alpha: f64,
    /// Expected group size (the paper's `n^{µ/2}`).
    pub group_size: usize,
    /// Termination budget: Algorithm 2 stops phasing once the degree
    /// threshold is ≤ `final_degree` (the paper's `n^µ`); Algorithm 6 stops
    /// once alive edges < `eta` (`n^{1+µ}`). Both then finish centrally.
    pub eta: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl MisParams {
    /// The paper's parameterization for Algorithm 2 on `n` vertices with
    /// memory exponent `µ = mu`.
    pub fn mis1(n: usize, mu: f64, seed: u64) -> Self {
        let nf = n.max(2) as f64;
        MisParams {
            alpha: mu / 2.0,
            group_size: nf.powf(mu / 2.0).ceil() as usize,
            eta: nf.powf(1.0 + mu).ceil() as usize,
            seed,
        }
    }

    /// The paper's parameterization for Algorithm 6 (Appendix A).
    pub fn mis2(n: usize, mu: f64, seed: u64) -> Self {
        let nf = n.max(2) as f64;
        MisParams {
            alpha: mu / 8.0,
            group_size: nf.powf(mu / 2.0).ceil() as usize,
            eta: nf.powf(1.0 + mu).ceil() as usize,
            seed,
        }
    }
}

/// Shared mutable state: the independent set `I`, the removed set `N⁺(I)`,
/// and alive degrees `d_I(v)`.
pub(crate) struct MisState {
    pub adj: Vec<Vec<VertexId>>,
    pub in_i: Vec<bool>,
    pub removed: Vec<bool>,
    pub d_alive: Vec<usize>,
}

impl MisState {
    pub fn new(g: &Graph) -> Self {
        let adj = g.neighbours();
        let d_alive = adj.iter().map(Vec::len).collect();
        MisState {
            adj,
            in_i: vec![false; g.n()],
            removed: vec![false; g.n()],
            d_alive,
        }
    }

    /// Adds `v` to `I`, removing it and its alive neighbours, and updating
    /// alive degrees. No-op if `v` is already removed.
    pub fn add(&mut self, v: VertexId) {
        let v = v as usize;
        if self.removed[v] {
            return;
        }
        self.in_i[v] = true;
        let mut newly: Vec<usize> = vec![v];
        self.removed[v] = true;
        // Clone indices, not the list, to appease the borrow checker cheaply.
        for i in 0..self.adj[v].len() {
            let w = self.adj[v][i] as usize;
            if !self.removed[w] {
                self.removed[w] = true;
                newly.push(w);
            }
        }
        for &x in &newly {
            self.d_alive[x] = 0;
            for i in 0..self.adj[x].len() {
                let y = self.adj[x][i] as usize;
                if !self.removed[y] {
                    self.d_alive[y] -= 1;
                }
            }
        }
    }

    pub fn alive_edges(&self) -> usize {
        self.d_alive.iter().sum::<usize>() / 2
    }

    pub fn independent_set(&self) -> Vec<VertexId> {
        (0..self.in_i.len() as VertexId)
            .filter(|&v| self.in_i[v as usize])
            .collect()
    }

    /// Greedy MIS over the given candidate vertices, ascending id — the
    /// "place everything on a central machine" finish.
    pub fn finish_greedy(&mut self, candidates: impl Iterator<Item = VertexId>) {
        for v in candidates {
            if !self.removed[v as usize] {
                self.add(v);
            }
        }
    }
}

/// Per-entity group choice: joins one of `groups` groups with probability
/// `min(1, groups·group_size/population)`, or `None`. Deterministic per
/// `(seed, tags..., entity)`.
pub(crate) fn group_choice(
    seed: u64,
    tags: &[u64],
    entity: u64,
    groups: usize,
    group_size: usize,
    population: usize,
) -> Option<usize> {
    if population == 0 || groups == 0 {
        return None;
    }
    let mut tagv = Vec::with_capacity(tags.len() + 2);
    tagv.extend_from_slice(tags);
    tagv.push(entity);
    let mut rng = DetRng::derive(seed, &tagv);
    let p = ((groups * group_size) as f64 / population as f64).min(1.0);
    if rng.f64() < p {
        Some(rng.range_usize(groups))
    } else {
        None
    }
}

/// Algorithm 2 (`MIS1`): phase-by-phase degree reduction, `O(1/µ²)` rounds.
pub fn mis_simple(g: &Graph, params: MisParams) -> MrResult<SelectionResult> {
    validate(params)?;
    let n = g.n();
    if n == 0 {
        return Ok(SelectionResult {
            vertices: vec![],
            phases: 0,
            iterations: 0,
        });
    }
    let nf = (n.max(2)) as f64;
    let final_degree = (params.eta as f64 / nf).max(1.0);
    let mut st = MisState::new(g);
    let mut phases = 0usize;
    let mut iterations = 0usize;

    let mut i = 0usize;
    loop {
        i += 1;
        let tau = nf.powf(1.0 - i as f64 * params.alpha);
        if tau <= final_degree || tau < 1.0 {
            break;
        }
        phases += 1;
        let groups_target = nf.powf(i as f64 * params.alpha).ceil() as usize;
        // Inner loop: shrink VH below n^{iα}.
        let mut guard = 0usize;
        loop {
            let heavy: Vec<VertexId> = (0..n as VertexId)
                .filter(|&v| !st.removed[v as usize] && st.d_alive[v as usize] as f64 >= tau)
                .collect();
            if heavy.len() < groups_target {
                // Paper line 12: finish this phase's stragglers centrally
                // (|VH| < n^{iα} vertices fit on the central machine).
                st.finish_greedy(heavy.into_iter());
                iterations += 1;
                break;
            }
            iterations += 1;
            guard += 1;
            if guard > 64 + 4 * n {
                return Err(MrError::AlgorithmFailed {
                    round: iterations,
                    reason: "MIS1 inner loop budget exhausted".into(),
                });
            }
            // Sample groups and process them in order.
            let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); groups_target];
            for &v in &heavy {
                if let Some(gid) = group_choice(
                    params.seed,
                    &[MIS_RNG_TAG, i as u64, guard as u64],
                    v as u64,
                    groups_target,
                    params.group_size,
                    heavy.len(),
                ) {
                    members[gid].push(v);
                }
            }
            for group in &members {
                // Hungriest qualifying vertex: max alive degree, tie -> id.
                let mut best: Option<VertexId> = None;
                for &v in group {
                    if st.removed[v as usize] || (st.d_alive[v as usize] as f64) < tau {
                        continue;
                    }
                    best = match best {
                        None => Some(v),
                        Some(b) if st.d_alive[v as usize] > st.d_alive[b as usize] => Some(v),
                        other => other,
                    };
                }
                if let Some(v) = best {
                    st.add(v);
                }
            }
        }
    }

    // Final central round: the whole residual graph fits in memory.
    st.finish_greedy(0..n as VertexId);
    iterations += 1;
    Ok(SelectionResult {
        vertices: st.independent_set(),
        phases,
        iterations,
    })
}

/// Algorithm 6 (`MIS2`): all degree classes per round, `O(c/µ)` rounds.
pub fn mis_fast(g: &Graph, params: MisParams) -> MrResult<SelectionResult> {
    validate(params)?;
    let n = g.n();
    if n == 0 {
        return Ok(SelectionResult {
            vertices: vec![],
            phases: 0,
            iterations: 0,
        });
    }
    let nf = (n.max(2)) as f64;
    let num_classes = (1.0 / params.alpha).ceil() as usize;
    let mut st = MisState::new(g);
    let mut k = 0usize;

    while st.alive_edges() >= params.eta {
        k += 1;
        if k > 64 + 4 * n {
            return Err(MrError::AlgorithmFailed {
                round: k,
                reason: "MIS2 round budget exhausted".into(),
            });
        }
        // Classify alive vertices by degree: class i has
        // d ∈ [n^{1-iα}, n^{1-(i-1)α}).
        let mut classes: Vec<Vec<VertexId>> = vec![Vec::new(); num_classes + 1];
        for v in 0..n {
            if st.removed[v] || st.d_alive[v] == 0 {
                continue;
            }
            let i = degree_class(st.d_alive[v], nf, params.alpha, num_classes);
            classes[i].push(v as VertexId);
        }
        for (i, class) in classes.iter().enumerate().skip(1) {
            if class.is_empty() {
                continue;
            }
            let groups_count = nf.powf((i + 1) as f64 * params.alpha).ceil() as usize;
            let accept = nf.powf(1.0 - (i + 1) as f64 * params.alpha);
            let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); groups_count];
            for &v in class {
                if let Some(gid) = group_choice(
                    params.seed,
                    &[MIS_RNG_TAG, 0x6d32, k as u64, i as u64],
                    v as u64,
                    groups_count,
                    params.group_size,
                    class.len(),
                ) {
                    members[gid].push(v);
                }
            }
            for group in &members {
                let mut best: Option<VertexId> = None;
                for &v in group {
                    if st.removed[v as usize] || (st.d_alive[v as usize] as f64) < accept {
                        continue;
                    }
                    best = match best {
                        None => Some(v),
                        Some(b) if st.d_alive[v as usize] > st.d_alive[b as usize] => Some(v),
                        other => other,
                    };
                }
                if let Some(v) = best {
                    st.add(v);
                }
            }
        }
    }

    // Final central round over the residual graph (< η edges).
    st.finish_greedy(0..n as VertexId);
    Ok(SelectionResult {
        vertices: st.independent_set(),
        phases: k,
        iterations: k + 1,
    })
}

/// Class index `i ∈ [1, num_classes]` with `d ∈ [n^{1-iα}, n^{1-(i-1)α})`.
/// A small epsilon keeps exact boundary degrees (`d = n^{1-iα}`) in their
/// intended class despite floating-point log rounding.
pub(crate) fn degree_class(d: usize, nf: f64, alpha: f64, num_classes: usize) -> usize {
    debug_assert!(d >= 1);
    let x = (1.0 - (d as f64).ln() / nf.ln()) / alpha;
    ((x - 1e-9).ceil() as isize).clamp(1, num_classes as isize) as usize
}

fn validate(p: MisParams) -> MrResult<()> {
    if !(p.alpha > 0.0 && p.alpha <= 1.0) {
        return Err(MrError::BadConfig("alpha must be in (0, 1]".into()));
    }
    if p.group_size == 0 || p.eta == 0 {
        return Err(MrError::BadConfig(
            "group_size and eta must be positive".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_maximal_independent_set;
    use mrlr_graph::generators::{complete, densified, gnm, star};

    #[test]
    fn mis1_maximal_on_random_graphs() {
        for seed in 0..5 {
            let g = densified(80, 0.4, seed);
            let r = mis_simple(&g, MisParams::mis1(g.n(), 0.3, seed)).unwrap();
            assert!(is_maximal_independent_set(&g, &r.vertices), "seed {seed}");
        }
    }

    #[test]
    fn mis2_maximal_on_random_graphs() {
        for seed in 0..5 {
            let g = densified(80, 0.4, seed);
            let r = mis_fast(&g, MisParams::mis2(g.n(), 0.3, seed)).unwrap();
            assert!(is_maximal_independent_set(&g, &r.vertices), "seed {seed}");
        }
    }

    #[test]
    fn complete_graph_yields_single_vertex() {
        let g = complete(20);
        let r = mis_fast(&g, MisParams::mis2(20, 0.4, 1)).unwrap();
        assert_eq!(r.vertices.len(), 1);
    }

    #[test]
    fn star_takes_leaves_or_centre() {
        let g = star(30);
        let r = mis_simple(&g, MisParams::mis1(30, 0.4, 2)).unwrap();
        assert!(is_maximal_independent_set(&g, &r.vertices));
        assert!(r.vertices.len() == 1 || r.vertices.len() == 29);
    }

    #[test]
    fn deterministic() {
        let g = gnm(60, 400, 3);
        let a = mis_fast(&g, MisParams::mis2(60, 0.3, 7)).unwrap();
        let b = mis_fast(&g, MisParams::mis2(60, 0.3, 7)).unwrap();
        assert_eq!(a.vertices, b.vertices);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn empty_and_edgeless() {
        let r = mis_simple(&Graph::new(0, vec![]), MisParams::mis1(0, 0.3, 1)).unwrap();
        assert!(r.vertices.is_empty());
        let g = Graph::new(5, vec![]);
        let r = mis_fast(&g, MisParams::mis2(5, 0.3, 1)).unwrap();
        assert_eq!(r.vertices.len(), 5);
    }

    #[test]
    fn degree_class_boundaries() {
        let nf = 10_000f64; // ln n = 9.21
        let alpha = 0.25;
        // d = n => class ... x = (1-1)/0.25 = 0 -> clamp 1
        assert_eq!(degree_class(10_000, nf, alpha, 4), 1);
        // d = n^0.75 => x = (1-0.75)/0.25 = 1 (boundary, lands in class 1)
        assert_eq!(degree_class(1_000, nf, alpha, 4), 1);
        // d just below n^0.75 → class 2
        assert_eq!(degree_class(999, nf, alpha, 4), 2);
        // d = 1 → x = 4
        assert_eq!(degree_class(1, nf, alpha, 4), 4);
    }

    #[test]
    fn bad_params_rejected() {
        let g = star(4);
        let bad = MisParams {
            alpha: 0.0,
            group_size: 2,
            eta: 4,
            seed: 0,
        };
        assert!(mis_simple(&g, bad).is_err());
    }
}
