//! The hungry-greedy technique (Sections 3 and 4, Appendices A and B):
//! sample *heavy* entities first — not to maximize an objective, but to
//! disqualify a large fraction of candidates and shrink the instance
//! geometrically, so the greedy method completes in a few rounds.
//!
//! # The greedy dual as a certificate
//!
//! In the paper's notation, when the ε-greedy rule (Section 4) adds a set
//! `S_ℓ` covering `d = |S_ℓ \ C|` new elements, each of them is priced
//! `price_j = w_ℓ / d`. Dual fitting (the Chvátal analysis behind
//! Theorem 4.5) shows the *fitted* prices
//! `y_j = price_j / ((1+ε) H_Δ)` are a feasible LP dual —
//! `Σ_{j ∈ S} y_j ≤ w_S` for every set `S` — so
//! `Σ_j y_j ≤ OPT ≤ w(C) ≤ (1+ε) H_Δ · Σ_j y_j`. [`hungry_set_cover`]
//! records the fitted dual in [`crate::types::CoverResult::dual`]
//! (MIS/clique runs instead carry per-vertex maximality blockers built at
//! certification time), so the `(1+ε) ln Δ` guarantee of any stored run
//! can be re-checked offline:
//!
//! ```
//! use mrlr_core::api::witness::check_cover_dual;
//! use mrlr_core::hungry::{hungry_set_cover, HungryScParams};
//! use mrlr_core::seq::harmonic;
//!
//! let sys = mrlr_setsys::generators::bounded_set_size(30, 25, 5, 1);
//! let params = HungryScParams::new(25, 0.4, 0.2, 1);
//! let (cover, _trace) = hungry_set_cover(&sys, params).unwrap();
//! // The fitted prices are a feasible dual summing to the claimed lower
//! // bound, which certifies the (1+ε)·H_Δ ratio of this very run.
//! check_cover_dual(&sys, &cover.dual, cover.lower_bound).unwrap();
//! let bound = (1.0 + 0.2) * harmonic(sys.max_set_size());
//! assert!(cover.weight <= bound * cover.lower_bound * (1.0 + 1e-9));
//! ```

pub mod clique;
pub mod mis;
pub mod preprocess;
pub mod setcover;

pub use clique::maximal_clique;
pub use mis::{mis_fast, mis_simple, MisParams};
pub use preprocess::{merge_cover, preprocess_weights, Preprocessed};
pub use setcover::{hungry_set_cover, HungryScParams, HungryScTrace};
