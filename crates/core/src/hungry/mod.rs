//! The hungry-greedy technique (Sections 3 and 4, Appendices A and B):
//! sample *heavy* entities first — not to maximize an objective, but to
//! disqualify a large fraction of candidates and shrink the instance
//! geometrically, so the greedy method completes in a few rounds.

pub mod clique;
pub mod mis;
pub mod preprocess;
pub mod setcover;

pub use clique::maximal_clique;
pub use mis::{mis_fast, mis_simple, MisParams};
pub use preprocess::{merge_cover, preprocess_weights, Preprocessed};
pub use setcover::{hungry_set_cover, HungryScParams, HungryScTrace};
