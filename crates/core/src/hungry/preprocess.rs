//! Remark 4.7: preprocessing that bounds the weight spread of a set-cover
//! instance to `w_max/w_min ≤ mn/ε`, which in turn bounds the
//! `log_{1+ε}(Δ·w_max/w_min)` factor in Theorem 4.6's round count.
//!
//! Let `γ = max_j min_{S ∋ j} w(S)` — a lower bound on OPT (the cheapest
//! way to cover the hardest element). Then:
//!
//! * every set with `w ≤ γε/n` can be taken outright: all of them together
//!   cost at most `γε ≤ ε·OPT`;
//! * every set with `w > mγ` can be discarded: OPT ≤ `mγ` (cover each
//!   element with its cheapest set), so such sets never help.
//!
//! The paper notes this runs in `O(log(n)/(µ log m))` MapReduce rounds via
//! a broadcast tree (two aggregations and one broadcast).

use mrlr_mapreduce::{MrError, MrResult};
use mrlr_setsys::{SetId, SetSystem};

/// Outcome of Remark 4.7's preprocessing.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Sets taken outright (cheap sets, total cost ≤ ε·OPT).
    pub taken: Vec<SetId>,
    /// Total weight of the taken sets.
    pub taken_weight: f64,
    /// The reduced instance: remaining sets restricted to uncovered
    /// elements, with ids mapping back via `set_ids` / `elem_ids`.
    pub reduced: SetSystem,
    /// Original id of each reduced set.
    pub set_ids: Vec<SetId>,
    /// Original id of each reduced element.
    pub elem_ids: Vec<u32>,
    /// The lower bound `γ` on OPT.
    pub gamma: f64,
}

/// Applies Remark 4.7 with parameter `eps > 0`.
pub fn preprocess_weights(sys: &SetSystem, eps: f64) -> MrResult<Preprocessed> {
    if eps <= 0.0 || !eps.is_finite() {
        return Err(MrError::BadConfig("eps must be positive".into()));
    }
    if !sys.is_coverable() {
        return Err(MrError::Infeasible("element contained in no set".into()));
    }
    let m = sys.universe();
    let n = sys.n_sets();
    // γ = max over elements of the cheapest containing set.
    let dual = sys.dual();
    let gamma = (0..m)
        .map(|j| {
            dual[j]
                .iter()
                .map(|&i| sys.weight(i))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0f64, f64::max);

    let cheap_cutoff = gamma * eps / n as f64;
    let expensive_cutoff = m as f64 * gamma;

    let mut taken: Vec<SetId> = Vec::new();
    let mut taken_weight = 0.0;
    let mut covered = vec![false; m];
    for i in 0..n {
        if sys.weight(i as SetId) <= cheap_cutoff {
            taken.push(i as SetId);
            taken_weight += sys.weight(i as SetId);
            for &j in sys.set(i as SetId) {
                covered[j as usize] = true;
            }
        }
    }

    // Remaining elements, re-indexed densely.
    let mut elem_ids: Vec<u32> = Vec::new();
    let mut new_elem = vec![u32::MAX; m];
    for j in 0..m {
        if !covered[j] {
            new_elem[j] = elem_ids.len() as u32;
            elem_ids.push(j as u32);
        }
    }
    // Remaining sets: not taken, not absurdly expensive, restricted to
    // uncovered elements. (Keep expensive sets only if they are some
    // element's unique cover — cannot happen: the cheapest containing set
    // has weight ≤ γ ≤ mγ.)
    let mut set_ids: Vec<SetId> = Vec::new();
    let mut sets: Vec<Vec<u32>> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    for i in 0..n {
        let w = sys.weight(i as SetId);
        if w <= cheap_cutoff || w > expensive_cutoff {
            continue;
        }
        let elems: Vec<u32> = sys
            .set(i as SetId)
            .iter()
            .filter(|&&j| !covered[j as usize])
            .map(|&j| new_elem[j as usize])
            .collect();
        set_ids.push(i as SetId);
        sets.push(elems);
        weights.push(w);
    }
    let reduced = SetSystem::new(elem_ids.len(), sets, weights);
    debug_assert!(
        reduced.is_coverable(),
        "preprocessing must keep coverability"
    );
    Ok(Preprocessed {
        taken,
        taken_weight,
        reduced,
        set_ids,
        elem_ids,
        gamma,
    })
}

/// Maps a cover of the reduced instance back to original set ids and
/// merges the taken sets.
pub fn merge_cover(pre: &Preprocessed, reduced_cover: &[SetId]) -> Vec<SetId> {
    let mut cover: Vec<SetId> = pre.taken.clone();
    cover.extend(reduced_cover.iter().map(|&i| pre.set_ids[i as usize]));
    cover.sort_unstable();
    cover.dedup();
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungry::setcover::{hungry_set_cover, HungryScParams};
    use mrlr_setsys::generators::{bounded_set_size, with_log_uniform_weights};

    #[test]
    fn gamma_lower_bounds_opt() {
        let sys = SetSystem::new(
            3,
            vec![vec![0, 1], vec![1, 2], vec![0, 2]],
            vec![2.0, 3.0, 4.0],
        );
        // Element 2's cheapest cover costs 3.0 → γ = 3.
        let pre = preprocess_weights(&sys, 0.5).unwrap();
        assert!((pre.gamma - 3.0).abs() < 1e-12);
        // OPT here is {0,1} = 5 ≥ γ.
    }

    #[test]
    fn spread_is_bounded_after_preprocessing() {
        for seed in 0..5 {
            let sys =
                with_log_uniform_weights(bounded_set_size(200, 80, 10, seed), 1e-6, 1e6, seed);
            let eps = 0.25;
            let pre = preprocess_weights(&sys, eps).unwrap();
            let bound = sys.universe() as f64 * sys.n_sets() as f64 / eps * (1.0 + 1e-9);
            if pre.reduced.n_sets() > 0 {
                assert!(
                    pre.reduced.weight_spread() <= bound,
                    "seed {seed}: spread {} > {}",
                    pre.reduced.weight_spread(),
                    bound
                );
            }
        }
    }

    #[test]
    fn taken_sets_cost_at_most_eps_gamma() {
        for seed in 0..5 {
            let sys = with_log_uniform_weights(bounded_set_size(150, 60, 8, seed), 1e-5, 1e5, seed);
            let eps = 0.3;
            let pre = preprocess_weights(&sys, eps).unwrap();
            assert!(pre.taken_weight <= eps * pre.gamma * (1.0 + 1e-9));
        }
    }

    #[test]
    fn merged_cover_is_feasible_end_to_end() {
        for seed in 0..4 {
            let sys =
                with_log_uniform_weights(bounded_set_size(200, 80, 10, seed), 1e-4, 1e4, seed);
            let pre = preprocess_weights(&sys, 0.25).unwrap();
            let cover = if pre.reduced.universe() == 0 {
                merge_cover(&pre, &[])
            } else {
                let params = HungryScParams::new(pre.reduced.universe(), 0.4, 0.25, seed);
                let (r, _) = hungry_set_cover(&pre.reduced, params).unwrap();
                merge_cover(&pre, &r.cover)
            };
            assert!(sys.covers(&cover), "seed {seed}");
        }
    }

    #[test]
    fn bad_inputs_rejected() {
        let sys = SetSystem::unit(2, vec![vec![0, 1]]);
        assert!(preprocess_weights(&sys, 0.0).is_err());
        let gap = SetSystem::unit(2, vec![vec![0]]);
        assert!(preprocess_weights(&gap, 0.5).is_err());
    }
}
