//! Appendix B: maximal clique via hungry-greedy *without complementing the
//! graph*.
//!
//! A maximal clique is a maximal independent set in the complement, but the
//! complement of a sparse graph has `Ω(n²)` edges and cannot be
//! materialized in `O(n^{1+µ})` memory. The paper's fix: maintain the
//! *active set* `A` (common neighbours of the clique so far). A vertex's
//! complement neighbourhood is `A \ N[v]`, of size
//! `d̄(v) = |A| − 1 − |N(v) ∩ A|`, which is exactly what gets communicated —
//! so each round touches only `O(n^{1+µ})` words even though the
//! complement is dense. The relabelling scheme of Appendix B is realized
//! here as the shrinking active set plus per-round removal deltas (see
//! DESIGN.md, substitutions).

use mrlr_graph::{Graph, VertexId};
use mrlr_mapreduce::{MrError, MrResult};

use crate::hungry::mis::{degree_class, group_choice, MisParams};
use crate::types::SelectionResult;

/// Tag mixed into the clique sampling RNG (shared with the MR driver).
pub const CLIQUE_RNG_TAG: u64 = 0x434c_4951;

/// Mutable clique state: the clique `K`, the active set `A`, and the alive
/// (primal) degrees `|N(v) ∩ A|` from which complement degrees derive.
pub(crate) struct CliqueState {
    pub adj: Vec<Vec<VertexId>>,
    pub active: Vec<bool>,
    pub active_count: usize,
    /// `g_alive[v] = |N(v) ∩ A|` for active `v` (stale for inactive).
    pub g_alive: Vec<usize>,
    pub clique: Vec<VertexId>,
}

impl CliqueState {
    pub fn new(g: &Graph) -> Self {
        let adj = g.neighbours();
        let g_alive = adj.iter().map(Vec::len).collect();
        CliqueState {
            adj,
            active: vec![true; g.n()],
            active_count: g.n(),
            g_alive,
            clique: Vec::new(),
        }
    }

    /// Complement degree of an active vertex.
    pub fn dbar(&self, v: VertexId) -> usize {
        debug_assert!(self.active[v as usize]);
        self.active_count - 1 - self.g_alive[v as usize]
    }

    /// Number of edges in the complement of the active-induced subgraph.
    pub fn complement_edges(&self) -> usize {
        if self.active_count < 2 {
            return 0;
        }
        let alive_deg_sum: usize = (0..self.active.len())
            .filter(|&v| self.active[v])
            .map(|v| self.g_alive[v])
            .sum();
        self.active_count * (self.active_count - 1) / 2 - alive_deg_sum / 2
    }

    /// Adds active vertex `v` to the clique: `A ← A ∩ N(v)`. No-op if `v`
    /// is inactive.
    pub fn add(&mut self, v: VertexId) {
        let v = v as usize;
        if !self.active[v] {
            return;
        }
        self.clique.push(v as VertexId);
        // Deactivate v and every active non-neighbour of v.
        let mut keep = vec![false; self.active.len()];
        for i in 0..self.adj[v].len() {
            let w = self.adj[v][i] as usize;
            if self.active[w] {
                keep[w] = true;
            }
        }
        let removed: Vec<usize> = (0..self.active.len())
            .filter(|&u| self.active[u] && !keep[u])
            .collect();
        for &u in &removed {
            self.active[u] = false;
            self.active_count -= 1;
        }
        for &u in &removed {
            for i in 0..self.adj[u].len() {
                let y = self.adj[u][i] as usize;
                if self.active[y] {
                    self.g_alive[y] -= 1;
                }
            }
        }
    }

    /// Greedy maximal clique over the remaining active vertices — the final
    /// central round (complement fits in memory).
    pub fn finish_greedy(&mut self) {
        let n = self.active.len();
        for v in 0..n as VertexId {
            if self.active[v as usize] {
                self.add(v);
            }
        }
        debug_assert_eq!(self.active_count, 0);
    }
}

/// Hungry-greedy maximal clique (Corollary B.1): the MIS2 schedule run on
/// complement degrees, terminating centrally once the complement of the
/// active subgraph has fewer than `η` edges.
pub fn maximal_clique(g: &Graph, params: MisParams) -> MrResult<SelectionResult> {
    if !(params.alpha > 0.0 && params.alpha <= 1.0) || params.group_size == 0 || params.eta == 0 {
        return Err(MrError::BadConfig(
            "invalid hungry-greedy parameters".into(),
        ));
    }
    let n = g.n();
    if n == 0 {
        return Ok(SelectionResult {
            vertices: vec![],
            phases: 0,
            iterations: 0,
        });
    }
    let nf = (n.max(2)) as f64;
    let num_classes = (1.0 / params.alpha).ceil() as usize;
    let mut st = CliqueState::new(g);
    let mut k = 0usize;

    while st.complement_edges() >= params.eta && st.active_count > 0 {
        k += 1;
        if k > 64 + 4 * n {
            return Err(MrError::AlgorithmFailed {
                round: k,
                reason: "clique round budget exhausted".into(),
            });
        }
        let mut classes: Vec<Vec<VertexId>> = vec![Vec::new(); num_classes + 1];
        for v in 0..n {
            if !st.active[v] {
                continue;
            }
            let d = st.dbar(v as VertexId);
            if d == 0 {
                continue;
            }
            classes[degree_class(d, nf, params.alpha, num_classes)].push(v as VertexId);
        }
        for (i, class) in classes.iter().enumerate().skip(1) {
            if class.is_empty() {
                continue;
            }
            let groups_count = nf.powf((i + 1) as f64 * params.alpha).ceil() as usize;
            let accept = nf.powf(1.0 - (i + 1) as f64 * params.alpha);
            let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); groups_count];
            for &v in class {
                if let Some(gid) = group_choice(
                    params.seed,
                    &[CLIQUE_RNG_TAG, k as u64, i as u64],
                    v as u64,
                    groups_count,
                    params.group_size,
                    class.len(),
                ) {
                    members[gid].push(v);
                }
            }
            for group in &members {
                let mut best: Option<VertexId> = None;
                for &v in group {
                    if !st.active[v as usize] || (st.dbar(v) as f64) < accept {
                        continue;
                    }
                    best = match best {
                        None => Some(v),
                        Some(b) if st.dbar(v) > st.dbar(b) => Some(v),
                        other => other,
                    };
                }
                if let Some(v) = best {
                    st.add(v);
                }
            }
        }
    }

    st.finish_greedy();
    let mut clique = st.clique;
    clique.sort_unstable();
    Ok(SelectionResult {
        vertices: clique,
        phases: k,
        iterations: k + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_maximal_clique;
    use mrlr_graph::generators::{complete, gnp, star};

    #[test]
    fn complete_graph_full_clique() {
        let g = complete(15);
        let r = maximal_clique(&g, MisParams::mis2(15, 0.4, 1)).unwrap();
        assert_eq!(r.vertices.len(), 15);
        assert!(is_maximal_clique(&g, &r.vertices));
    }

    #[test]
    fn star_cliques_are_edges() {
        let g = star(10);
        let r = maximal_clique(&g, MisParams::mis2(10, 0.4, 2)).unwrap();
        assert_eq!(r.vertices.len(), 2);
        assert!(is_maximal_clique(&g, &r.vertices));
    }

    #[test]
    fn random_graphs_maximal() {
        for seed in 0..8 {
            let g = gnp(40, 0.5, seed);
            let r = maximal_clique(&g, MisParams::mis2(40, 0.3, seed)).unwrap();
            assert!(is_maximal_clique(&g, &r.vertices), "seed {seed}");
        }
    }

    #[test]
    fn dense_graphs_maximal() {
        for seed in 0..4 {
            let g = gnp(30, 0.85, seed);
            let r = maximal_clique(&g, MisParams::mis2(30, 0.3, seed)).unwrap();
            assert!(is_maximal_clique(&g, &r.vertices), "seed {seed}");
            assert!(r.vertices.len() >= 3);
        }
    }

    #[test]
    fn deterministic() {
        let g = gnp(25, 0.6, 9);
        let a = maximal_clique(&g, MisParams::mis2(25, 0.3, 5)).unwrap();
        let b = maximal_clique(&g, MisParams::mis2(25, 0.3, 5)).unwrap();
        assert_eq!(a.vertices, b.vertices);
    }

    #[test]
    fn edgeless_graph_single_vertex() {
        let g = Graph::new(6, vec![]);
        let r = maximal_clique(&g, MisParams::mis2(6, 0.3, 1)).unwrap();
        assert_eq!(r.vertices.len(), 1);
        assert!(is_maximal_clique(&g, &r.vertices));
    }

    #[test]
    fn complement_edge_count_matches() {
        let g = star(5); // complement of star: K4 among leaves + isolated centre...
        let st = CliqueState::new(&g);
        // complement edges = C(5,2) - 4 = 6
        assert_eq!(st.complement_edges(), 6);
    }
}
