//! Exact solvers for small instances — the denominators of measured
//! approximation ratios in tests and experiments.
//!
//! All solvers are exponential-time and assert hard instance-size limits;
//! they exist to validate the approximation algorithms, not to compete with
//! them.

use mrlr_graph::{EdgeId, Graph};
use mrlr_setsys::{SetId, SetSystem};

/// Maximum vertices accepted by the bitmask matching/vertex-cover solvers.
pub const EXACT_N_LIMIT: usize = 22;

/// Exact maximum weight matching via bitmask DP over vertices.
/// `O(2^n · n)` time, `O(2^n)` space; requires `n ≤ EXACT_N_LIMIT`.
pub fn max_weight_matching(g: &Graph) -> (f64, Vec<EdgeId>) {
    let n = g.n();
    assert!(
        n <= EXACT_N_LIMIT,
        "exact matching limited to n <= {EXACT_N_LIMIT}"
    );
    if n == 0 {
        return (0.0, vec![]);
    }
    let adj = g.adjacency();
    let full = 1usize << n;
    // value[mask]: best weight using only vertices NOT in `mask`.
    let mut value = vec![f64::NAN; full];
    let mut choice: Vec<Option<EdgeId>> = vec![None; full];
    value[full - 1] = 0.0;
    // Iterate masks descending: a mask's value depends on supersets.
    for mask in (0..full - 1).rev() {
        // Lowest unused vertex.
        let u = (!mask).trailing_zeros() as usize;
        // Option 1: leave u unmatched.
        let mut best = value[mask | (1 << u)];
        let mut pick: Option<EdgeId> = None;
        // Option 2: match u with an unused neighbour.
        for &(v, eid) in &adj[u] {
            let v = v as usize;
            if mask & (1 << v) == 0 && v != u {
                let cand = g.edge(eid).w + value[mask | (1 << u) | (1 << v)];
                if cand > best {
                    best = cand;
                    pick = Some(eid);
                }
            }
        }
        value[mask] = best;
        choice[mask] = pick;
    }
    // Reconstruct.
    let mut mask = 0usize;
    let mut edges = Vec::new();
    while mask != full - 1 {
        let u = (!mask).trailing_zeros() as usize;
        match choice[mask] {
            None => mask |= 1 << u,
            Some(eid) => {
                let e = g.edge(eid);
                edges.push(eid);
                mask |= (1 << e.u as usize) | (1 << e.v as usize);
            }
        }
    }
    edges.sort_unstable();
    (value[0], edges)
}

/// Exact maximum weight b-matching by branch-and-bound over edges.
/// Requires `m ≤ 26`.
pub fn max_weight_b_matching(g: &Graph, b: &[u32]) -> (f64, Vec<EdgeId>) {
    assert!(g.m() <= 26, "exact b-matching limited to m <= 26");
    assert_eq!(b.len(), g.n());
    // Order edges by descending weight for better pruning.
    let mut order: Vec<EdgeId> = (0..g.m() as EdgeId).collect();
    order.sort_by(|&a, &bb| g.edge(bb).w.total_cmp(&g.edge(a).w));
    let suffix: Vec<f64> = {
        let mut s = vec![0.0; g.m() + 1];
        for i in (0..g.m()).rev() {
            s[i] = s[i + 1] + g.edge(order[i]).w;
        }
        s
    };
    struct Search<'a> {
        g: &'a Graph,
        order: &'a [EdgeId],
        suffix: &'a [f64],
        load: Vec<u32>,
        b: &'a [u32],
        best: f64,
        best_set: Vec<EdgeId>,
        current: Vec<EdgeId>,
        current_w: f64,
    }
    impl Search<'_> {
        fn rec(&mut self, idx: usize) {
            if self.current_w > self.best {
                self.best = self.current_w;
                self.best_set = self.current.clone();
            }
            if idx == self.order.len() || self.current_w + self.suffix[idx] <= self.best {
                return;
            }
            let eid = self.order[idx];
            let e = self.g.edge(eid);
            // Take it if capacities allow.
            if self.load[e.u as usize] < self.b[e.u as usize]
                && self.load[e.v as usize] < self.b[e.v as usize]
            {
                self.load[e.u as usize] += 1;
                self.load[e.v as usize] += 1;
                self.current.push(eid);
                self.current_w += e.w;
                self.rec(idx + 1);
                self.current_w -= e.w;
                self.current.pop();
                self.load[e.u as usize] -= 1;
                self.load[e.v as usize] -= 1;
            }
            // Skip it.
            self.rec(idx + 1);
        }
    }
    let mut s = Search {
        g,
        order: &order,
        suffix: &suffix,
        load: vec![0; g.n()],
        b,
        best: 0.0,
        best_set: vec![],
        current: vec![],
        current_w: 0.0,
    };
    s.rec(0);
    s.best_set.sort_unstable();
    (s.best, s.best_set)
}

/// Exact minimum weight set cover. Uses element-mask DP when the universe
/// is small (`m ≤ 20`), otherwise enumerates subsets of sets (`n ≤ 20`).
pub fn min_weight_set_cover(sys: &SetSystem) -> Option<(f64, Vec<SetId>)> {
    if !sys.is_coverable() {
        return None;
    }
    let m = sys.universe();
    let n = sys.n_sets();
    if m <= 20 {
        let full = (1usize << m) - 1;
        let masks: Vec<usize> = sys
            .sets()
            .iter()
            .map(|s| s.iter().fold(0usize, |acc, &j| acc | (1 << j)))
            .collect();
        let mut dp = vec![f64::INFINITY; full + 1];
        let mut from: Vec<Option<(usize, SetId)>> = vec![None; full + 1];
        dp[0] = 0.0;
        for mask in 0..=full {
            if dp[mask].is_infinite() {
                continue;
            }
            // Cover the lowest uncovered element.
            let j = (!mask & full).trailing_zeros() as usize;
            if mask == full {
                break;
            }
            for (i, &sm) in masks.iter().enumerate() {
                if sm & (1 << j) != 0 {
                    let nm = mask | sm;
                    let cand = dp[mask] + sys.weight(i as SetId);
                    if cand < dp[nm] {
                        dp[nm] = cand;
                        from[nm] = Some((mask, i as SetId));
                    }
                }
            }
        }
        let mut cover = Vec::new();
        let mut cur = full;
        while cur != 0 {
            let (prev, set) = from[cur].expect("coverable instance must reach full mask");
            cover.push(set);
            cur = prev;
        }
        cover.sort_unstable();
        cover.dedup();
        Some((dp[full], cover))
    } else {
        assert!(n <= 20, "exact set cover limited to m <= 20 or n <= 20");
        let mut best = f64::INFINITY;
        let mut best_sets: Vec<SetId> = Vec::new();
        for mask in 0usize..(1 << n) {
            let chosen: Vec<SetId> = (0..n as u32).filter(|i| mask & (1 << i) != 0).collect();
            let w = sys.cover_weight(&chosen);
            if w < best && sys.covers(&chosen) {
                best = w;
                best_sets = chosen;
            }
        }
        Some((best, best_sets))
    }
}

/// Exact minimum weight vertex cover (via the set-cover solver when small,
/// or branch-and-bound on edges). Requires `n ≤ 30`.
pub fn min_weight_vertex_cover(g: &Graph, weights: &[f64]) -> (f64, Vec<u32>) {
    assert!(g.n() <= 30, "exact vertex cover limited to n <= 30");
    assert_eq!(weights.len(), g.n());
    // Branch and bound on an uncovered edge: either endpoint must be in.
    struct Search<'a> {
        g: &'a Graph,
        w: &'a [f64],
        in_cover: Vec<bool>,
        excluded: Vec<bool>,
        best: f64,
        best_set: Vec<u32>,
        cur_w: f64,
        cur: Vec<u32>,
    }
    impl Search<'_> {
        fn rec(&mut self) {
            if self.cur_w >= self.best {
                return;
            }
            // Find an uncovered edge whose endpoints are both undecided or
            // violating (an excluded-excluded edge is infeasible).
            let mut pick: Option<(u32, u32)> = None;
            for e in self.g.edges() {
                if self.in_cover[e.u as usize] || self.in_cover[e.v as usize] {
                    continue;
                }
                if self.excluded[e.u as usize] && self.excluded[e.v as usize] {
                    return; // infeasible branch
                }
                pick = Some((e.u, e.v));
                break;
            }
            let Some((u, v)) = pick else {
                self.best = self.cur_w;
                self.best_set = self.cur.clone();
                return;
            };
            let saved = (self.excluded[u as usize], self.excluded[v as usize]);
            for take in [u, v] {
                if self.excluded[take as usize] {
                    continue;
                }
                self.in_cover[take as usize] = true;
                self.cur.push(take);
                self.cur_w += self.w[take as usize];
                self.rec();
                self.cur_w -= self.w[take as usize];
                self.cur.pop();
                self.in_cover[take as usize] = false;
                // Next branch: `take` excluded (the edge then forces the
                // other endpoint on recursion, or prunes as infeasible).
                self.excluded[take as usize] = true;
            }
            self.excluded[u as usize] = saved.0;
            self.excluded[v as usize] = saved.1;
        }
    }
    let mut s = Search {
        g,
        w: weights,
        in_cover: vec![false; g.n()],
        excluded: vec![false; g.n()],
        best: weights.iter().sum::<f64>() + 1.0,
        best_set: (0..g.n() as u32).collect(),
        cur_w: 0.0,
        cur: vec![],
    };
    s.rec();
    s.best_set.sort_unstable();
    (s.best, s.best_set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_b_matching, is_matching, is_vertex_cover};
    use mrlr_graph::generators::{complete, gnm, path, star, with_uniform_weights};
    use mrlr_graph::Edge;

    #[test]
    fn matching_on_path() {
        // Path 0-1-2-3 weights 1, 10, 1: optimum is the middle edge alone?
        // No: {0-1, 2-3} = 2 < 10, so optimum = 10.
        let g = Graph::new(
            4,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 10.0),
                Edge::new(2, 3, 1.0),
            ],
        );
        let (w, edges) = max_weight_matching(&g);
        assert!((w - 10.0).abs() < 1e-12);
        assert_eq!(edges, vec![1]);
        // Unweighted path: two disjoint edges.
        let (w, edges) = max_weight_matching(&path(4));
        assert!((w - 2.0).abs() < 1e-12);
        assert!(is_matching(&path(4), &edges));
    }

    #[test]
    fn matching_on_complete() {
        let g = with_uniform_weights(&complete(8), 1.0, 5.0, 3);
        let (w, edges) = max_weight_matching(&g);
        assert!(is_matching(&g, &edges));
        assert_eq!(edges.len(), 4); // perfect matching exists and weights positive
        let greedy: f64 = edges.iter().map(|&e| g.edge(e).w).sum();
        assert!((greedy - w).abs() < 1e-9);
    }

    #[test]
    fn b_matching_reduces_to_matching_at_b1() {
        for seed in 0..4 {
            let g = with_uniform_weights(&gnm(10, 20, seed), 1.0, 7.0, seed);
            let (w1, _) = max_weight_matching(&g);
            let (wb, eb) = max_weight_b_matching(&g, &vec![1; g.n()]);
            assert!((w1 - wb).abs() < 1e-9, "seed {seed}: {w1} vs {wb}");
            assert!(is_b_matching(&g, &vec![1; g.n()], &eb));
        }
    }

    #[test]
    fn b_matching_uses_capacity() {
        let g = star(5); // 4 unit edges at the centre
        let (w, edges) = max_weight_b_matching(&g, &[3, 1, 1, 1, 1]);
        assert!((w - 3.0).abs() < 1e-12);
        assert_eq!(edges.len(), 3);
    }

    #[test]
    fn set_cover_dp_and_enum_agree() {
        let sys = SetSystem::new(
            6,
            vec![
                vec![0, 1, 2],
                vec![2, 3],
                vec![3, 4, 5],
                vec![0, 5],
                vec![1, 4],
            ],
            vec![3.0, 1.5, 3.0, 2.0, 2.0],
        );
        let (w, cover) = min_weight_set_cover(&sys).unwrap();
        assert!(sys.covers(&cover));
        assert!((sys.cover_weight(&cover) - w).abs() < 1e-12);
        // Cross-check with brute force over set subsets.
        let n = sys.n_sets();
        let mut best = f64::INFINITY;
        for mask in 0usize..(1 << n) {
            let chosen: Vec<SetId> = (0..n as u32).filter(|i| mask & (1 << i) != 0).collect();
            if sys.covers(&chosen) {
                best = best.min(sys.cover_weight(&chosen));
            }
        }
        assert!((w - best).abs() < 1e-12);
    }

    #[test]
    fn set_cover_infeasible_none() {
        let sys = SetSystem::unit(3, vec![vec![0], vec![1]]);
        assert!(min_weight_set_cover(&sys).is_none());
    }

    #[test]
    fn vertex_cover_on_star() {
        let g = star(6);
        // Cheap centre: take it.
        let w = vec![1.0, 5.0, 5.0, 5.0, 5.0, 5.0];
        let (cost, cover) = min_weight_vertex_cover(&g, &w);
        assert!((cost - 1.0).abs() < 1e-12);
        assert_eq!(cover, vec![0]);
        // Expensive centre: take the leaves.
        let w = vec![100.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let (cost, cover) = min_weight_vertex_cover(&g, &w);
        assert!((cost - 5.0).abs() < 1e-12);
        assert!(is_vertex_cover(&g, &cover));
    }

    #[test]
    fn vertex_cover_matches_set_cover_view() {
        for seed in 0..4 {
            let g = gnm(12, 25, seed);
            let w: Vec<f64> = (0..12).map(|i| 1.0 + (i % 4) as f64).collect();
            let (vc_cost, _) = min_weight_vertex_cover(&g, &w);
            let sys = SetSystem::vertex_cover_of(&g, w.clone());
            // m = 25 > 20, n = 12 <= 20 → subset enumeration path.
            let (sc_cost, _) = min_weight_set_cover(&sys).unwrap();
            assert!((vc_cost - sc_cost).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn empty_graph_cases() {
        let g = Graph::new(0, vec![]);
        assert_eq!(max_weight_matching(&g).0, 0.0);
        let g3 = Graph::new(3, vec![]);
        let (w, edges) = max_weight_matching(&g3);
        assert_eq!(w, 0.0);
        assert!(edges.is_empty());
        let (c, cover) = min_weight_vertex_cover(&g3, &[1.0, 1.0, 1.0]);
        assert_eq!(c, 0.0);
        assert!(cover.is_empty());
    }
}
