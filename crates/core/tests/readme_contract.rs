//! The README's backends table is documentation of `Backend::ALL` —
//! this test keeps the two in lockstep so adding (or renaming) a
//! backend without updating the README fails CI, exactly like the CLI
//! parser and `mrlr list`, which derive from the same slice.

use mrlr_core::api::Backend;

#[test]
fn readme_backends_table_matches_backend_all() {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"))
        .expect("workspace README.md");
    // The table rows are `| `backend` | description |` lines following
    // the `| Backend | What runs |` header.
    let mut rows = Vec::new();
    let mut in_table = false;
    for line in readme.lines() {
        if line.starts_with("| Backend |") {
            in_table = true;
            continue;
        }
        if in_table {
            if line.starts_with("|---") {
                continue;
            }
            let Some(cell) = line
                .strip_prefix("| `")
                .and_then(|rest| rest.split('`').next())
            else {
                break; // table ended
            };
            rows.push(cell.to_string());
        }
    }
    let expected: Vec<String> = Backend::ALL.iter().map(Backend::to_string).collect();
    assert_eq!(
        rows, expected,
        "README backends table diverged from Backend::ALL"
    );
}
