//! Property tests for the certificate witness serialization: every
//! witness kind satisfies `parse(render(w)) == w` **bit-exactly** — the
//! contract that makes a stored report replayable (a stack transcript
//! re-parsed from JSON reproduces the original run's potentials
//! bit-for-bit).

use mrlr_core::api::Witness;
use mrlr_core::io::{parse_json, parse_witness, witness_json};
use proptest::prelude::*;

fn round_trip(w: &Witness) -> Witness {
    // Both the pretty and compact renderings must re-parse identically.
    let pretty = witness_json(w).render();
    let compact = witness_json(w).render_compact();
    let a = parse_witness(&parse_json(&pretty).unwrap()).unwrap();
    let b = parse_witness(&parse_json(&compact).unwrap()).unwrap();
    assert_eq!(a, b, "pretty and compact renderings disagree");
    a
}

/// Mixes the mantissa so values exercise the full shortest-representation
/// printer, not just short decimal fractions.
fn stretch(x: f64, salt: u64) -> f64 {
    let noisy = f64::from_bits(x.to_bits() ^ (salt & 0x3ff));
    if noisy.is_finite() && noisy > 0.0 {
        noisy
    } else {
        x
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cover_dual_round_trips(
        ids in proptest::collection::btree_set(0u32..10_000, 0..40),
        base in 0.001f64..100.0,
        salt in any::<u64>(),
    ) {
        // Strictly ascending ids (the canonical form the solvers emit).
        let dual: Vec<(u32, f64)> = ids
            .into_iter()
            .enumerate()
            .map(|(i, j)| (j, stretch(base + i as f64 * 0.37, salt ^ i as u64)))
            .collect();
        let w = Witness::CoverDual { dual };
        prop_assert_eq!(round_trip(&w), w);
    }

    #[test]
    fn stack_round_trips(
        edges in proptest::collection::vec((0u32..5_000, 0.001f64..50.0), 0..40),
        salt in any::<u64>(),
    ) {
        // Transcript order is significant and must survive as-is
        // (duplicates included — the *parser* is format-only; semantic
        // checks live in the auditor).
        let stack: Vec<(u32, f64)> = edges
            .into_iter()
            .enumerate()
            .map(|(i, (e, m))| (e, stretch(m, salt ^ (i as u64) << 3)))
            .collect();
        let w = Witness::Stack { stack };
        prop_assert_eq!(round_trip(&w), w);
    }

    #[test]
    fn maximality_round_trips(
        blockers in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..60),
    ) {
        let w = Witness::Maximality { blockers };
        prop_assert_eq!(round_trip(&w), w);
    }

    #[test]
    fn properness_round_trips(
        max_degree in 0usize..1_000_000,
        colour_counts in proptest::collection::vec(0usize..1_000_000, 0..60),
    ) {
        let w = Witness::Properness { max_degree, colour_counts };
        prop_assert_eq!(round_trip(&w), w);
    }
}

#[test]
fn adversarial_float_values_survive() {
    // The printer/parser pair must hold at the awkward corners of f64.
    let dual: Vec<(u32, f64)> = [
        5e-324,            // smallest subnormal
        f64::MIN_POSITIVE, // smallest normal
        1.0 / 3.0,
        0.1 + 0.2, // classic non-representable sum
        1e300,
        f64::MAX,
        std::f64::consts::PI,
    ]
    .into_iter()
    .enumerate()
    .map(|(i, x)| (i as u32, x))
    .collect();
    let w = Witness::CoverDual { dual };
    let text = witness_json(&w).render();
    let back = parse_witness(&parse_json(&text).unwrap()).unwrap();
    let Witness::CoverDual { dual: parsed } = back else {
        panic!("kind changed in round trip")
    };
    let Witness::CoverDual { dual: original } = &w else {
        unreachable!()
    };
    for ((ja, ya), (jb, yb)) in original.iter().zip(&parsed) {
        assert_eq!(ja, jb);
        assert_eq!(ya.to_bits(), yb.to_bits(), "{ya} lost bits");
    }
}
