//! Property tests of the chunked streaming parser: feeding a document
//! through [`StreamParser::feed`] in arbitrary byte-sized chunks (or
//! through [`read_instance`] at arbitrary buffer lengths) is
//! bit-identical to the one-shot [`parse_instance`] — same instance on
//! well-formed input, same located [`IoError`] (line *and* column) on
//! every strict prefix and every corrupted document.

use std::io::Cursor;

use proptest::prelude::*;

use mrlr_core::api::{BMatchingInstance, Instance, VertexWeightedGraph};
use mrlr_core::io::{
    parse_instance, read_instance, render_instance, InstanceSink, IoError, StreamParser,
};
use mrlr_graph::{Edge, Graph};
use mrlr_setsys::SetSystem;

/// Strategy: an arbitrary weighted simple graph (mix of unit and
/// non-dyadic weights, like the round-trip proptests).
fn arb_graph(nmax: usize, mmax: usize) -> impl Strategy<Value = Graph> {
    (1usize..=nmax).prop_flat_map(move |n| {
        proptest::collection::vec(((0..n as u32), (0..n as u32), 1u32..100_000), 0..=mmax).prop_map(
            move |raw| {
                let mut seen = std::collections::HashSet::new();
                let mut edges = Vec::new();
                for (a, b, w) in raw {
                    if a == b {
                        continue;
                    }
                    let key = (a.min(b), a.max(b));
                    if seen.insert(key) {
                        let w = if w % 5 == 0 { 1.0 } else { w as f64 / 977.0 };
                        edges.push(Edge::new(key.0, key.1, w));
                    }
                }
                Graph::new(n, edges)
            },
        )
    })
}

fn arb_system(nmax: usize, mmax: usize) -> impl Strategy<Value = SetSystem> {
    (1usize..=nmax, 1usize..=mmax).prop_flat_map(|(n, m)| {
        (
            proptest::collection::vec(proptest::collection::vec(0u32..m as u32, 0..=m), n),
            proptest::collection::vec(1u32..100_000, n),
        )
            .prop_map(move |(sets, weights)| {
                let sets: Vec<Vec<u32>> = sets
                    .into_iter()
                    .map(|mut s| {
                        s.sort_unstable();
                        s.dedup();
                        s
                    })
                    .collect();
                let weights = weights.into_iter().map(|w| w as f64 / 977.0).collect();
                SetSystem::new(m, sets, weights)
            })
    })
}

/// Strategy: the instance kinds multiplexed, so one property covers all
/// four format variants. The weight/capacity pools are as long as the
/// largest `n` `arb_graph` can produce, so `take(g.n())` always yields
/// exactly one entry per vertex.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        0usize..4,
        arb_graph(14, 36),
        proptest::collection::vec(1u32..100_000, 14),
        proptest::collection::vec(1u32..6, 14),
        1u32..400,
        arb_system(12, 20),
    )
        .prop_map(|(kind, g, wraw, braw, eps_num, sys)| match kind {
            0 => Instance::Graph(g),
            1 => {
                let weights: Vec<f64> =
                    wraw.iter().take(g.n()).map(|&w| w as f64 / 977.0).collect();
                Instance::VertexWeighted(VertexWeightedGraph::new(g, weights))
            }
            2 => {
                let b: Vec<u32> = braw.iter().take(g.n()).copied().collect();
                Instance::BMatching(BMatchingInstance::new(g, b, eps_num as f64 / 128.0))
            }
            _ => Instance::SetSystem(sys),
        })
}

/// Feeds `text` through the streaming parser in chunks whose sizes cycle
/// through `chunks` — the adversarial schedule: chunk boundaries land
/// mid-token, mid-line, mid-float, everywhere.
fn parse_chunked(text: &str, chunks: &[usize]) -> Result<Instance, IoError> {
    let bytes = text.as_bytes();
    let mut parser = StreamParser::new(InstanceSink::default());
    let mut pos = 0;
    let mut i = 0;
    while pos < bytes.len() {
        let len = chunks[i % chunks.len()].clamp(1, bytes.len() - pos);
        i += 1;
        parser.feed(&bytes[pos..pos + len])?;
        pos += len;
    }
    parser.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-formed documents: every chunk schedule and every reader
    /// buffer length reproduces the one-shot parse bit-for-bit.
    #[test]
    fn chunked_parse_is_bit_identical(
        inst in arb_instance(),
        chunks in proptest::collection::vec(1usize..=17, 1..8),
        buf_len in 1usize..=64,
    ) {
        let text = render_instance(&inst);
        prop_assert_eq!(parse_chunked(&text, &chunks), Ok(inst.clone()));
        prop_assert_eq!(read_instance(Cursor::new(text.as_bytes()), buf_len), Ok(inst));
    }

    /// Strict prefixes: truncating the document anywhere (even mid-token)
    /// yields the same outcome — and on failure the same line+column —
    /// from the chunked and the one-shot parser.
    #[test]
    fn prefixes_report_identical_errors(
        inst in arb_instance(),
        chunks in proptest::collection::vec(1usize..=13, 1..6),
        cut in 0.0f64..1.0,
    ) {
        let text = render_instance(&inst);
        let prefix = &text[..(text.len() as f64 * cut) as usize];
        prop_assert_eq!(parse_chunked(prefix, &chunks), parse_instance(prefix));
    }

    /// Corrupted documents: overwriting one byte anywhere yields the
    /// same outcome (instance, or error with identical line+column and
    /// message) from both parsers.
    #[test]
    fn corruption_reports_identical_errors(
        inst in arb_instance(),
        chunks in proptest::collection::vec(1usize..=13, 1..6),
        at in 0.0f64..1.0,
        junk_idx in 0usize..5,
    ) {
        let mut bytes = render_instance(&inst).into_bytes();
        prop_assume!(!bytes.is_empty());
        let at = ((bytes.len() - 1) as f64 * at) as usize;
        bytes[at] = [b'x', b'#', b' ', b'-', b'9'][junk_idx];
        let text = String::from_utf8(bytes).unwrap();
        prop_assert_eq!(parse_chunked(&text, &chunks), parse_instance(&text));
    }
}

/// The documented prefix semantics on a concrete document, nailing down
/// the exact positions the property above compares.
#[test]
fn prefix_errors_carry_exact_positions() {
    let text = "p graph 3 2\ne 0 1 2.5\ne 1 2\n";
    let full = parse_instance(text).unwrap();
    // A prefix that cuts a whole record: file-level count mismatch.
    assert_eq!(
        parse_instance(&text[..22]).unwrap_err().to_string(),
        "problem line promised 2 edges, found 1"
    );
    // A prefix that cuts mid-line: the truncated token is the error.
    assert_eq!(
        parse_chunked(&text[..15], &[1]),
        parse_instance(&text[..15])
    );
    // Chunked at every size from 1 up: same instance.
    for size in 1..=text.len() {
        assert_eq!(parse_chunked(text, &[size]), Ok(full.clone()));
    }
}
