//! Tamper-mutation suite for hashed witness commitments: every
//! single-byte flip of the sidecar transcript, every chunk-level
//! structural mutation (drop / reorder / duplicate / truncate), and
//! every header edit is either rejected with a located error or provably
//! benign (the opened witness is bit-identical to the committed one).
//! Nothing panics.

use mrlr_core::api::{
    audit_chunk, audit_committed, commit_witness, open_witness, Claims, Instance, Registry, Witness,
};
use mrlr_core::mr::MrConfig;
use mrlr_graph::generators;

/// A stack witness with awkward float values: 11 entries at chunk
/// length 4 → 3 chunks (one ragged), tree depth 2.
fn sample_witness() -> Witness {
    Witness::Stack {
        stack: (0..11u32)
            .map(|e| (e * 3 + 1, 0.5 + e as f64 / 3.0))
            .collect(),
    }
}

fn committed_sample() -> (Witness, String, Witness) {
    let original = sample_witness();
    let c = commit_witness(&original, 4).unwrap();
    (c.witness, c.transcript, original)
}

/// The error must carry a dotted location pointing into the transcript
/// or the witness — that is what makes `mrlr verify` failures
/// actionable.
fn assert_located(err: &mrlr_core::api::AuditError) {
    let msg = err.to_string();
    assert!(
        msg.starts_with("transcript") || msg.starts_with("witness"),
        "unlocated tamper error: {msg}"
    );
}

#[test]
fn every_single_byte_flip_is_rejected_or_benign() {
    let (committed, transcript, original) = committed_sample();
    let bytes = transcript.as_bytes();
    for at in 0..bytes.len() {
        for repl in [b'0', b'9', b'x', b' '] {
            if bytes[at] == repl || bytes[at] == b'\n' {
                continue;
            }
            let mut mutated = bytes.to_vec();
            mutated[at] = repl;
            let mutated = String::from_utf8(mutated).unwrap();
            match open_witness(&committed, &mutated) {
                // A flip that survives must be token-preserving (e.g.
                // whitespace for whitespace, or a float digit beyond f64
                // precision): the opened witness is the original, so no
                // different data was ever accepted.
                Ok(opened) => assert_eq!(
                    opened, original,
                    "byte {at} -> {:?} accepted with different data",
                    repl as char
                ),
                Err(e) => assert_located(&e),
            }
        }
    }
}

/// Splits a transcript into its header and per-chunk line blocks.
fn blocks(transcript: &str) -> (String, Vec<Vec<String>>) {
    let mut lines = transcript.lines();
    let header = lines.next().unwrap().to_string();
    let mut chunks: Vec<Vec<String>> = Vec::new();
    for line in lines {
        if line.starts_with("chunk ") {
            chunks.push(vec![line.to_string()]);
        } else {
            chunks.last_mut().unwrap().push(line.to_string());
        }
    }
    (header, chunks)
}

fn join(header: &str, chunks: &[Vec<String>]) -> String {
    let mut out = format!("{header}\n");
    for block in chunks {
        for line in block {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn structural_mutations_are_rejected() {
    let (committed, transcript, _) = committed_sample();
    let (header, chunks) = blocks(&transcript);
    assert_eq!(chunks.len(), 3);

    let mut mutations: Vec<(String, String)> = Vec::new();
    // Drop each chunk.
    for i in 0..chunks.len() {
        let mut c = chunks.clone();
        c.remove(i);
        mutations.push((format!("drop chunk {i}"), join(&header, &c)));
    }
    // Duplicate each chunk.
    for i in 0..chunks.len() {
        let mut c = chunks.clone();
        let dup = c[i].clone();
        c.insert(i, dup);
        mutations.push((format!("duplicate chunk {i}"), join(&header, &c)));
    }
    // Reorder: every adjacent swap.
    for i in 0..chunks.len() - 1 {
        let mut c = chunks.clone();
        c.swap(i, i + 1);
        mutations.push((format!("swap chunks {i},{}", i + 1), join(&header, &c)));
    }
    // Truncate the authentication path of each chunk (drop the last
    // sibling digest) and pad it (duplicate the last digest).
    for i in 0..chunks.len() {
        let mut c = chunks.clone();
        let line = c[i][0].clone();
        let cut = line.rfind(' ').unwrap();
        c[i][0] = line[..cut].to_string();
        mutations.push((
            format!("truncate auth path of chunk {i}"),
            join(&header, &c),
        ));

        let mut c = chunks.clone();
        let extra = line[cut..].to_string();
        c[i][0].push_str(&extra);
        mutations.push((format!("pad auth path of chunk {i}"), join(&header, &c)));
    }
    // Drop / duplicate one entry line per chunk.
    for i in 0..chunks.len() {
        let mut c = chunks.clone();
        c[i].pop();
        mutations.push((format!("drop an entry of chunk {i}"), join(&header, &c)));

        let mut c = chunks.clone();
        let dup = c[i].last().unwrap().clone();
        c[i].push(dup);
        mutations.push((
            format!("duplicate an entry of chunk {i}"),
            join(&header, &c),
        ));
    }
    // Move the last entry of chunk 0 into chunk 1 (counts stay
    // plausible globally, per-chunk hashes cannot).
    {
        let mut c = chunks.clone();
        let moved = c[0].pop().unwrap();
        c[1].push(moved);
        mutations.push(("move an entry across chunks".into(), join(&header, &c)));
    }
    // Truncate the file at every line boundary.
    let full = join(&header, &chunks);
    let lines: Vec<&str> = full.lines().collect();
    for keep in 0..lines.len() {
        let prefix: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
        mutations.push((format!("truncate to {keep} lines"), prefix));
    }

    for (what, mutated) in &mutations {
        let err = open_witness(&committed, mutated)
            .expect_err(&format!("mutation `{what}` was accepted"));
        assert_located(&err);
    }
}

#[test]
fn header_tampering_is_rejected() {
    let (committed, transcript, _) = committed_sample();
    let (header, chunks) = blocks(&transcript);
    let tok: Vec<&str> = header.split_whitespace().collect();
    let rewrites: Vec<(&str, String)> = vec![
        (
            "kind",
            format!(
                "{} {} cover-dual {} {} {}",
                tok[0], tok[1], tok[3], tok[4], tok[5]
            ),
        ),
        (
            "entries",
            format!("{} {} {} 12 {} {}", tok[0], tok[1], tok[2], tok[4], tok[5]),
        ),
        (
            "chunk_len",
            format!("{} {} {} {} 5 {}", tok[0], tok[1], tok[2], tok[3], tok[5]),
        ),
        (
            "root",
            format!(
                "{} {} {} {} {} {}",
                tok[0],
                tok[1],
                tok[2],
                tok[3],
                tok[4],
                "0".repeat(64)
            ),
        ),
        ("version", header.replacen("v1", "v2", 1)),
        ("magic", header.replacen("mrlr-commit", "mrlr-digest", 1)),
    ];
    for (what, bad_header) in &rewrites {
        let err = open_witness(&committed, &join(bad_header, &chunks))
            .expect_err(&format!("header rewrite `{what}` was accepted"));
        assert_located(&err);
    }
}

#[test]
fn single_chunk_audit_localizes_tampering() {
    let (committed, transcript, _) = committed_sample();
    // Tamper one entry value inside chunk 1 only.
    let (header, mut chunks) = blocks(&transcript);
    let victim = chunks[1].pop().unwrap();
    let (id, _) = victim.split_once(' ').unwrap();
    chunks[1].push(format!("{id} 999.0"));
    let tampered = join(&header, &chunks);

    // The untouched chunks still authenticate individually…
    assert!(audit_chunk(&committed, &tampered, 0).is_ok());
    assert!(audit_chunk(&committed, &tampered, 2).is_ok());
    // …the tampered one does not, with a located error…
    assert_located(&audit_chunk(&committed, &tampered, 1).unwrap_err());
    // …and a chunk the commitment never had is named as missing.
    let err = audit_chunk(&committed, &tampered, 99).unwrap_err();
    assert!(err.to_string().contains("chunk 99 not present"), "{err}");
}

/// End to end on a real report: a solve's stack witness committed,
/// audited through the full open-and-replay path, and rejected (with a
/// located error, no panic) once a single data byte changes.
#[test]
fn audit_committed_accepts_clean_and_rejects_tampered() {
    let g = generators::with_uniform_weights(&generators::densified(32, 0.4, 11), 1.0, 9.0, 11);
    let cfg = MrConfig::auto(32, g.m(), 0.3, 11);
    let instance = Instance::Graph(g);
    let report = Registry::with_defaults()
        .solve("matching", &instance, &cfg)
        .unwrap();
    let claims = Claims::from(&report.certificate);
    let c = commit_witness(&report.certificate.witness, 8).unwrap();

    let checks = audit_committed(
        &instance,
        report.algorithm,
        &report.solution,
        &claims,
        &c.witness,
        &c.transcript,
    )
    .unwrap();
    assert!(checks[0].starts_with("commitment:"), "{:?}", checks[0]);
    assert!(checks.len() > 1, "ordinary audit checks follow");

    // Rewrite the first committed entry's value: the audit must fail at
    // the commitment layer — the ordinary audit never sees forged data.
    // Line 0 is the header, line 1 the first `chunk` line, line 2 the
    // first entry.
    let tampered: String = c
        .transcript
        .lines()
        .enumerate()
        .map(|(i, line)| {
            if i == 2 {
                let (id, _) = line.split_once(' ').unwrap();
                format!("{id} 999.0\n")
            } else {
                format!("{line}\n")
            }
        })
        .collect();
    assert_ne!(tampered, c.transcript);
    let err = audit_committed(
        &instance,
        report.algorithm,
        &report.solution,
        &claims,
        &c.witness,
        &tampered,
    )
    .unwrap_err();
    assert_located(&err);
}
