//! The acceptance contract of `Backend::Dist`: for **every** registry
//! key, the distributed runtime produces reports — solution,
//! certificate (including the re-checkable witness) and model
//! `Metrics` — bit-identical to `Backend::Shard`, at one worker and at
//! four, and still after an injected worker kill forces the master
//! through its recovery path. The recovered run's certificate audits
//! clean, exactly as `mrlr verify` would prove offline.

use mrlr_core::api::{audit_report, Backend, Instance, Registry};
use mrlr_graph::generators;
use mrlr_mapreduce::{Timeline, WorkerKill};

/// One instance per registry key, matching the witness-suite shapes.
fn cases() -> Vec<(&'static str, Instance)> {
    let seed = 11;
    let g = generators::with_uniform_weights(&generators::densified(30, 0.4, seed), 1.0, 9.0, seed);
    let unweighted = g.unweighted();
    let sys = mrlr_setsys::generators::with_uniform_weights(
        mrlr_setsys::generators::bounded_frequency(20, 150, 3, seed),
        1.0,
        8.0,
        seed,
    );
    let vw = mrlr_core::api::VertexWeightedGraph::new(
        g.clone(),
        (0..30).map(|v| 1.0 + v as f64).collect(),
    );
    let bm = mrlr_core::api::BMatchingInstance::new(
        g.clone(),
        (0..30).map(|v| 1 + (v % 3) as u32).collect(),
        0.25,
    );
    vec![
        ("set-cover-f", Instance::SetSystem(sys.clone())),
        ("set-cover-greedy", Instance::SetSystem(sys)),
        ("vertex-cover", Instance::VertexWeighted(vw)),
        ("matching", Instance::Graph(g.clone())),
        ("b-matching", Instance::BMatching(bm)),
        ("mis1", Instance::Graph(unweighted.clone())),
        ("mis2", Instance::Graph(unweighted.clone())),
        ("clique", Instance::Graph(unweighted)),
        ("vertex-colouring", Instance::Graph(g.clone())),
        ("edge-colouring", Instance::Graph(g)),
    ]
}

#[test]
fn every_algorithm_is_bit_identical_between_shard_and_dist() {
    let registry = Registry::with_defaults();
    let cases = cases();
    assert_eq!(cases.len(), registry.algorithms().len());
    for (key, instance) in &cases {
        // Force a multi-machine cluster: the auto regime packs these
        // small instances onto one machine, which would leave the dist
        // transport with nothing to shuffle.
        let cfg = instance.auto_config(0.4, 11).with_machines(4);
        let shard = registry
            .solve_with(key, Backend::Shard, instance, &cfg)
            .unwrap();
        for workers in [1usize, 4] {
            let dcfg = cfg.with_workers(workers);
            let dist = registry
                .solve_with(key, Backend::Dist, instance, &dcfg)
                .unwrap();
            assert_eq!(dist.backend, Backend::Dist);
            assert_eq!(
                dist.solution, shard.solution,
                "{key}: solution diverged at {workers} workers"
            );
            assert_eq!(
                dist.certificate, shard.certificate,
                "{key}: certificate diverged at {workers} workers"
            );
            assert_eq!(
                dist.metrics, shard.metrics,
                "{key}: metrics diverged at {workers} workers"
            );
            let summary = dist
                .metrics
                .as_ref()
                .and_then(|m| m.dist.as_ref())
                .expect("dist backend must attach a transport summary");
            // Requested workers are clamped so no worker owns an empty
            // shard block.
            assert_eq!(summary.workers, workers.min(cfg.machines), "{key}");
            assert!(summary.recoveries.is_empty(), "{key}: clean run recovered");
        }
    }
}

#[test]
fn killed_worker_runs_stay_bit_identical_and_audit_clean() {
    let registry = Registry::with_defaults();
    for (key, instance) in &cases() {
        let cfg = instance
            .auto_config(0.4, 11)
            .with_machines(4)
            .with_workers(2);
        let clean = registry
            .solve_with(key, Backend::Dist, instance, &cfg)
            .unwrap();
        // Arm the kill at superstep 1: the worker dies at the next
        // barrier, which every driver reaches — several of the small
        // instances degenerate to short central runs whose later
        // supersteps never come. The mid-exchange replay path is
        // exercised by the engine-level suite (`dist_engine.rs`).
        let kcfg = cfg.with_worker_kill(WorkerKill {
            worker: 1,
            superstep: 1,
        });
        let healed = registry
            .solve_with(key, Backend::Dist, instance, &kcfg)
            .unwrap();
        assert_eq!(
            healed.solution, clean.solution,
            "{key}: kill changed the solution"
        );
        assert_eq!(
            healed.certificate, clean.certificate,
            "{key}: kill changed the certificate"
        );
        assert_eq!(
            healed.metrics, clean.metrics,
            "{key}: kill changed the model metrics"
        );
        let metrics = healed.metrics.as_ref().unwrap();
        let summary = metrics.dist.as_ref().unwrap();
        assert_eq!(summary.recoveries.len(), 1, "{key}: expected one recovery");
        assert_eq!(summary.recoveries[0].worker, 1, "{key}");
        // The recovery is narrated in the timeline...
        let t = Timeline::from_metrics(metrics);
        assert!(
            t.annotations().iter().any(|a| a.contains("recovery")),
            "{key}: no recovery annotation"
        );
        // ...and the recovered certificate re-verifies offline.
        let checks = audit_report(instance, &healed)
            .unwrap_or_else(|e| panic!("{key}: recovered report failed audit: {e}"));
        assert!(checks.len() >= 3, "{key}: too few audit checks");
    }
}
