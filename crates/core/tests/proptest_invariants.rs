//! Property-based tests of the core algorithmic invariants on arbitrary
//! random instances: feasibility, certificates, maximality, properness,
//! and agreement with exact optima at small scale.

use proptest::prelude::*;

use mrlr_core::colouring::{edge_colouring, vertex_colouring};
use mrlr_core::exact;
use mrlr_core::hungry::{maximal_clique, mis_fast, mis_simple, MisParams};
use mrlr_core::rlr::{approx_b_matching, approx_max_matching, approx_set_cover_f, BMatchingParams};
use mrlr_core::seq::{
    eps_greedy_set_cover, greedy_set_cover, harmonic, local_ratio_b_matching, local_ratio_matching,
    local_ratio_set_cover, misra_gries_edge_colouring,
};
use mrlr_core::verify;
use mrlr_graph::{Edge, Graph};
use mrlr_setsys::SetSystem;

/// Strategy: an arbitrary weighted simple graph with up to `nmax` vertices.
fn arb_graph(nmax: usize, mmax: usize) -> impl Strategy<Value = Graph> {
    (2usize..=nmax).prop_flat_map(move |n| {
        proptest::collection::vec(((0..n as u32), (0..n as u32), 1u32..100), 0..=mmax).prop_map(
            move |raw| {
                let mut seen = std::collections::HashSet::new();
                let mut edges = Vec::new();
                for (a, b, w) in raw {
                    if a == b {
                        continue;
                    }
                    let key = (a.min(b), a.max(b));
                    if seen.insert(key) {
                        edges.push(Edge::new(key.0, key.1, w as f64));
                    }
                }
                Graph::new(n, edges)
            },
        )
    })
}

/// Strategy: an arbitrary coverable weighted set system.
fn arb_system(nmax: usize, mmax: usize) -> impl Strategy<Value = SetSystem> {
    (1usize..=nmax, 1usize..=mmax).prop_flat_map(|(n, m)| {
        (
            proptest::collection::vec(proptest::collection::vec(0u32..m as u32, 0..=m), n),
            proptest::collection::vec(1u32..50, n),
        )
            .prop_map(move |(mut sets, weights)| {
                let n_sets = sets.len();
                for j in 0..m {
                    // Guarantee coverage: element j forced into some set.
                    sets[j % n_sets].push(j as u32);
                }
                let sets: Vec<Vec<u32>> = sets
                    .into_iter()
                    .map(|mut s| {
                        s.sort_unstable();
                        s.dedup();
                        s
                    })
                    .collect();
                SetSystem::new(m, sets, weights.into_iter().map(|w| w as f64).collect())
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn local_ratio_matching_invariants(g in arb_graph(16, 40)) {
        let r = local_ratio_matching(&g);
        prop_assert!(verify::is_matching(&g, &r.matching));
        prop_assert!(r.weight + 1e-6 >= r.stack_gain);
        if g.n() <= 14 {
            let (opt, _) = exact::max_weight_matching(&g);
            prop_assert!(2.0 * r.weight + 1e-6 >= opt, "{} vs {}", r.weight, opt);
            // The stack certificate really upper-bounds OPT.
            prop_assert!(2.0 * r.stack_gain + 1e-6 >= opt);
        }
    }

    #[test]
    fn randomized_matching_invariants(g in arb_graph(14, 30), eta in 1usize..20, seed in any::<u64>()) {
        let r = approx_max_matching(&g, eta, seed).unwrap();
        prop_assert!(verify::is_matching(&g, &r.matching));
        prop_assert!(r.certified_ratio(2.0) <= 2.0 + 1e-6);
    }

    #[test]
    fn local_ratio_cover_invariants(sys in arb_system(8, 14)) {
        let r = local_ratio_set_cover(&sys).unwrap();
        prop_assert!(sys.covers(&r.cover));
        let f = sys.max_frequency() as f64;
        prop_assert!(r.weight <= f * r.lower_bound + 1e-6);
        let (opt, _) = exact::min_weight_set_cover(&sys).unwrap();
        prop_assert!(r.lower_bound <= opt + 1e-6);
        prop_assert!(r.weight <= f * opt + 1e-6);
    }

    #[test]
    fn randomized_cover_invariants(sys in arb_system(8, 14), eta in 1usize..10, seed in any::<u64>()) {
        let r = approx_set_cover_f(&sys, eta, seed).unwrap();
        prop_assert!(sys.covers(&r.cover));
        let (opt, _) = exact::min_weight_set_cover(&sys).unwrap();
        prop_assert!(r.weight <= sys.max_frequency() as f64 * opt + 1e-6);
    }

    #[test]
    fn greedy_cover_invariants(sys in arb_system(8, 12)) {
        let r = greedy_set_cover(&sys).unwrap();
        prop_assert!(sys.covers(&r.cover));
        let (opt, _) = exact::min_weight_set_cover(&sys).unwrap();
        let h = harmonic(sys.max_set_size());
        prop_assert!(r.weight <= h * opt + 1e-6, "{} > {} * {}", r.weight, h, opt);
    }

    #[test]
    fn misra_gries_always_proper(g in arb_graph(18, 60)) {
        let r = misra_gries_edge_colouring(&g);
        prop_assert!(verify::is_proper_edge_colouring(&g, &r.colours));
        prop_assert!(r.num_colours <= g.max_degree() + 1);
    }

    #[test]
    fn hungry_mis_always_maximal(g in arb_graph(20, 60), seed in any::<u64>()) {
        let r = mis_fast(&g, MisParams::mis2(g.n(), 0.4, seed)).unwrap();
        prop_assert!(verify::is_maximal_independent_set(&g, &r.vertices));
    }

    #[test]
    fn hungry_clique_always_maximal(g in arb_graph(18, 60), seed in any::<u64>()) {
        let r = maximal_clique(&g, MisParams::mis2(g.n(), 0.4, seed)).unwrap();
        prop_assert!(verify::is_maximal_clique(&g, &r.vertices));
    }

    #[test]
    fn exact_matching_dominates_greedy(g in arb_graph(12, 24)) {
        let (opt, edges) = exact::max_weight_matching(&g);
        prop_assert!(verify::is_matching(&g, &edges));
        let greedy = local_ratio_matching(&g);
        prop_assert!(opt + 1e-9 >= greedy.weight);
    }

    #[test]
    fn vertex_colouring_always_proper(g in arb_graph(24, 80), kappa in 1usize..6, seed in any::<u64>()) {
        let r = vertex_colouring(&g, kappa, None, seed).unwrap();
        prop_assert!(verify::is_proper_colouring(&g, &r.colours));
        prop_assert_eq!(r.groups, kappa);
        // κ groups each need at most Δ+1 colours.
        prop_assert!(r.num_colours <= kappa * (g.max_degree() + 1));
    }

    #[test]
    fn edge_colouring_always_proper(g in arb_graph(20, 60), kappa in 1usize..5, seed in any::<u64>()) {
        let r = edge_colouring(&g, kappa, None, seed).unwrap();
        prop_assert!(verify::is_proper_edge_colouring(&g, &r.colours));
        // Misra–Gries per group: ≤ Δ+1 each.
        prop_assert!(r.num_colours <= kappa * (g.max_degree() + 1));
    }

    #[test]
    fn seq_b_matching_invariants(g in arb_graph(12, 26), bmax in 1u32..4) {
        let b: Vec<u32> = (0..g.n() as u32).map(|v| 1 + (v % bmax)).collect();
        let r = local_ratio_b_matching(&g, &b, 0.25);
        prop_assert!(verify::is_b_matching(&g, &b, &r.matching));
        if g.m() <= 20 {
            let (opt, _) = exact::max_weight_b_matching(&g, &b);
            let mult = mrlr_core::seq::b_matching_multiplier(&b, 0.25);
            prop_assert!(mult * r.weight + 1e-6 >= opt, "{} * {} < {}", mult, r.weight, opt);
        }
    }

    #[test]
    fn randomized_b_matching_invariants(g in arb_graph(12, 26), seed in any::<u64>()) {
        let b: Vec<u32> = (0..g.n() as u32).map(|v| 1 + (v % 3)).collect();
        let params = BMatchingParams { eps: 0.25, n_mu: 2.0, eta: 24, seed };
        let r = approx_b_matching(&g, &b, params).unwrap();
        prop_assert!(verify::is_b_matching(&g, &b, &r.matching));
        if g.m() <= 20 {
            let (opt, _) = exact::max_weight_b_matching(&g, &b);
            let mult = mrlr_core::seq::b_matching_multiplier(&b, 0.25);
            prop_assert!(mult * r.weight + 1e-6 >= opt);
        }
    }

    #[test]
    fn eps_greedy_within_relaxed_bound(sys in arb_system(8, 12), seed in any::<u64>()) {
        let r = eps_greedy_set_cover(&sys, 0.2, seed).unwrap();
        prop_assert!(sys.covers(&r.cover));
        let (opt, _) = exact::min_weight_set_cover(&sys).unwrap();
        let bound = (1.0 + 0.2) * harmonic(sys.max_set_size());
        prop_assert!(r.weight <= bound * opt + 1e-6, "{} > {} * {}", r.weight, bound, opt);
    }

    #[test]
    fn mis_simple_and_fast_both_maximal(g in arb_graph(18, 50), seed in any::<u64>()) {
        let r1 = mis_simple(&g, MisParams::mis1(g.n(), 0.4, seed)).unwrap();
        prop_assert!(verify::is_maximal_independent_set(&g, &r1.vertices));
        let r2 = mis_fast(&g, MisParams::mis2(g.n(), 0.4, seed)).unwrap();
        prop_assert!(verify::is_maximal_independent_set(&g, &r2.vertices));
    }

    #[test]
    fn matching_seed_invariance_of_validity_under_extreme_eta(g in arb_graph(14, 30), seed in any::<u64>()) {
        // η = 1 (pathologically small sample) must still be correct, only slow.
        let tiny = approx_max_matching(&g, 1, seed).unwrap();
        prop_assert!(verify::is_matching(&g, &tiny.matching));
        prop_assert!(tiny.certified_ratio(2.0) <= 2.0 + 1e-6);
        // η ≥ m (everything sampled) degenerates to one central pass.
        let big = approx_max_matching(&g, g.m().max(1) * 4, seed).unwrap();
        prop_assert!(verify::is_matching(&g, &big.matching));
        prop_assert!(big.iterations <= 2);
    }

    #[test]
    fn exact_vertex_cover_sandwich(g in arb_graph(12, 24)) {
        // LP-style sandwich: max-matching weight ≤ min vertex cover weight
        // ≤ 2 × min fractional ≤ 2 × matching bound, with unit weights.
        let w = vec![1.0; g.n()];
        let (vc, cover) = exact::min_weight_vertex_cover(&g, &w);
        prop_assert!(verify::is_vertex_cover(&g, &cover));
        let (mw, _) = exact::max_weight_matching(&g.unweighted());
        prop_assert!(mw <= vc + 1e-9, "matching {} > cover {}", mw, vc);
        prop_assert!(vc <= 2.0 * mw + 1e-9, "cover {} > 2x matching {}", vc, mw);
    }
}
