//! Property-based round-trip tests of the unified instance format:
//! `parse(render(x)) == x` bit-exactly for every instance kind on
//! arbitrary random instances, plus golden error-message tests for
//! malformed input.

use proptest::prelude::*;

use mrlr_core::api::{BMatchingInstance, Instance, VertexWeightedGraph};
use mrlr_core::io::{parse_instance, render_instance};
use mrlr_graph::{Edge, Graph};
use mrlr_setsys::SetSystem;

/// Strategy: an arbitrary weighted simple graph (non-dyadic weights, so
/// the `{:?}` round-trip is exercised on long decimal expansions).
fn arb_graph(nmax: usize, mmax: usize) -> impl Strategy<Value = Graph> {
    (1usize..=nmax).prop_flat_map(move |n| {
        proptest::collection::vec(((0..n as u32), (0..n as u32), 1u32..100_000), 0..=mmax).prop_map(
            move |raw| {
                let mut seen = std::collections::HashSet::new();
                let mut edges = Vec::new();
                for (a, b, w) in raw {
                    if a == b {
                        continue;
                    }
                    let key = (a.min(b), a.max(b));
                    if seen.insert(key) {
                        // Mix unit weights (rendered without the weight
                        // column) with awkward fractions.
                        let w = if w % 5 == 0 { 1.0 } else { w as f64 / 977.0 };
                        edges.push(Edge::new(key.0, key.1, w));
                    }
                }
                Graph::new(n, edges)
            },
        )
    })
}

/// Strategy: an arbitrary weighted set system (possibly uncoverable,
/// possibly with empty sets — the format does not require coverability).
fn arb_system(nmax: usize, mmax: usize) -> impl Strategy<Value = SetSystem> {
    (1usize..=nmax, 1usize..=mmax).prop_flat_map(|(n, m)| {
        (
            proptest::collection::vec(proptest::collection::vec(0u32..m as u32, 0..=m), n),
            proptest::collection::vec(1u32..100_000, n),
        )
            .prop_map(move |(sets, weights)| {
                let sets: Vec<Vec<u32>> = sets
                    .into_iter()
                    .map(|mut s| {
                        s.sort_unstable();
                        s.dedup();
                        s
                    })
                    .collect();
                let weights = weights.into_iter().map(|w| w as f64 / 977.0).collect();
                SetSystem::new(m, sets, weights)
            })
    })
}

fn round_trips(inst: &Instance) {
    let text = render_instance(inst);
    let back = parse_instance(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    assert_eq!(inst, &back, "parse(render(x)) != x for {:?}", inst.kind());
    // Rendering is canonical: a second trip is byte-identical.
    assert_eq!(text, render_instance(&back));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_round_trips(g in arb_graph(24, 60)) {
        round_trips(&Instance::Graph(g));
    }

    #[test]
    fn vertex_weighted_round_trips(
        g in arb_graph(16, 40),
        raw in proptest::collection::vec(1u32..100_000, 16),
    ) {
        let weights = raw.iter().take(g.n()).map(|&w| w as f64 / 977.0).collect::<Vec<_>>();
        prop_assume!(weights.len() == g.n());
        round_trips(&Instance::VertexWeighted(VertexWeightedGraph::new(g, weights)));
    }

    #[test]
    fn b_matching_round_trips(
        g in arb_graph(16, 40),
        raw in proptest::collection::vec(1u32..6, 16),
        eps_num in 1u32..400,
    ) {
        let b = raw.iter().take(g.n()).copied().collect::<Vec<_>>();
        prop_assume!(b.len() == g.n());
        let eps = eps_num as f64 / 128.0;
        round_trips(&Instance::BMatching(BMatchingInstance::new(g, b, eps)));
    }

    #[test]
    fn set_system_round_trips(sys in arb_system(20, 30)) {
        round_trips(&Instance::SetSystem(sys));
    }
}

/// Golden error messages: malformed input fails with the documented
/// position and message, not a panic or a silently-wrong instance.
#[test]
fn malformed_input_error_messages_are_stable() {
    let cases: &[(&str, &str)] = &[
        // Bad vertex id.
        (
            "p graph 3 1\ne 0 7",
            "line 2, column 5: vertex 7 out of range 0..3",
        ),
        // Truncated edge line.
        ("p graph 3 1\ne 0", "line 2, column 4: missing endpoint"),
        // Duplicate edge (reversed orientation still counts).
        (
            "p graph 3 2\ne 0 1\ne 1 0",
            "line 3, column 3: duplicate edge (0, 1)",
        ),
        // Truncated file: fewer records than the problem line promised.
        (
            "p graph 3 2\ne 0 1",
            "problem line promised 2 edges, found 1",
        ),
        // Missing vertex data for a declared kind.
        ("p vertex-weighted 1 0", "vertex 0 has no `n` line"),
        // Malformed weight.
        (
            "p set-system 2 1\ns zero 0",
            "line 2, column 3: bad set weight `zero`",
        ),
    ];
    for (text, want) in cases {
        let got = parse_instance(text).unwrap_err().to_string();
        assert_eq!(&got, want, "input {text:?}");
    }
}
