//! Property-based tests for set systems, generators, stats and IO.

use proptest::prelude::*;

use mrlr_setsys::generators::{
    bounded_frequency, bounded_set_size, greedy_trap, interval_cover, partition_system,
    tight_f_instance, with_log_uniform_weights,
};
use mrlr_setsys::{frequency_histogram, parse_text, set_size_histogram, system_stats, to_text};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bounded_frequency_invariants(n in 2usize..30, m in 1usize..200, f in 1usize..5, seed in any::<u64>()) {
        let f = f.min(n);
        let sys = bounded_frequency(n, m, f, seed);
        prop_assert!(sys.is_coverable());
        prop_assert!(sys.max_frequency() <= f);
        prop_assert_eq!(sys.n_sets(), n);
        prop_assert_eq!(sys.universe(), m);
        // The histogram agrees with max_frequency and covers all m elements.
        let hist = frequency_histogram(&sys);
        prop_assert_eq!(hist.len(), sys.max_frequency() + 1);
        prop_assert_eq!(hist.iter().sum::<usize>(), m);
        prop_assert_eq!(hist[0], 0, "coverable system has no frequency-0 elements");
    }

    #[test]
    fn bounded_set_size_invariants(n in 2usize..40, m in 1usize..60, delta in 1usize..10, seed in any::<u64>()) {
        let delta = delta.min(m);
        let sys = bounded_set_size(n, m, delta, seed);
        prop_assert!(sys.is_coverable());
        // The repair path only exceeds delta when every set is saturated,
        // and then inserts into a current-minimum set — so the overflow is
        // balanced: at most ceil(m/n) repairs land on any one set.
        prop_assert!(
            sys.max_set_size() <= delta + m.div_ceil(n),
            "max {} > delta {} + ceil(m/n) {}",
            sys.max_set_size(), delta, m.div_ceil(n)
        );
        let hist = set_size_histogram(&sys);
        prop_assert_eq!(hist.iter().sum::<usize>(), sys.n_sets());
    }

    #[test]
    fn partition_and_tight_f_shapes(m in 2usize..60, k in 1usize..8) {
        let parts = k.min(m);
        let p = partition_system(m, parts, 3);
        prop_assert_eq!(p.total_size(), m);
        prop_assert_eq!(p.max_frequency(), 1);
        let f = k;
        let t = tight_f_instance(m, f);
        prop_assert_eq!(t.max_frequency(), f);
        prop_assert_eq!(t.n_sets(), f);
        prop_assert!(t.covers(&[0]));
    }

    #[test]
    fn interval_cover_contiguity(n in 1usize..20, m in 1usize..120, len in 1usize..15, seed in any::<u64>()) {
        let sys = interval_cover(n, m, len, seed);
        prop_assert!(sys.is_coverable());
        prop_assert!(sys.max_set_size() <= len);
        for set in sys.sets() {
            for w in set.windows(2) {
                prop_assert_eq!(w[0] + 1, w[1]);
            }
        }
    }

    #[test]
    fn io_round_trips(n in 1usize..20, m in 1usize..80, f in 1usize..4, seed in any::<u64>()) {
        let f = f.min(n);
        let sys = with_log_uniform_weights(bounded_frequency(n, m, f, seed), 0.1, 100.0, seed ^ 1);
        let back = parse_text(&to_text(&sys)).unwrap();
        prop_assert_eq!(back.sets(), sys.sets());
        for (a, b) in sys.weights().iter().zip(back.weights()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn stats_are_internally_consistent(n in 1usize..25, m in 1usize..100, f in 1usize..4, seed in any::<u64>()) {
        let f = f.min(n);
        let sys = bounded_frequency(n, m, f, seed);
        let s = system_stats(&sys);
        prop_assert_eq!(s.total_size, sys.total_size());
        prop_assert!(s.mean_set_size <= s.max_set_size as f64 + 1e-9);
        prop_assert!(s.mean_frequency <= s.max_frequency as f64 + 1e-9);
        prop_assert!(s.weight_spread >= 1.0 - 1e-12);
        prop_assert!(s.coverable);
        // Double-counting identity: Σ|S_i| = Σ_j freq(j).
        let hist = frequency_histogram(&sys);
        let by_freq: usize = hist.iter().enumerate().map(|(k, c)| k * c).sum();
        prop_assert_eq!(by_freq, s.total_size);
    }

    #[test]
    fn greedy_trap_always_has_cheap_optimum(m in 2usize..64) {
        let sys = greedy_trap(m, 0.25);
        prop_assert!(sys.covers(&[0]));
        prop_assert!((sys.cover_weight(&[0]) - 1.25).abs() < 1e-9);
        // The singletons alone also cover, at harmonic cost.
        let singles: Vec<u32> = (1..=m as u32).collect();
        prop_assert!(sys.covers(&singles));
        let h: f64 = (1..=m).map(|k| 1.0 / k as f64).sum();
        prop_assert!((sys.cover_weight(&singles) - h).abs() < 1e-6);
    }
}
