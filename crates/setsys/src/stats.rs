//! Structural statistics of set systems.
//!
//! The paper's set-cover bounds are phrased in the instance parameters
//! `f` (maximum element frequency), `Δ` (maximum set size) and the weight
//! spread `w_max/w_min`; the experiment harness reports these alongside the
//! measured rounds so every run is self-describing.

use crate::system::SetSystem;

/// Summary of a set system's structural parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemStats {
    /// Number of sets `n`.
    pub n_sets: usize,
    /// Universe size `m`.
    pub universe: usize,
    /// Total input size `Σ |S_i|`.
    pub total_size: usize,
    /// Maximum element frequency `f`.
    pub max_frequency: usize,
    /// Mean element frequency.
    pub mean_frequency: f64,
    /// Maximum set size `Δ`.
    pub max_set_size: usize,
    /// Mean set size.
    pub mean_set_size: f64,
    /// `w_max / w_min`.
    pub weight_spread: f64,
    /// Whether every element is coverable.
    pub coverable: bool,
}

/// Computes [`SystemStats`] for `sys`.
pub fn system_stats(sys: &SetSystem) -> SystemStats {
    let total = sys.total_size();
    SystemStats {
        n_sets: sys.n_sets(),
        universe: sys.universe(),
        total_size: total,
        max_frequency: sys.max_frequency(),
        mean_frequency: if sys.universe() == 0 {
            0.0
        } else {
            total as f64 / sys.universe() as f64
        },
        max_set_size: sys.max_set_size(),
        mean_set_size: if sys.n_sets() == 0 {
            0.0
        } else {
            total as f64 / sys.n_sets() as f64
        },
        weight_spread: sys.weight_spread(),
        coverable: sys.is_coverable(),
    }
}

/// Histogram of element frequencies: `hist[k]` counts elements contained in
/// exactly `k` sets (index 0 counts uncoverable elements).
pub fn frequency_histogram(sys: &SetSystem) -> Vec<usize> {
    let mut freq = vec![0usize; sys.universe()];
    for s in sys.sets() {
        for &j in s {
            freq[j as usize] += 1;
        }
    }
    let max = freq.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for f in freq {
        hist[f] += 1;
    }
    hist
}

/// Histogram of set sizes: `hist[k]` counts sets of cardinality `k`.
pub fn set_size_histogram(sys: &SetSystem) -> Vec<usize> {
    let max = sys.max_set_size();
    let mut hist = vec![0usize; max + 1];
    for s in sys.sets() {
        hist[s.len()] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> SetSystem {
        SetSystem::new(
            4,
            vec![vec![0, 1, 2], vec![2, 3], vec![3]],
            vec![1.0, 2.0, 4.0],
        )
    }

    #[test]
    fn stats_summary() {
        let s = system_stats(&toy());
        assert_eq!(s.n_sets, 3);
        assert_eq!(s.universe, 4);
        assert_eq!(s.total_size, 6);
        assert_eq!(s.max_frequency, 2);
        assert!((s.mean_frequency - 1.5).abs() < 1e-12);
        assert_eq!(s.max_set_size, 3);
        assert!((s.mean_set_size - 2.0).abs() < 1e-12);
        assert!((s.weight_spread - 4.0).abs() < 1e-12);
        assert!(s.coverable);
    }

    #[test]
    fn frequency_histogram_counts() {
        // freq: e0:1, e1:1, e2:2, e3:2 → hist [0,2,2]
        assert_eq!(frequency_histogram(&toy()), vec![0, 2, 2]);
        // An uncoverable element lands in bucket 0.
        let partial = SetSystem::unit(3, vec![vec![0], vec![0, 1]]);
        assert_eq!(frequency_histogram(&partial), vec![1, 1, 1]);
    }

    #[test]
    fn set_size_histogram_counts() {
        assert_eq!(set_size_histogram(&toy()), vec![0, 1, 1, 1]);
    }

    #[test]
    fn empty_system_stats() {
        let empty = SetSystem::unit(0, vec![]);
        let s = system_stats(&empty);
        assert_eq!(s.n_sets, 0);
        assert_eq!(s.total_size, 0);
        assert_eq!(s.mean_frequency, 0.0);
        assert_eq!(s.mean_set_size, 0.0);
        assert!(s.coverable); // vacuously
        assert_eq!(frequency_histogram(&empty), vec![0]);
        assert_eq!(set_size_histogram(&empty), vec![0]);
    }
}
