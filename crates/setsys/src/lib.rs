//! # mrlr-setsys — weighted set system substrate
//!
//! Set systems for the set-cover algorithms of *"Greedy and Local Ratio
//! Algorithms in the MapReduce Model"* (SPAA 2018): the primal/dual views
//! (Section 2 works with the dual `T_j` representation), and generators with
//! controlled frequency `f`, set size `Δ`, and weight spread.
//!
//! ```
//! use mrlr_setsys::generators;
//!
//! let sys = generators::bounded_frequency(20, 500, 3, 42);
//! assert!(sys.is_coverable());
//! assert!(sys.max_frequency() <= 3);
//! ```

#![warn(missing_docs)]

pub mod generators;
pub mod io;
pub mod stats;
pub mod system;

pub use io::{parse_text, to_text, ParseError};
pub use stats::{frequency_histogram, set_size_histogram, system_stats, SystemStats};
pub use system::{ElemId, SetId, SetRec, SetSystem};
