//! Weighted set systems: the primal (`S_i ⊆ [m]`) and dual (`T_j = {i : j ∈
//! S_i}`) views used by the paper's set-cover algorithms.

use mrlr_graph::Graph;
use mrlr_mapreduce::words::WordSized;

/// Index of a set: `0..n_sets`.
pub type SetId = u32;

/// Index of a universe element: `0..universe`.
pub type ElemId = u32;

/// A weighted set system over universe `[m]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SetSystem {
    universe: usize,
    sets: Vec<Vec<ElemId>>,
    weights: Vec<f64>,
}

impl SetSystem {
    /// Builds a set system, validating element ranges, sortedness and
    /// distinctness of each set, and weight positivity.
    ///
    /// # Panics
    /// Panics on malformed input (generators construct these; a bad system
    /// is a programming error).
    pub fn new(universe: usize, sets: Vec<Vec<ElemId>>, weights: Vec<f64>) -> Self {
        assert_eq!(sets.len(), weights.len(), "one weight per set");
        for (i, s) in sets.iter().enumerate() {
            for pair in s.windows(2) {
                assert!(pair[0] < pair[1], "set {i} not sorted-distinct");
            }
            if let Some(&last) = s.last() {
                assert!((last as usize) < universe, "set {i} element out of range");
            }
        }
        for (i, &w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && w > 0.0,
                "weight of set {i} must be positive"
            );
        }
        SetSystem {
            universe,
            sets,
            weights,
        }
    }

    /// Builds a unit-weight system.
    pub fn unit(universe: usize, sets: Vec<Vec<ElemId>>) -> Self {
        let n = sets.len();
        SetSystem::new(universe, sets, vec![1.0; n])
    }

    /// Replaces the weights.
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), self.sets.len());
        for &w in &weights {
            assert!(w.is_finite() && w > 0.0);
        }
        self.weights = weights;
        self
    }

    /// Number of sets `n`.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Universe size `m`.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// All sets.
    pub fn sets(&self) -> &[Vec<ElemId>] {
        &self.sets
    }

    /// Elements of set `i`.
    pub fn set(&self, i: SetId) -> &[ElemId] {
        &self.sets[i as usize]
    }

    /// All weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Weight of set `i`.
    pub fn weight(&self, i: SetId) -> f64 {
        self.weights[i as usize]
    }

    /// The dual view: `T_j` lists the sets containing element `j`, in
    /// ascending set order.
    pub fn dual(&self) -> Vec<Vec<SetId>> {
        let mut t: Vec<Vec<SetId>> = vec![Vec::new(); self.universe];
        for (i, s) in self.sets.iter().enumerate() {
            for &j in s {
                t[j as usize].push(i as SetId);
            }
        }
        t
    }

    /// Maximum frequency `f = max_j |T_j|`.
    pub fn max_frequency(&self) -> usize {
        let mut freq = vec![0usize; self.universe];
        for s in &self.sets {
            for &j in s {
                freq[j as usize] += 1;
            }
        }
        freq.into_iter().max().unwrap_or(0)
    }

    /// Maximum set size `Δ = max_i |S_i|`.
    pub fn max_set_size(&self) -> usize {
        self.sets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total input size `Σ |S_i|`.
    pub fn total_size(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Weight spread `w_max / w_min` (1.0 when there are no sets).
    pub fn weight_spread(&self) -> f64 {
        if self.weights.is_empty() {
            return 1.0;
        }
        let max = self.weights.iter().cloned().fold(0.0f64, f64::max);
        let min = self.weights.iter().cloned().fold(f64::INFINITY, f64::min);
        max / min
    }

    /// True if every element is contained in at least one set.
    pub fn is_coverable(&self) -> bool {
        let mut covered = vec![false; self.universe];
        for s in &self.sets {
            for &j in s {
                covered[j as usize] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }

    /// True if the chosen sets cover the universe.
    pub fn covers(&self, chosen: &[SetId]) -> bool {
        let mut covered = vec![false; self.universe];
        for &i in chosen {
            for &j in self.set(i) {
                covered[j as usize] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }

    /// Total weight of the chosen sets (each counted once even if repeated).
    pub fn cover_weight(&self, chosen: &[SetId]) -> f64 {
        let mut picked = vec![false; self.n_sets()];
        let mut total = 0.0;
        for &i in chosen {
            if !picked[i as usize] {
                picked[i as usize] = true;
                total += self.weight(i);
            }
        }
        total
    }

    /// The weighted **vertex cover** view of a graph: one set per vertex
    /// (weight from `weights`), one universe element per edge. Frequency is
    /// exactly 2 — the `f = 2` special case of Theorem 2.4.
    pub fn vertex_cover_of(g: &Graph, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), g.n());
        let mut sets: Vec<Vec<ElemId>> = vec![Vec::new(); g.n()];
        for (j, e) in g.edges().iter().enumerate() {
            sets[e.u as usize].push(j as ElemId);
            sets[e.v as usize].push(j as ElemId);
        }
        // Edge ids were pushed in ascending order per vertex already.
        SetSystem::new(g.m(), sets, weights)
    }
}

/// A set record as held on a machine: id, weight, and elements.
#[derive(Debug, Clone, PartialEq)]
pub struct SetRec {
    /// The set's id.
    pub id: SetId,
    /// The set's weight.
    pub w: f64,
    /// The set's elements.
    pub elems: Vec<ElemId>,
}

impl WordSized for SetRec {
    fn words(&self) -> usize {
        2 + self.elems.words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrlr_graph::generators::star;

    fn toy() -> SetSystem {
        SetSystem::new(
            4,
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]],
            vec![1.0, 2.0, 3.0, 4.0],
        )
    }

    #[test]
    fn accessors() {
        let s = toy();
        assert_eq!(s.n_sets(), 4);
        assert_eq!(s.universe(), 4);
        assert_eq!(s.set(1), &[1, 2]);
        assert_eq!(s.weight(3), 4.0);
        assert_eq!(s.max_frequency(), 2);
        assert_eq!(s.max_set_size(), 2);
        assert_eq!(s.total_size(), 8);
        assert!((s.weight_spread() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dual_inverts() {
        let s = toy();
        let t = s.dual();
        assert_eq!(t[0], vec![0, 3]);
        assert_eq!(t[1], vec![0, 1]);
        assert_eq!(t[2], vec![1, 2]);
        assert_eq!(t[3], vec![2, 3]);
    }

    #[test]
    fn coverage_checks() {
        let s = toy();
        assert!(s.is_coverable());
        assert!(s.covers(&[0, 2]));
        assert!(!s.covers(&[0, 1]));
        assert!((s.cover_weight(&[0, 2]) - 4.0).abs() < 1e-12);
        // duplicates counted once
        assert!((s.cover_weight(&[0, 0, 2]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn uncoverable_detected() {
        let s = SetSystem::unit(3, vec![vec![0], vec![1]]);
        assert!(!s.is_coverable());
    }

    #[test]
    #[should_panic(expected = "sorted-distinct")]
    fn rejects_unsorted() {
        SetSystem::unit(3, vec![vec![1, 0]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        SetSystem::unit(3, vec![vec![0, 5]]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_weight() {
        SetSystem::new(2, vec![vec![0]], vec![-1.0]);
    }

    #[test]
    fn vertex_cover_view() {
        let g = star(4); // edges (0,1), (0,2), (0,3)
        let s = SetSystem::vertex_cover_of(&g, vec![10.0, 1.0, 1.0, 1.0]);
        assert_eq!(s.universe(), 3);
        assert_eq!(s.max_frequency(), 2);
        assert_eq!(s.set(0), &[0, 1, 2]);
        assert!(s.covers(&[0]));
        assert!(!s.covers(&[1, 2]));
        assert!(s.covers(&[1, 2, 3]));
    }

    #[test]
    fn set_rec_words() {
        let r = SetRec {
            id: 1,
            w: 2.0,
            elems: vec![1, 2, 3],
        };
        assert_eq!(r.words(), 2 + 4);
    }
}
