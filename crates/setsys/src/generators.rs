//! Set-system generators with controlled structural parameters.
//!
//! The paper's two set-cover algorithms live in different regimes:
//! Algorithm 1 (`f`-approximation) targets `n ≪ m` with bounded frequency
//! `f`; Algorithm 3 (`(1+ε) ln Δ`) targets `m ≪ n` with bounded set size
//! `Δ`. The generators here let benchmarks dial `f`, `Δ`, `m/n`, and the
//! weight spread `w_max/w_min` independently.

use mrlr_mapreduce::rng::DetRng;

use crate::system::{ElemId, SetSystem};

/// Generates a coverable system over `m` elements and `n_sets` sets where
/// every element appears in at least 1 and at most `f` sets (so the maximum
/// frequency is ≤ `f`, and = `f` w.h.p. for `m ≫ f`). Weights are 1.
///
/// This is the `n ≪ m` regime of Algorithm 1; `f = 2` gives (multi-)vertex-
/// cover-like instances.
pub fn bounded_frequency(n_sets: usize, m: usize, f: usize, seed: u64) -> SetSystem {
    assert!(f >= 1 && f <= n_sets, "need 1 <= f <= n_sets");
    let mut rng = DetRng::derive(seed, &[0x6672_6571, f as u64]);
    let mut sets: Vec<Vec<ElemId>> = vec![Vec::new(); n_sets];
    for j in 0..m {
        // Element j appears in a uniform number in [1, f] of distinct sets.
        let k = 1 + rng.range_usize(f);
        for s in rng.sample_indices(n_sets, k) {
            sets[s].push(j as ElemId);
        }
    }
    // Construction pushes elements in ascending order per set.
    SetSystem::unit(m, sets)
}

/// Generates a coverable system over `m` elements where sets have size at
/// most `delta` (max set size ≤ `delta`, and close to it w.h.p.). Each set
/// draws a uniform size in `[1, delta]` and uniform elements; any element
/// left uncovered is then added to a set that still has room (or the
/// smallest set). Weights are 1.
///
/// This is the `m ≪ n` regime of Algorithm 3.
pub fn bounded_set_size(n_sets: usize, m: usize, delta: usize, seed: u64) -> SetSystem {
    assert!(delta >= 1 && delta <= m, "need 1 <= delta <= m");
    assert!(n_sets >= 1);
    let mut rng = DetRng::derive(seed, &[0x0064_737a, delta as u64]);
    let mut sets: Vec<Vec<ElemId>> = Vec::with_capacity(n_sets);
    for _ in 0..n_sets {
        let k = 1 + rng.range_usize(delta);
        let mut elems: Vec<ElemId> = rng
            .sample_indices(m, k)
            .into_iter()
            .map(|e| e as ElemId)
            .collect();
        elems.sort_unstable();
        sets.push(elems);
    }
    // Repair coverage.
    let mut covered = vec![false; m];
    for s in &sets {
        for &j in s {
            covered[j as usize] = true;
        }
    }
    for (j, c) in covered.into_iter().enumerate() {
        if !c {
            // Prefer a set with spare room; fall back to the globally
            // smallest so the realized Δ stays near the target.
            let start = rng.range_usize(n_sets);
            let target = (0..n_sets)
                .map(|o| (start + o) % n_sets)
                .find(|&i| sets[i].len() < delta)
                .unwrap_or_else(|| {
                    (0..n_sets)
                        .min_by_key(|&i| sets[i].len())
                        .expect("at least one set")
                });
            let pos = sets[target].partition_point(|&e| (e as usize) < j);
            sets[target].insert(pos, j as ElemId);
        }
    }
    SetSystem::unit(m, sets)
}

/// Assigns independent uniform weights in `[lo, hi)`.
pub fn with_uniform_weights(s: SetSystem, lo: f64, hi: f64, seed: u64) -> SetSystem {
    assert!(lo > 0.0 && hi > lo);
    let mut rng = DetRng::derive(seed, &[0x0073_7774]);
    let n = s.n_sets();
    let w = (0..n).map(|_| rng.f64_range(lo, hi)).collect();
    s.with_weights(w)
}

/// Assigns log-uniform weights in `[lo, hi)`, exercising the
/// `log(w_max/w_min)` factor in Theorem 4.6.
pub fn with_log_uniform_weights(s: SetSystem, lo: f64, hi: f64, seed: u64) -> SetSystem {
    assert!(lo > 0.0 && hi > lo);
    let mut rng = DetRng::derive(seed, &[0x0073_6c77]);
    let n = s.n_sets();
    let w = (0..n)
        .map(|_| rng.f64_range(lo.ln(), hi.ln()).exp())
        .collect();
    s.with_weights(w)
}

/// The classic tight instance for weighted greedy set cover: one big set
/// covering the whole universe at weight `1 + eps` (the optimum), plus a
/// singleton `{j}` of weight `1/(m-j)` for every element. At every greedy
/// step the best uncovered singleton has ratio `m - k`, strictly beating the
/// big set's `(m - k)/(1 + eps)`, so greedy pays `H_m ≈ ln m` against an
/// optimum of `1 + eps`.
pub fn greedy_trap(m: usize, eps: f64) -> SetSystem {
    assert!(m >= 2 && eps > 0.0);
    let mut sets = vec![(0..m as ElemId).collect::<Vec<_>>()];
    let mut weights = vec![1.0 + eps];
    for j in 0..m {
        sets.push(vec![j as ElemId]);
        weights.push(1.0 / (m - j) as f64);
    }
    SetSystem::new(m, sets, weights)
}

/// The tight instance for the `f`-approximation (Theorem 2.1): `f` copies
/// of the full universe, all at weight 1. Any single set is an optimal
/// cover, but the local ratio method (whatever element it picks first)
/// reduces all `f` weights to zero and takes *every* set — cost exactly
/// `f · OPT`.
pub fn tight_f_instance(m: usize, f: usize) -> SetSystem {
    assert!(m >= 1 && f >= 1);
    let full: Vec<ElemId> = (0..m as ElemId).collect();
    SetSystem::unit(m, vec![full; f])
}

/// Interval covering: `n_sets` intervals of length `≤ max_len` over the
/// line `[m]`, padded so the universe is covered. A locality-structured
/// family (geographic/scheduling workloads): the frequency of a point is
/// the number of intervals over it.
pub fn interval_cover(n_sets: usize, m: usize, max_len: usize, seed: u64) -> SetSystem {
    assert!(max_len >= 1 && m >= 1 && n_sets >= 1);
    let mut rng = DetRng::derive(seed, &[0x0069_766c, max_len as u64]);
    let mut sets: Vec<Vec<ElemId>> = Vec::with_capacity(n_sets);
    for _ in 0..n_sets {
        let len = 1 + rng.range_usize(max_len);
        let start = rng.range_usize(m);
        let end = (start + len).min(m);
        sets.push((start as ElemId..end as ElemId).collect());
    }
    // Repair coverage with minimal extra intervals of length max_len.
    let mut covered = vec![false; m];
    for s in &sets {
        for &j in s {
            covered[j as usize] = true;
        }
    }
    let mut j = 0usize;
    while j < m {
        if covered[j] {
            j += 1;
            continue;
        }
        let end = (j + max_len).min(m);
        sets.push((j as ElemId..end as ElemId).collect());
        for c in covered.iter_mut().take(end).skip(j) {
            *c = true;
        }
        j = end;
    }
    SetSystem::unit(m, sets)
}

/// A partition of `[m]` into `parts` non-empty sets (frequency exactly 1 —
/// the degenerate extreme of the `f`-approximation), with random part
/// boundaries.
pub fn partition_system(m: usize, parts: usize, seed: u64) -> SetSystem {
    assert!(parts >= 1 && parts <= m, "need 1 <= parts <= m");
    let mut rng = DetRng::derive(seed, &[0x0070_7274]);
    // Choose parts-1 distinct cut points in 1..m.
    let mut cuts: Vec<usize> = rng
        .sample_indices(m - 1, parts - 1)
        .into_iter()
        .map(|c| c + 1)
        .collect();
    cuts.sort_unstable();
    cuts.push(m);
    let mut sets = Vec::with_capacity(parts);
    let mut start = 0usize;
    for &end in &cuts {
        sets.push((start as ElemId..end as ElemId).collect::<Vec<_>>());
        start = end;
    }
    SetSystem::unit(m, sets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_frequency_respects_f() {
        for f in [1usize, 2, 4] {
            let s = bounded_frequency(20, 300, f, 7);
            assert!(s.is_coverable());
            assert!(s.max_frequency() <= f);
            assert_eq!(s.universe(), 300);
            assert_eq!(s.n_sets(), 20);
        }
        // With plenty of elements the bound is met exactly.
        let s = bounded_frequency(20, 1000, 3, 7);
        assert_eq!(s.max_frequency(), 3);
    }

    #[test]
    fn bounded_frequency_deterministic() {
        assert_eq!(
            bounded_frequency(10, 50, 2, 1),
            bounded_frequency(10, 50, 2, 1)
        );
        assert_ne!(
            bounded_frequency(10, 50, 2, 1),
            bounded_frequency(10, 50, 2, 2)
        );
    }

    #[test]
    fn bounded_set_size_respects_delta_approx() {
        let s = bounded_set_size(100, 60, 8, 3);
        assert!(s.is_coverable());
        // Repair can only exceed delta when all sets are full, which cannot
        // happen here (100 sets x 8 slots >> 60 elements).
        assert!(s.max_set_size() <= 8);
    }

    #[test]
    fn bounded_set_size_tiny_repair() {
        // Few sets, forced repair: still coverable.
        let s = bounded_set_size(2, 30, 3, 5);
        assert!(s.is_coverable());
    }

    #[test]
    fn weights_in_range() {
        let s = with_uniform_weights(bounded_frequency(10, 50, 2, 1), 2.0, 5.0, 9);
        for &w in s.weights() {
            assert!((2.0..5.0).contains(&w));
        }
        let s = with_log_uniform_weights(bounded_frequency(10, 50, 2, 1), 0.1, 10.0, 9);
        for &w in s.weights() {
            assert!((0.1..10.0).contains(&w));
        }
        assert!(s.weight_spread() <= 100.0);
    }

    #[test]
    fn tight_f_shape() {
        let s = tight_f_instance(10, 4);
        assert_eq!(s.n_sets(), 4);
        assert_eq!(s.max_frequency(), 4);
        assert!(s.covers(&[2]));
        assert!((s.cover_weight(&[0, 1, 2, 3]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn interval_cover_is_contiguous_and_coverable() {
        let s = interval_cover(15, 100, 12, 3);
        assert!(s.is_coverable());
        assert!(s.max_set_size() <= 12);
        for set in s.sets() {
            for w in set.windows(2) {
                assert_eq!(w[0] + 1, w[1], "interval must be contiguous");
            }
        }
        // Degenerate: single length-1 intervals still cover after repair.
        let t = interval_cover(1, 10, 1, 1);
        assert!(t.is_coverable());
        assert!(t.max_set_size() == 1);
    }

    #[test]
    fn partition_system_is_exact_partition() {
        for (m, parts, seed) in [(20usize, 5usize, 1u64), (7, 7, 2), (30, 1, 3)] {
            let s = partition_system(m, parts, seed);
            assert_eq!(s.n_sets(), parts);
            assert_eq!(s.max_frequency(), 1);
            assert!(s.is_coverable());
            assert_eq!(s.total_size(), m);
            assert!(s.sets().iter().all(|set| !set.is_empty()));
        }
    }

    #[test]
    fn greedy_trap_shape() {
        let s = greedy_trap(16, 0.1);
        assert_eq!(s.universe(), 16);
        assert_eq!(s.n_sets(), 17);
        assert!(s.is_coverable());
        // The big set alone is a cover of weight 1.1 (the optimum).
        assert!(s.covers(&[0]));
        assert!((s.cover_weight(&[0]) - 1.1).abs() < 1e-9);
        // The first singleton (element 0) has weight 1/16 and ratio 16,
        // beating the big set's 16/1.1.
        assert!((s.weight(1) - 1.0 / 16.0).abs() < 1e-12);
    }
}
