//! Plain-text serialization of set systems.
//!
//! Format (one set per line after the header; `#` comments and blank lines
//! ignored):
//!
//! ```text
//! # mrlr set system
//! m n
//! w j1 j2 j3 …
//! …
//! ```
//!
//! The header gives the universe size `m` and set count `n`; each set line
//! starts with the weight followed by the sorted element list (possibly
//! empty).

use std::fmt::Write as _;

use crate::system::{ElemId, SetSystem};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Serializes `sys`. Weights use `{:?}` so they round-trip bit-exactly.
pub fn to_text(sys: &SetSystem) -> String {
    let mut out = String::with_capacity(16 + 8 * sys.total_size());
    let _ = writeln!(out, "{} {}", sys.universe(), sys.n_sets());
    for (i, set) in sys.sets().iter().enumerate() {
        let _ = write!(out, "{:?}", sys.weight(i as u32));
        for &j in set {
            let _ = write!(out, " {j}");
        }
        out.push('\n');
    }
    out
}

/// Parses the format produced by [`to_text`]. Validates header counts,
/// element ranges/sortedness and weight positivity.
pub fn parse_text(text: &str) -> Result<SetSystem, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (hline, header) = lines.next().ok_or_else(|| err(0, "missing header line"))?;
    let mut parts = header.split_whitespace();
    let m: usize = parts
        .next()
        .ok_or_else(|| err(hline, "header needs `m n`"))?
        .parse()
        .map_err(|_| err(hline, "bad universe size"))?;
    let n: usize = parts
        .next()
        .ok_or_else(|| err(hline, "header needs `m n`"))?
        .parse()
        .map_err(|_| err(hline, "bad set count"))?;
    if parts.next().is_some() {
        return Err(err(hline, "trailing tokens after header"));
    }

    let mut sets: Vec<Vec<ElemId>> = Vec::with_capacity(n);
    let mut weights: Vec<f64> = Vec::with_capacity(n);
    for (lineno, line) in lines {
        let mut toks = line.split_whitespace();
        let w: f64 = toks
            .next()
            .ok_or_else(|| err(lineno, "missing weight"))?
            .parse()
            .map_err(|_| err(lineno, "bad weight"))?;
        if !(w.is_finite() && w > 0.0) {
            return Err(err(
                lineno,
                format!("weight {w} must be positive and finite"),
            ));
        }
        let mut elems: Vec<ElemId> = Vec::new();
        for t in toks {
            let j: ElemId = t.parse().map_err(|_| err(lineno, "bad element"))?;
            if (j as usize) >= m {
                return Err(err(lineno, format!("element {j} out of range 0..{m}")));
            }
            if let Some(&last) = elems.last() {
                if last >= j {
                    return Err(err(lineno, "elements must be strictly increasing"));
                }
            }
            elems.push(j);
        }
        weights.push(w);
        sets.push(elems);
    }
    if sets.len() != n {
        return Err(err(
            0,
            format!("header promised {n} sets, found {}", sets.len()),
        ));
    }
    Ok(SetSystem::new(m, sets, weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{bounded_frequency, with_log_uniform_weights};

    #[test]
    fn round_trip() {
        let sys = with_log_uniform_weights(bounded_frequency(12, 80, 3, 4), 0.25, 16.0, 5);
        let back = parse_text(&to_text(&sys)).unwrap();
        assert_eq!(sys.universe(), back.universe());
        assert_eq!(sys.sets(), back.sets());
        for (a, b) in sys.weights().iter().zip(back.weights()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn comments_blanks_and_empty_sets() {
        let text = "# instance\n3 2\n\n1.5 0 2\n2.0\n";
        let sys = parse_text(text).unwrap();
        assert_eq!(sys.universe(), 3);
        assert_eq!(sys.n_sets(), 2);
        assert_eq!(sys.set(0), &[0, 2]);
        assert!(sys.set(1).is_empty());
        assert!(!sys.is_coverable()); // element 1 uncovered
    }

    #[test]
    fn errors_reported_with_lines() {
        let cases: &[(&str, usize, &str)] = &[
            ("", 0, "missing header"),
            ("x 1", 1, "bad universe"),
            ("3", 1, "header needs"),
            ("3 1 z", 1, "trailing"),
            ("3 1\n-1 0", 2, "positive"),
            ("3 1\nw 0", 2, "bad weight"),
            ("3 1\n1.0 9", 2, "out of range"),
            ("3 1\n1.0 1 1", 2, "strictly increasing"),
            ("3 1\n1.0 2 1", 2, "strictly increasing"),
            ("3 2\n1.0 0", 0, "promised 2 sets"),
        ];
        for (text, line, needle) in cases {
            let e = parse_text(text).unwrap_err();
            assert_eq!(e.line, *line, "case {text:?}: {e}");
            assert!(e.message.contains(needle), "case {text:?}: {e}");
        }
    }

    #[test]
    fn empty_system_round_trips() {
        let sys = SetSystem::unit(0, vec![]);
        assert_eq!(parse_text(&to_text(&sys)).unwrap(), sys);
    }
}
