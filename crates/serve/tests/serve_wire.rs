//! Property-based contract of the serve wire format, mirroring
//! `mrlr-mapreduce/tests/dist_wire.rs`: every [`Request`] and
//! [`Response`] kind survives `decode(encode(x)) == x` on arbitrary
//! field values, every strict prefix is rejected as truncated, trailing
//! garbage is rejected at the exact canonical boundary, unknown tags
//! are rejected at offset 0, and corruption never panics.

use proptest::prelude::*;

use mrlr_mapreduce::dist::wire::{decode_value, encode_value};
use mrlr_serve::protocol::{
    BatchJob, RenderOpts, ReportFormat, Request, Response, SolveSpec, StatsSnapshot,
};

fn arb_format() -> impl Strategy<Value = ReportFormat> {
    (0u8..3).prop_map(|t| match t {
        0 => ReportFormat::Text,
        1 => ReportFormat::Json,
        _ => ReportFormat::Csv,
    })
}

fn arb_render() -> impl Strategy<Value = RenderOpts> {
    (arb_format(), any::<bool>(), any::<bool>()).prop_map(|(format, mask, full)| RenderOpts {
        format,
        mask_timings: mask,
        certificates_full: full,
    })
}

fn arb_string() -> impl Strategy<Value = String> {
    // Latin-1 code points: every byte value maps to a char, so the
    // strings exercise both one- and two-byte UTF-8 sequences.
    proptest::collection::vec(any::<u8>(), 0..24)
        .prop_map(|bs| bs.into_iter().map(char::from).collect())
}

fn arb_opt_u64() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(has, v)| has.then_some(v))
}

fn arb_spec() -> impl Strategy<Value = SolveSpec> {
    (
        arb_string(),
        arb_string(),
        arb_string(),
        (any::<u64>(), any::<u64>()),
        (arb_opt_u64(), arb_opt_u64(), arb_opt_u64()),
    )
        .prop_map(
            |(algorithm, backend, instance_text, (mu_bits, seed), (threads, machines, workers))| {
                SolveSpec {
                    algorithm,
                    backend,
                    instance_text,
                    mu_bits,
                    seed,
                    threads,
                    machines,
                    workers,
                }
            },
        )
}

fn arb_job() -> impl Strategy<Value = BatchJob> {
    (arb_string(), any::<u64>(), any::<u64>(), arb_opt_u64()).prop_map(
        |(algorithm, mu_bits, seed, threads)| BatchJob {
            algorithm,
            mu_bits,
            seed,
            threads,
        },
    )
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        (0u8..6, any::<u64>()),
        arb_spec(),
        arb_render(),
        proptest::collection::vec((arb_string(), arb_string()), 0..4),
        proptest::collection::vec(arb_job(), 0..4),
        arb_string(),
    )
        .prop_map(
            |((kind, n), spec, render, instances, jobs, text)| match kind {
                0 => Request::Solve {
                    spec,
                    render,
                    timeout_millis: n,
                },
                1 => Request::Batch {
                    instances,
                    jobs,
                    backend: text,
                    render,
                    timeout_millis: n,
                },
                2 => Request::Verify {
                    instance_text: spec.instance_text,
                    report_json: text,
                },
                3 => Request::Ping { nonce: n },
                4 => Request::Stats,
                _ => Request::Shutdown,
            },
        )
}

fn arb_stats() -> impl Strategy<Value = StatsSnapshot> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(|((a, b, c, d), (e, f, g))| StatsSnapshot {
            requests: a,
            solver_runs: b,
            coalesce_hits: c,
            busy_rejects: d,
            timeouts: e,
            inflight_high_water: f,
            queue_depth_high_water: g,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        (0u8..9, any::<bool>(), arb_stats()),
        arb_string(),
        arb_string(),
        proptest::collection::vec(arb_string(), 0..4),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((kind, flag, stats), s1, s2, list, (a, b, c))| match kind {
                0 => Response::Admitted,
                1 => Response::Note { line: s1 },
                2 => Response::Report {
                    content: s1,
                    coalesced: flag,
                },
                3 => Response::VerifyOk {
                    algorithm: s1,
                    backend: s2,
                    checks: list,
                },
                4 => Response::Busy {
                    in_flight: a,
                    queued: b,
                    limit: c,
                },
                5 => Response::Error { message: s1 },
                6 => Response::Pong { nonce: a },
                7 => Response::Stats { stats },
                _ => Response::Bye,
            },
        )
}

proptest! {
    #[test]
    fn every_request_kind_round_trips(request in arb_request()) {
        let bytes = encode_value(&request);
        prop_assert_eq!(decode_value::<Request>(&bytes).unwrap(), request);
    }

    #[test]
    fn every_response_kind_round_trips(response in arb_response()) {
        let bytes = encode_value(&response);
        prop_assert_eq!(decode_value::<Response>(&bytes).unwrap(), response);
    }

    #[test]
    fn every_strict_request_prefix_is_rejected_as_truncated(request in arb_request()) {
        let bytes = encode_value(&request);
        for cut in 0..bytes.len() {
            let err = decode_value::<Request>(&bytes[..cut])
                .expect_err("strict prefix must not decode");
            prop_assert!(
                err.offset <= cut,
                "cut {} of {}: offset {} out of range ({})",
                cut, bytes.len(), err.offset, err.reason
            );
        }
    }

    #[test]
    fn every_strict_response_prefix_is_rejected_as_truncated(response in arb_response()) {
        let bytes = encode_value(&response);
        for cut in 0..bytes.len() {
            let err = decode_value::<Response>(&bytes[..cut])
                .expect_err("strict prefix must not decode");
            prop_assert!(err.offset <= cut, "cut {cut}: offset {} ({})", err.offset, err.reason);
        }
    }

    #[test]
    fn trailing_garbage_is_rejected_at_the_exact_boundary(
        request in arb_request(),
        junk in proptest::collection::vec(0u8..=u8::MAX, 1..16),
    ) {
        let mut bytes = encode_value(&request);
        let canonical = bytes.len();
        bytes.extend_from_slice(&junk);
        let err = decode_value::<Request>(&bytes).expect_err("trailing bytes must not decode");
        prop_assert_eq!(err.offset, canonical);
        prop_assert!(err.reason.contains("trailing"), "{}", err.reason);
    }

    #[test]
    fn unknown_tags_are_rejected_at_offset_zero(
        tag in 6u8..=u8::MAX,
        body in proptest::collection::vec(0u8..=u8::MAX, 0..16),
    ) {
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&body);
        let err = decode_value::<Request>(&bytes).expect_err("unknown tag must not decode");
        prop_assert_eq!(err.offset, 0);
        prop_assert!(err.reason.contains("unknown request tag"), "{}", err.reason);
        let mut bytes = vec![tag.max(9)];
        bytes.extend_from_slice(&body);
        let err = decode_value::<Response>(&bytes).expect_err("unknown tag must not decode");
        prop_assert_eq!(err.offset, 0);
        prop_assert!(err.reason.contains("unknown response tag"), "{}", err.reason);
    }

    #[test]
    fn corrupted_bytes_never_panic(
        request in arb_request(),
        flip in (any::<usize>(), 1u8..=u8::MAX),
    ) {
        let mut bytes = encode_value(&request);
        let (pos, xor) = flip;
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        match decode_value::<Request>(&bytes) {
            Ok(_) => {}
            Err(err) => prop_assert!(err.offset <= bytes.len(), "{}", err.reason),
        }
    }

    #[test]
    fn coalescing_keys_are_injective_on_specs(a in arb_spec(), b in arb_spec()) {
        // The canonical encoding is the coalescing key: equal keys must
        // mean equal specs (no two distinct runs ever share a report).
        prop_assert_eq!(a.coalesce_key() == b.coalesce_key(), a == b);
    }
}
