//! End-to-end engine contract of the serve daemon, over a real Unix
//! socket: served documents are byte-identical to direct registry
//! output, K concurrent identical requests coalesce onto exactly one
//! solver run, a full admission queue answers `Busy` instead of
//! hanging, queued requests respect their deadline, and shutdown
//! drains cleanly (socket removed, all connections joined).

use std::path::PathBuf;
use std::time::Duration;

use mrlr_core::api::{Backend, Instance, Registry};
use mrlr_core::io::{self, CertificateMode, TimingMode};
use mrlr_graph::generators;
use mrlr_serve::client::{Client, ClientError};
use mrlr_serve::protocol::{RenderOpts, ReportFormat, Request, Response, SolveSpec};
use mrlr_serve::server::{serve, ServeConfig};

fn unique_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mrlr-serve-test-{}-{tag}.sock", std::process::id()))
}

fn sample_instance_text(seed: u64) -> String {
    let g = generators::with_uniform_weights(&generators::densified(30, 0.4, seed), 1.0, 9.0, seed);
    io::render_instance(&Instance::Graph(g))
}

fn solve_request(instance_text: &str, seed: u64, timeout_millis: u64) -> Request {
    Request::Solve {
        spec: SolveSpec {
            algorithm: "matching".into(),
            backend: "mr".into(),
            instance_text: instance_text.into(),
            mu_bits: 0.3f64.to_bits(),
            seed,
            threads: None,
            machines: None,
            workers: None,
        },
        render: RenderOpts {
            format: ReportFormat::Json,
            mask_timings: true,
            certificates_full: true,
        },
        timeout_millis,
    }
}

/// Starts a daemon thread and waits until its socket accepts.
fn start(
    cfg: ServeConfig,
) -> (
    PathBuf,
    std::thread::JoinHandle<std::io::Result<mrlr_serve::StatsSnapshot>>,
) {
    let socket = cfg.socket.clone();
    let handle = std::thread::spawn(move || serve(cfg));
    for _ in 0..200 {
        if Client::connect(&socket).is_ok() {
            return (socket, handle);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never came up on {}", socket.display());
}

#[test]
fn served_report_is_byte_identical_to_direct_solve_and_audits_clean() {
    let socket = unique_socket("identity");
    let (socket, handle) = start(ServeConfig::new(&socket));
    let text = sample_instance_text(7);

    let mut client = Client::connect(&socket).unwrap();
    assert_eq!(client.ping(99).unwrap(), 99);
    let served = client
        .solve(&solve_request(&text, 42, 0), &mut |_| {})
        .unwrap();
    assert!(!served.coalesced);

    // The same run, straight through the registry, rendered identically.
    let instance = io::parse_instance(&text).unwrap();
    let cfg = instance.auto_config(0.3, 42);
    let report = Registry::with_defaults()
        .solve_with("matching", Backend::Mr, &instance, &cfg)
        .unwrap();
    let direct = io::report_json_with(&report, TimingMode::Masked, CertificateMode::Full).render();
    assert_eq!(
        served.content, direct,
        "served document must be bit-identical"
    );

    // The served document audits clean on the daemon too.
    let (algorithm, backend, checks) = client.verify(text.clone(), served.content).unwrap();
    assert_eq!(algorithm, "matching");
    assert_eq!(backend, "mr");
    assert!(!checks.is_empty());

    client.shutdown().unwrap();
    let stats = handle.join().unwrap().unwrap();
    assert!(!socket.exists(), "socket must be removed on shutdown");
    assert_eq!(stats.solver_runs, 1);
    assert_eq!(stats.requests, 2, "solve + verify pass admission");
    assert_eq!(stats.busy_rejects, 0);
}

#[test]
fn concurrent_identical_requests_share_exactly_one_solver_run() {
    let mut cfg = ServeConfig::new(unique_socket("coalesce"));
    // The runner holds its slot (and its coalescing entry) long enough
    // for the waiters to attach deterministically.
    cfg.hold = Duration::from_millis(800);
    let (socket, handle) = start(cfg);
    let text = sample_instance_text(8);

    // Runner: request sent, admission confirmed — the run is now in
    // flight and will not publish for `hold`.
    let mut runner = Client::connect(&socket).unwrap();
    runner.send(&solve_request(&text, 42, 0)).unwrap();
    assert!(matches!(runner.recv().unwrap(), Response::Admitted));

    // Waiters: identical spec, attached while the run is held open.
    const WAITERS: usize = 3;
    let mut joins = Vec::new();
    for _ in 0..WAITERS {
        let socket = socket.clone();
        let text = text.clone();
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(&socket).unwrap();
            c.solve(&solve_request(&text, 42, 0), &mut |_| {}).unwrap()
        }));
    }
    let mut contents = Vec::new();
    for j in joins {
        let served = j.join().unwrap();
        assert!(served.coalesced, "waiters must share the runner's run");
        contents.push(served.content);
    }
    // Drain the runner's own frames (notes then the report).
    let runner_content = loop {
        match runner.recv().unwrap() {
            Response::Note { .. } => {}
            Response::Report { content, coalesced } => {
                assert!(!coalesced);
                break content;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    };
    for c in &contents {
        assert_eq!(c, &runner_content, "all waiters get the identical report");
    }

    let mut client = Client::connect(&socket).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.solver_runs, 1, "exactly one solver run observed");
    assert_eq!(stats.coalesce_hits as usize, WAITERS);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn full_queue_answers_busy_instead_of_hanging() {
    let mut cfg = ServeConfig::new(unique_socket("busy"));
    cfg.max_inflight = 1;
    cfg.queue = 0;
    cfg.hold = Duration::from_millis(800);
    let (socket, handle) = start(cfg);
    let text = sample_instance_text(9);

    let mut holder = Client::connect(&socket).unwrap();
    holder.send(&solve_request(&text, 42, 0)).unwrap();
    assert!(matches!(holder.recv().unwrap(), Response::Admitted));

    // A *different* solve (different seed — different coalescing key)
    // finds the slot held and the queue full: explicit Busy, instantly.
    let mut rejected = Client::connect(&socket).unwrap();
    match rejected.solve(&solve_request(&text, 43, 0), &mut |_| {}) {
        Err(ClientError::Busy {
            in_flight, limit, ..
        }) => {
            assert_eq!(in_flight, 1);
            assert_eq!(limit, 1);
        }
        other => panic!("expected Busy, got {other:?}"),
    }

    // The holder's run is unaffected by the rejection.
    loop {
        match holder.recv().unwrap() {
            Response::Note { .. } => {}
            Response::Report { .. } => break,
            other => panic!("unexpected frame {other:?}"),
        }
    }
    let mut client = Client::connect(&socket).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.busy_rejects, 1);
    assert_eq!(stats.solver_runs, 1);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn queued_request_times_out_with_an_error_frame() {
    let mut cfg = ServeConfig::new(unique_socket("timeout"));
    cfg.max_inflight = 1;
    cfg.queue = 1;
    cfg.hold = Duration::from_millis(800);
    let (socket, handle) = start(cfg);
    let text = sample_instance_text(10);

    let mut holder = Client::connect(&socket).unwrap();
    holder.send(&solve_request(&text, 42, 0)).unwrap();
    assert!(matches!(holder.recv().unwrap(), Response::Admitted));

    // Queued behind the holder with a 100 ms budget: deadline expires
    // long before the 800 ms hold releases the slot.
    let mut queued = Client::connect(&socket).unwrap();
    match queued.solve(&solve_request(&text, 43, 100), &mut |_| {}) {
        Err(ClientError::Remote(msg)) => {
            assert!(msg.contains("timed out"), "got: {msg}")
        }
        other => panic!("expected a timeout error, got {other:?}"),
    }

    loop {
        match holder.recv().unwrap() {
            Response::Note { .. } => {}
            Response::Report { .. } => break,
            other => panic!("unexpected frame {other:?}"),
        }
    }
    let mut client = Client::connect(&socket).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.queue_depth_high_water, 1);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn batch_request_matches_offline_document_shape() {
    let socket = unique_socket("batch");
    let (socket, handle) = start(ServeConfig::new(&socket));
    let text = sample_instance_text(11);

    let mut client = Client::connect(&socket).unwrap();
    let request = Request::Batch {
        instances: vec![("g.inst".into(), text.clone())],
        jobs: vec![mrlr_serve::protocol::BatchJob {
            algorithm: "matching".into(),
            mu_bits: 0.3f64.to_bits(),
            seed: 42,
            threads: None,
        }],
        backend: "mr".into(),
        render: RenderOpts {
            format: ReportFormat::Json,
            mask_timings: true,
            certificates_full: true,
        },
        timeout_millis: 0,
    };
    let mut notes = Vec::new();
    let served = client
        .solve(&request, &mut |line| notes.push(line.to_string()))
        .unwrap();
    assert!(
        notes.iter().any(|n| n.contains("instance 1/1")),
        "{notes:?}"
    );

    // The served document is a real batch document: it parses and its
    // single slot audits clean offline.
    let root = io::parse_json(&served.content).unwrap();
    assert!(io::is_batch_document(&root));
    let batch = io::parse_batch(&served.content).unwrap();
    assert_eq!(batch.instances, vec!["g.inst".to_string()]);
    let instance = io::parse_instance(&text).unwrap();
    match &batch.results[0][0] {
        io::BatchSlot::Report(stored) => {
            mrlr_core::api::witness::audit(
                &instance,
                &stored.algorithm,
                &stored.solution,
                &stored.claims,
                stored.witness.as_ref().unwrap(),
            )
            .unwrap();
        }
        io::BatchSlot::Error(e) => panic!("batch slot errored: {e}"),
    }

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}
