//! The client↔daemon wire protocol of `mrlr serve`.
//!
//! Every message is one length-prefixed frame (the dist transport's
//! framing: `u32` little-endian body length, then the body) whose body
//! is the [`Wire`] encoding of a [`Request`] or [`Response`] — a tag
//! byte followed by the fields' canonical encodings, exactly the
//! discipline of `mrlr_mapreduce::dist::wire::Frame`. Decoding is
//! total: unknown tags, truncation and trailing bytes all surface as a
//! [`mrlr_mapreduce::WireError`] carrying the byte offset at
//! which decoding gave up, and the proptest contract in
//! `tests/serve_wire.rs` pins that behaviour for every message kind.
//!
//! The conversation is strictly client-driven: the daemon only writes
//! in response to a request, and answers each request with zero or more
//! [`Response::Note`] progress frames followed by exactly one terminal
//! frame ([`Response::Report`], [`Response::VerifyOk`],
//! [`Response::Busy`], [`Response::Error`], [`Response::Pong`],
//! [`Response::Stats`] or [`Response::Bye`]). A solve that passes
//! admission control additionally announces [`Response::Admitted`]
//! before the solver runs, so clients (and the smoke tests) can
//! sequence concurrent requests deterministically.

use mrlr_mapreduce::dist::wire::{encode_value, Wire, WireError, WireReader};
use mrlr_mapreduce::ServeSummary;

/// Everything that identifies one solver run. Two concurrent
/// [`Request::Solve`]s with byte-identical [`SolveSpec`] encodings are
/// *coalesced*: the daemon runs the solver once and fans the shared
/// report out to every waiter. Rendering options deliberately live
/// outside the spec — waiters render their own view of the shared run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveSpec {
    /// Registry key of the algorithm.
    pub algorithm: String,
    /// Backend name, validated server-side against `Backend::ALL`.
    pub backend: String,
    /// The instance, in the unified `mrlr_core::io::instance` text
    /// format (canonical rendering, so identical instances coalesce).
    pub instance_text: String,
    /// Memory exponent `µ` as IEEE bits — bit-exact equality is what
    /// makes the coalescing key well defined.
    pub mu_bits: u64,
    /// Seed for all hash-derived randomness.
    pub seed: u64,
    /// Executor threads; `None` = daemon default (`MRLR_THREADS`).
    pub threads: Option<u64>,
    /// Machine-count override; `None` = auto-derived from the instance.
    pub machines: Option<u64>,
    /// Dist worker processes; `None` = default. Ignored off-dist.
    pub workers: Option<u64>,
}

impl SolveSpec {
    /// The memory exponent as a float.
    pub fn mu(&self) -> f64 {
        f64::from_bits(self.mu_bits)
    }

    /// The canonical encoding bytes — the daemon's coalescing key.
    pub fn coalesce_key(&self) -> Vec<u8> {
        encode_value(self)
    }
}

impl Wire for SolveSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.algorithm.encode(out);
        self.backend.encode(out);
        self.instance_text.encode(out);
        self.mu_bits.encode(out);
        self.seed.encode(out);
        self.threads.encode(out);
        self.machines.encode(out);
        self.workers.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SolveSpec {
            algorithm: String::decode(r)?,
            backend: String::decode(r)?,
            instance_text: String::decode(r)?,
            mu_bits: u64::decode(r)?,
            seed: u64::decode(r)?,
            threads: Option::<u64>::decode(r)?,
            machines: Option::<u64>::decode(r)?,
            workers: Option::<u64>::decode(r)?,
        })
    }
}

/// Which serialization the daemon renders a report in. Matches the
/// CLI's `--format` values so served output can be diffed byte-for-byte
/// against offline output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// `mrlr_core::io::report_text`.
    Text,
    /// `mrlr_core::io::report_json_with`.
    Json,
    /// CSV header + `mrlr_core::io::report_csv_row`.
    Csv,
}

impl Wire for ReportFormat {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ReportFormat::Text => 0,
            ReportFormat::Json => 1,
            ReportFormat::Csv => 2,
        });
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        match u8::decode(r)? {
            0 => Ok(ReportFormat::Text),
            1 => Ok(ReportFormat::Json),
            2 => Ok(ReportFormat::Csv),
            t => Err(WireError {
                offset: at,
                reason: format!("unknown report format tag {t:#04x}"),
            }),
        }
    }
}

/// How a terminal [`Response::Report`] document is rendered: the same
/// three switches the offline CLI exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderOpts {
    /// Output serialization.
    pub format: ReportFormat,
    /// Zero host wall-clock fields (`--mask-timings`) so the document
    /// is bit-identical across thread counts and to offline goldens.
    pub mask_timings: bool,
    /// Embed the full certificate witness (`--certificates full`).
    pub certificates_full: bool,
}

impl Wire for RenderOpts {
    fn encode(&self, out: &mut Vec<u8>) {
        self.format.encode(out);
        self.mask_timings.encode(out);
        self.certificates_full.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RenderOpts {
            format: ReportFormat::decode(r)?,
            mask_timings: bool::decode(r)?,
            certificates_full: bool::decode(r)?,
        })
    }
}

/// One job row of a [`Request::Batch`] — the wire projection of
/// `mrlr_core::io::JobSpec`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchJob {
    /// Registry key of the algorithm.
    pub algorithm: String,
    /// Memory exponent `µ` as IEEE bits.
    pub mu_bits: u64,
    /// Seed for all hash-derived randomness.
    pub seed: u64,
    /// Executor threads; `None` = daemon default.
    pub threads: Option<u64>,
}

impl Wire for BatchJob {
    fn encode(&self, out: &mut Vec<u8>) {
        self.algorithm.encode(out);
        self.mu_bits.encode(out);
        self.seed.encode(out);
        self.threads.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(BatchJob {
            algorithm: String::decode(r)?,
            mu_bits: u64::decode(r)?,
            seed: u64::decode(r)?,
            threads: Option::<u64>::decode(r)?,
        })
    }
}

/// Client → daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run one solver job (or join an identical in-flight run) and
    /// return the rendered report.
    Solve {
        /// The run identity (also the coalescing key).
        spec: SolveSpec,
        /// How to render the terminal report document.
        render: RenderOpts,
        /// Milliseconds this request will wait for admission or for a
        /// shared run to publish; `0` = the daemon's default budget.
        timeout_millis: u64,
    },
    /// Run a whole `instances × jobs` grid under one admission slot and
    /// return the rendered batch document.
    Batch {
        /// `(display path, instance text)` pairs; the path is echoed
        /// into the document exactly as a manifest path would be.
        instances: Vec<(String, String)>,
        /// The job rows, applied to every instance.
        jobs: Vec<BatchJob>,
        /// Backend name for all slots.
        backend: String,
        /// How to render the batch document (text is not supported).
        render: RenderOpts,
        /// Admission wait budget in milliseconds; `0` = daemon default.
        timeout_millis: u64,
    },
    /// Re-audit a stored report against its instance — the served
    /// equivalent of `mrlr verify <instance> <report.json>`.
    Verify {
        /// The instance, in the unified text format.
        instance_text: String,
        /// The stored report document (JSON).
        report_json: String,
    },
    /// Liveness probe; bypasses admission control.
    Ping {
        /// Echo value.
        nonce: u64,
    },
    /// Snapshot the daemon's counters; bypasses admission control.
    Stats,
    /// Graceful shutdown: stop accepting, drain in-flight work, reply
    /// [`Response::Bye`], remove the socket.
    Shutdown,
}

const REQ_SOLVE: u8 = 0;
const REQ_BATCH: u8 = 1;
const REQ_VERIFY: u8 = 2;
const REQ_PING: u8 = 3;
const REQ_STATS: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;

impl Wire for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Solve {
                spec,
                render,
                timeout_millis,
            } => {
                out.push(REQ_SOLVE);
                spec.encode(out);
                render.encode(out);
                timeout_millis.encode(out);
            }
            Request::Batch {
                instances,
                jobs,
                backend,
                render,
                timeout_millis,
            } => {
                out.push(REQ_BATCH);
                instances.encode(out);
                jobs.encode(out);
                backend.encode(out);
                render.encode(out);
                timeout_millis.encode(out);
            }
            Request::Verify {
                instance_text,
                report_json,
            } => {
                out.push(REQ_VERIFY);
                instance_text.encode(out);
                report_json.encode(out);
            }
            Request::Ping { nonce } => {
                out.push(REQ_PING);
                nonce.encode(out);
            }
            Request::Stats => out.push(REQ_STATS),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        let tag = u8::decode(r)?;
        match tag {
            REQ_SOLVE => Ok(Request::Solve {
                spec: SolveSpec::decode(r)?,
                render: RenderOpts::decode(r)?,
                timeout_millis: u64::decode(r)?,
            }),
            REQ_BATCH => Ok(Request::Batch {
                instances: Vec::<(String, String)>::decode(r)?,
                jobs: Vec::<BatchJob>::decode(r)?,
                backend: String::decode(r)?,
                render: RenderOpts::decode(r)?,
                timeout_millis: u64::decode(r)?,
            }),
            REQ_VERIFY => Ok(Request::Verify {
                instance_text: String::decode(r)?,
                report_json: String::decode(r)?,
            }),
            REQ_PING => Ok(Request::Ping {
                nonce: u64::decode(r)?,
            }),
            REQ_STATS => Ok(Request::Stats),
            REQ_SHUTDOWN => Ok(Request::Shutdown),
            t => Err(WireError {
                offset: at,
                reason: format!("unknown request tag {t:#04x}"),
            }),
        }
    }
}

/// A point-in-time snapshot of the daemon's counters — the wire
/// projection of [`ServeSummary`], answered to [`Request::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests accepted over the daemon's lifetime so far.
    pub requests: u64,
    /// Solver runs actually executed (coalesced waiters share one).
    pub solver_runs: u64,
    /// Requests that attached to an already-running identical solve.
    pub coalesce_hits: u64,
    /// Requests rejected with a [`Response::Busy`] frame.
    pub busy_rejects: u64,
    /// Requests that timed out waiting.
    pub timeouts: u64,
    /// High-water mark of concurrently admitted requests.
    pub inflight_high_water: u64,
    /// High-water mark of the admission wait queue.
    pub queue_depth_high_water: u64,
}

impl StatsSnapshot {
    /// The same counters as a [`ServeSummary`], ready to be stamped
    /// into a report's `Metrics` (where they are excluded from `Eq`).
    pub fn to_summary(self) -> ServeSummary {
        ServeSummary {
            requests: self.requests,
            solver_runs: self.solver_runs,
            coalesce_hits: self.coalesce_hits,
            busy_rejects: self.busy_rejects,
            timeouts: self.timeouts,
            inflight_high_water: self.inflight_high_water,
            queue_depth_high_water: self.queue_depth_high_water,
        }
    }
}

impl Wire for StatsSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.requests.encode(out);
        self.solver_runs.encode(out);
        self.coalesce_hits.encode(out);
        self.busy_rejects.encode(out);
        self.timeouts.encode(out);
        self.inflight_high_water.encode(out);
        self.queue_depth_high_water.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(StatsSnapshot {
            requests: u64::decode(r)?,
            solver_runs: u64::decode(r)?,
            coalesce_hits: u64::decode(r)?,
            busy_rejects: u64::decode(r)?,
            timeouts: u64::decode(r)?,
            inflight_high_water: u64::decode(r)?,
            queue_depth_high_water: u64::decode(r)?,
        })
    }
}

/// Daemon → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The solve passed admission control and the solver is about to
    /// run (coalesced waiters do not receive this — they never held a
    /// slot).
    Admitted,
    /// A host-level progress/annotation line; the CLI client prints
    /// these as `note: {line}` on stderr, exactly like offline solves.
    Note {
        /// The annotation text.
        line: String,
    },
    /// Terminal: the rendered report (or batch) document.
    Report {
        /// The complete rendered document, byte-identical to what the
        /// offline CLI would have written to stdout.
        content: String,
        /// True when this request shared another request's solver run.
        coalesced: bool,
    },
    /// Terminal: the stored report audited clean.
    VerifyOk {
        /// Audited algorithm key.
        algorithm: String,
        /// Audited backend tag.
        backend: String,
        /// One description per passed check.
        checks: Vec<String>,
    },
    /// Terminal: admission control rejected the request outright — the
    /// in-flight limit is reached and the wait queue is full.
    Busy {
        /// Requests currently holding admission slots.
        in_flight: u64,
        /// Requests currently queued for admission.
        queued: u64,
        /// The daemon's in-flight slot limit.
        limit: u64,
    },
    /// Terminal: the request failed (parse error, solver error, timeout,
    /// failed audit, shutdown in progress).
    Error {
        /// What went wrong.
        message: String,
    },
    /// Terminal: liveness reply echoing the probe's nonce.
    Pong {
        /// Echoed value.
        nonce: u64,
    },
    /// Terminal: the daemon's counters.
    Stats {
        /// The snapshot.
        stats: StatsSnapshot,
    },
    /// Terminal: shutdown acknowledged; the daemon is draining.
    Bye,
}

const RSP_ADMITTED: u8 = 0;
const RSP_NOTE: u8 = 1;
const RSP_REPORT: u8 = 2;
const RSP_VERIFY_OK: u8 = 3;
const RSP_BUSY: u8 = 4;
const RSP_ERROR: u8 = 5;
const RSP_PONG: u8 = 6;
const RSP_STATS: u8 = 7;
const RSP_BYE: u8 = 8;

impl Wire for Response {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Admitted => out.push(RSP_ADMITTED),
            Response::Note { line } => {
                out.push(RSP_NOTE);
                line.encode(out);
            }
            Response::Report { content, coalesced } => {
                out.push(RSP_REPORT);
                content.encode(out);
                coalesced.encode(out);
            }
            Response::VerifyOk {
                algorithm,
                backend,
                checks,
            } => {
                out.push(RSP_VERIFY_OK);
                algorithm.encode(out);
                backend.encode(out);
                checks.encode(out);
            }
            Response::Busy {
                in_flight,
                queued,
                limit,
            } => {
                out.push(RSP_BUSY);
                in_flight.encode(out);
                queued.encode(out);
                limit.encode(out);
            }
            Response::Error { message } => {
                out.push(RSP_ERROR);
                message.encode(out);
            }
            Response::Pong { nonce } => {
                out.push(RSP_PONG);
                nonce.encode(out);
            }
            Response::Stats { stats } => {
                out.push(RSP_STATS);
                stats.encode(out);
            }
            Response::Bye => out.push(RSP_BYE),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        let tag = u8::decode(r)?;
        match tag {
            RSP_ADMITTED => Ok(Response::Admitted),
            RSP_NOTE => Ok(Response::Note {
                line: String::decode(r)?,
            }),
            RSP_REPORT => Ok(Response::Report {
                content: String::decode(r)?,
                coalesced: bool::decode(r)?,
            }),
            RSP_VERIFY_OK => Ok(Response::VerifyOk {
                algorithm: String::decode(r)?,
                backend: String::decode(r)?,
                checks: Vec::<String>::decode(r)?,
            }),
            RSP_BUSY => Ok(Response::Busy {
                in_flight: u64::decode(r)?,
                queued: u64::decode(r)?,
                limit: u64::decode(r)?,
            }),
            RSP_ERROR => Ok(Response::Error {
                message: String::decode(r)?,
            }),
            RSP_PONG => Ok(Response::Pong {
                nonce: u64::decode(r)?,
            }),
            RSP_STATS => Ok(Response::Stats {
                stats: StatsSnapshot::decode(r)?,
            }),
            RSP_BYE => Ok(Response::Bye),
            t => Err(WireError {
                offset: at,
                reason: format!("unknown response tag {t:#04x}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrlr_mapreduce::dist::wire::decode_value;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_value(&value);
        assert_eq!(decode_value::<T>(&bytes).unwrap(), value);
    }

    fn sample_spec() -> SolveSpec {
        SolveSpec {
            algorithm: "matching".into(),
            backend: "mr".into(),
            instance_text: "p graph 2 1\ne 0 1 1.0\n".into(),
            mu_bits: 0.3f64.to_bits(),
            seed: 42,
            threads: Some(4),
            machines: None,
            workers: None,
        }
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Request::Solve {
            spec: sample_spec(),
            render: RenderOpts {
                format: ReportFormat::Json,
                mask_timings: true,
                certificates_full: true,
            },
            timeout_millis: 0,
        });
        round_trip(Request::Batch {
            instances: vec![("a.inst".into(), "text".into())],
            jobs: vec![BatchJob {
                algorithm: "mis".into(),
                mu_bits: 0.25f64.to_bits(),
                seed: 7,
                threads: None,
            }],
            backend: "shard".into(),
            render: RenderOpts {
                format: ReportFormat::Csv,
                mask_timings: false,
                certificates_full: false,
            },
            timeout_millis: 500,
        });
        round_trip(Request::Verify {
            instance_text: "i".into(),
            report_json: "{}".into(),
        });
        round_trip(Request::Ping { nonce: 99 });
        round_trip(Request::Stats);
        round_trip(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        round_trip(Response::Admitted);
        round_trip(Response::Note { line: "hi".into() });
        round_trip(Response::Report {
            content: "{}".into(),
            coalesced: true,
        });
        round_trip(Response::VerifyOk {
            algorithm: "matching".into(),
            backend: "dist".into(),
            checks: vec!["feasible".into()],
        });
        round_trip(Response::Busy {
            in_flight: 1,
            queued: 0,
            limit: 1,
        });
        round_trip(Response::Error {
            message: "nope".into(),
        });
        round_trip(Response::Pong { nonce: 99 });
        round_trip(Response::Stats {
            stats: StatsSnapshot {
                requests: 1,
                solver_runs: 2,
                coalesce_hits: 3,
                busy_rejects: 4,
                timeouts: 5,
                inflight_high_water: 6,
                queue_depth_high_water: 7,
            },
        });
        round_trip(Response::Bye);
    }

    #[test]
    fn identical_specs_share_a_coalescing_key() {
        assert_eq!(sample_spec().coalesce_key(), sample_spec().coalesce_key());
        let mut other = sample_spec();
        other.seed = 43;
        assert_ne!(sample_spec().coalesce_key(), other.coalesce_key());
    }

    #[test]
    fn unknown_tags_are_rejected_with_offset() {
        let err = decode_value::<Request>(&[0xEE]).unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.reason.contains("unknown request tag"), "{err}");
        let err = decode_value::<Response>(&[0xEE]).unwrap_err();
        assert!(err.reason.contains("unknown response tag"), "{err}");
        let err = decode_value::<ReportFormat>(&[9]).unwrap_err();
        assert!(err.reason.contains("report format"), "{err}");
    }

    #[test]
    fn stats_snapshot_projects_to_serve_summary() {
        let s = StatsSnapshot {
            requests: 10,
            coalesce_hits: 4,
            queue_depth_high_water: 3,
            ..StatsSnapshot::default()
        };
        let summary = s.to_summary();
        assert_eq!(summary.requests, 10);
        assert_eq!(summary.coalesce_hits, 4);
        assert_eq!(summary.queue_depth_high_water, 3);
    }
}
