//! Blocking client for the `mrlr serve` protocol.
//!
//! A [`Client`] wraps one Unix-stream connection and drives the
//! request/response conversation: send a request frame, consume
//! [`Response::Admitted`] / [`Response::Note`] progress frames (notes
//! go to a caller-supplied sink, which the CLI prints as `note:` lines
//! on stderr), and return the terminal frame. Overload is a typed
//! outcome — [`ClientError::Busy`] — never a hang.

use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

use mrlr_mapreduce::dist::transport::{read_wire_frame, write_wire_frame};

use crate::protocol::{Request, Response, StatsSnapshot};

/// Why a request did not produce its terminal document.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (daemon gone, malformed frame).
    Io(io::Error),
    /// Admission control rejected the request: the daemon is at its
    /// in-flight limit and the wait queue is full.
    Busy {
        /// Requests holding slots when the rejection was issued.
        in_flight: u64,
        /// Requests queued when the rejection was issued.
        queued: u64,
        /// The daemon's in-flight slot limit.
        limit: u64,
    },
    /// The daemon answered with an error frame (parse/solver/audit
    /// failure, timeout, shutdown in progress).
    Remote(String),
    /// The daemon answered with a frame the conversation does not
    /// allow at this point.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Busy {
                in_flight,
                queued,
                limit,
            } => write!(
                f,
                "busy: {in_flight} in flight, {queued} queued (limit {limit})"
            ),
            ClientError::Remote(m) => write!(f, "{m}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A served report document plus how it was produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Served {
    /// The rendered document, byte-identical to offline CLI output.
    pub content: String,
    /// True when the daemon coalesced this request onto another
    /// request's solver run.
    pub coalesced: bool,
}

/// One connection to a `mrlr serve` daemon.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to the daemon's socket.
    pub fn connect(socket: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(socket)?,
        })
    }

    /// Sends one raw request frame.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        write_wire_frame(&mut self.stream, request)
    }

    /// Reads one raw response frame.
    pub fn recv(&mut self) -> io::Result<Response> {
        read_wire_frame(&mut self.stream)
    }

    /// Sends `request` and drives the conversation to its terminal
    /// frame, feeding every note line to `notes`.
    fn roundtrip(
        &mut self,
        request: &Request,
        notes: &mut dyn FnMut(&str),
    ) -> Result<Response, ClientError> {
        self.send(request)?;
        loop {
            match self.recv()? {
                Response::Admitted => {}
                Response::Note { line } => notes(&line),
                Response::Busy {
                    in_flight,
                    queued,
                    limit,
                } => {
                    return Err(ClientError::Busy {
                        in_flight,
                        queued,
                        limit,
                    })
                }
                Response::Error { message } => return Err(ClientError::Remote(message)),
                terminal => return Ok(terminal),
            }
        }
    }

    /// Runs a solve (or batch) request to completion and returns the
    /// rendered document.
    pub fn solve(
        &mut self,
        request: &Request,
        notes: &mut dyn FnMut(&str),
    ) -> Result<Served, ClientError> {
        match self.roundtrip(request, notes)? {
            Response::Report { content, coalesced } => Ok(Served { content, coalesced }),
            other => Err(ClientError::Protocol(format!(
                "expected a report frame, got {other:?}"
            ))),
        }
    }

    /// Audits a stored report on the daemon; returns `(algorithm,
    /// backend, check descriptions)` on a clean audit.
    pub fn verify(
        &mut self,
        instance_text: String,
        report_json: String,
    ) -> Result<(String, String, Vec<String>), ClientError> {
        let request = Request::Verify {
            instance_text,
            report_json,
        };
        match self.roundtrip(&request, &mut |_| {})? {
            Response::VerifyOk {
                algorithm,
                backend,
                checks,
            } => Ok((algorithm, backend, checks)),
            other => Err(ClientError::Protocol(format!(
                "expected a verify frame, got {other:?}"
            ))),
        }
    }

    /// Liveness probe; returns the echoed nonce.
    pub fn ping(&mut self, nonce: u64) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Ping { nonce }, &mut |_| {})? {
            Response::Pong { nonce } => Ok(nonce),
            other => Err(ClientError::Protocol(format!(
                "expected a pong frame, got {other:?}"
            ))),
        }
    }

    /// Snapshots the daemon's counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.roundtrip(&Request::Stats, &mut |_| {})? {
            Response::Stats { stats } => Ok(stats),
            other => Err(ClientError::Protocol(format!(
                "expected a stats frame, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to drain and exit. Returns once the daemon has
    /// acknowledged with its farewell frame.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown, &mut |_| {})? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected a bye frame, got {other:?}"
            ))),
        }
    }
}
