//! # mrlr-serve — the persistent solver service
//!
//! The paper's algorithms are round-efficient precisely so they can run
//! as a *shared service* over big inputs; this crate is that service. A
//! long-running daemon ([`server::serve`]) listens on a Unix socket,
//! keeps thread pools and distribution snapshots warm across requests,
//! and answers `solve` / `batch` / `verify` requests whose rendered
//! documents are **byte-identical** to the offline `mrlr` CLI's output
//! (masked timings) — the CI serve-smoke job diffs them against the
//! same golden files.
//!
//! The shared-cluster budget of the MRC model shows up here as
//! *admission control*: a bounded in-flight set plus a bounded wait
//! queue, with overload answered by an explicit `Busy` frame and every
//! wait bounded by a per-request deadline. Identical concurrent solves
//! — same `(instance, key, cfg, backend)` — are *coalesced* onto one
//! solver run whose bit-identical report fans out to every waiter.
//!
//! * [`protocol`] — the tagged request/response wire frames (dist wire
//!   discipline: canonical little-endian encodings, offset-exact decode
//!   errors, proptest contract in `tests/serve_wire.rs`).
//! * [`server`] — the daemon: admission gate, coalescer, warm registry
//!   execution, graceful drain.
//! * [`client`] — the blocking client the `mrlr client` subcommands and
//!   the `bench_serve` load generator drive.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, Served};
pub use protocol::{
    BatchJob, RenderOpts, ReportFormat, Request, Response, SolveSpec, StatsSnapshot,
};
pub use server::{serve, ServeConfig};
