//! The `mrlr serve` daemon: a Unix-socket listener that keeps solver
//! infrastructure warm across requests.
//!
//! Three mechanisms sit between `accept()` and the registry:
//!
//! * **Admission control** (`Gate`): at most `max_inflight` requests
//!   hold solver slots concurrently; up to `queue` more wait (bounded,
//!   with a per-request deadline). When both are full the daemon
//!   answers [`Response::Busy`] *immediately* — overload is an explicit
//!   frame, never a hang.
//! * **Request coalescing** (`Coalescer`): concurrent solves with
//!   byte-identical [`SolveSpec`] encodings share one solver run. The
//!   first arrival becomes the *runner* (and pays admission); later
//!   arrivals attach as *waiters*, consume no slot, and receive the
//!   same bit-identical `Report` the runner produced — each waiter
//!   renders its own view of the shared run.
//! * **Warm execution**: every solve routes through
//!   `Registry::solve_batch_with`, which resolves thread pools from the
//!   process-wide executor cache and opens the batch-scoped
//!   `dist_cache` around each instance — repeated shapes reuse warmed
//!   pools and per-machine distribution snapshots exactly as `mrlr
//!   batch` does offline.
//!
//! Shutdown is graceful: a [`Request::Shutdown`] flips the drain flag
//! (queued and future requests are rejected with an error frame),
//! in-flight work completes, every connection thread is joined, and the
//! socket file is removed — no orphan connections, and under
//! `SpawnKind::Process` no orphan dist workers (worker children are
//! killed and reaped by `DistSession`'s `Drop` when each solve ends).

use std::collections::HashMap;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mrlr_core::api::{witness, Backend, Instance, Registry, Report, Solution};
use mrlr_core::io::{self as core_io, CertificateMode, TimingMode};
use mrlr_core::mr::MrConfig;
use mrlr_mapreduce::dist::transport::{write_wire_frame, MAX_FRAME};
use mrlr_mapreduce::dist::wire::decode_value;
use mrlr_mapreduce::{SpawnKind, Timeline};

use crate::protocol::{
    BatchJob, RenderOpts, ReportFormat, Request, Response, SolveSpec, StatsSnapshot,
};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Path of the Unix socket to listen on (a stale file is replaced).
    pub socket: PathBuf,
    /// Admission slots: requests solving concurrently.
    pub max_inflight: usize,
    /// Bounded admission wait queue; a request arriving when both the
    /// slots and the queue are full is rejected with `Busy`.
    pub queue: usize,
    /// Default per-request wait budget (admission + shared-run wait)
    /// for requests that do not set their own `timeout_millis`.
    pub timeout: Duration,
    /// Test/bench hook: after computing a result the runner holds its
    /// admission slot (and its coalescing entry) for this long before
    /// publishing — makes coalesced pairs and `Busy` rejections
    /// deterministic to provoke. Zero in production.
    pub hold: Duration,
    /// How dist-backend solves spawn workers. The CLI daemon uses
    /// `Process` (real worker processes, reaped per solve); in-process
    /// embeddings and tests keep the default `Thread`.
    pub dist_spawn: SpawnKind,
}

impl ServeConfig {
    /// A daemon on `socket` with production defaults: 2 slots, 4 queue
    /// entries, 30 s budget, no hold, thread-spawned dist workers.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            max_inflight: 2,
            queue: 4,
            timeout: Duration::from_secs(30),
            hold: Duration::ZERO,
            dist_spawn: SpawnKind::Thread,
        }
    }
}

// ------------------------------------------------------------- counters --

#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    solver_runs: AtomicU64,
    coalesce_hits: AtomicU64,
    busy_rejects: AtomicU64,
    timeouts: AtomicU64,
    inflight_high_water: AtomicU64,
    queue_depth_high_water: AtomicU64,
}

impl Stats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn high_water(counter: &AtomicU64, depth: usize) {
        counter.fetch_max(depth as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            solver_runs: self.solver_runs.load(Ordering::Relaxed),
            coalesce_hits: self.coalesce_hits.load(Ordering::Relaxed),
            busy_rejects: self.busy_rejects.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            inflight_high_water: self.inflight_high_water.load(Ordering::Relaxed),
            queue_depth_high_water: self.queue_depth_high_water.load(Ordering::Relaxed),
        }
    }
}

// ------------------------------------------------------ admission gate --

struct GateState {
    active: usize,
    queued: usize,
    draining: bool,
}

/// Bounded in-flight slots plus a bounded wait queue over a condvar.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    max_inflight: usize,
    queue: usize,
}

enum Admission {
    Admitted,
    Busy { in_flight: usize, queued: usize },
    TimedOut,
    Draining,
}

impl Gate {
    fn new(max_inflight: usize, queue: usize) -> Self {
        Gate {
            state: Mutex::new(GateState {
                active: 0,
                queued: 0,
                draining: false,
            }),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue,
        }
    }

    fn acquire(&self, timeout: Duration, stats: &Stats) -> Admission {
        let mut s = self.state.lock().expect("gate poisoned");
        if s.draining {
            return Admission::Draining;
        }
        if s.active < self.max_inflight {
            s.active += 1;
            Stats::high_water(&stats.inflight_high_water, s.active);
            return Admission::Admitted;
        }
        if s.queued >= self.queue {
            return Admission::Busy {
                in_flight: s.active,
                queued: s.queued,
            };
        }
        s.queued += 1;
        Stats::high_water(&stats.queue_depth_high_water, s.queued);
        let deadline = Instant::now() + timeout;
        loop {
            if s.draining {
                s.queued -= 1;
                return Admission::Draining;
            }
            if s.active < self.max_inflight {
                s.queued -= 1;
                s.active += 1;
                Stats::high_water(&stats.inflight_high_water, s.active);
                return Admission::Admitted;
            }
            let now = Instant::now();
            if now >= deadline {
                s.queued -= 1;
                return Admission::TimedOut;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(s, deadline - now)
                .expect("gate poisoned");
            s = guard;
        }
    }

    fn release(&self) {
        let mut s = self.state.lock().expect("gate poisoned");
        s.active -= 1;
        drop(s);
        self.cv.notify_all();
    }

    fn drain(&self) {
        let mut s = self.state.lock().expect("gate poisoned");
        s.draining = true;
        drop(s);
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------- coalescing --

/// Outcome of one (possibly shared) solver run.
#[derive(Clone)]
enum RunOutcome {
    /// The run completed; the report fans out to every attached waiter.
    Done(Arc<Report<Solution>>),
    /// The run failed (admission rejection, parse or solver error); the
    /// message fans out instead.
    Failed(String),
}

/// One in-flight coalesced run: the runner publishes here, waiters park
/// on the condvar.
struct Job {
    slot: Mutex<Option<RunOutcome>>,
    cv: Condvar,
}

impl Job {
    fn new() -> Self {
        Job {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, outcome: RunOutcome) {
        let mut slot = self.slot.lock().expect("job poisoned");
        *slot = Some(outcome);
        drop(slot);
        self.cv.notify_all();
    }

    fn wait(&self, timeout: Duration) -> Option<RunOutcome> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.slot.lock().expect("job poisoned");
        loop {
            if let Some(outcome) = slot.as_ref() {
                return Some(outcome.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(slot, deadline - now)
                .expect("job poisoned");
            slot = guard;
        }
    }
}

enum Ticket {
    /// First arrival for this key: run the solver and publish.
    Runner(Arc<Job>),
    /// An identical run is in flight: park and share its outcome.
    Waiter(Arc<Job>),
}

/// The in-flight run table, keyed by canonical [`SolveSpec`] bytes.
struct Coalescer {
    jobs: Mutex<HashMap<Vec<u8>, Arc<Job>>>,
}

impl Coalescer {
    fn new() -> Self {
        Coalescer {
            jobs: Mutex::new(HashMap::new()),
        }
    }

    fn join(&self, key: &[u8]) -> Ticket {
        let mut jobs = self.jobs.lock().expect("coalescer poisoned");
        if let Some(job) = jobs.get(key) {
            Ticket::Waiter(Arc::clone(job))
        } else {
            let job = Arc::new(Job::new());
            jobs.insert(key.to_vec(), Arc::clone(&job));
            Ticket::Runner(job)
        }
    }

    /// Publishes the runner's outcome and retires the key — later
    /// identical requests start a fresh run.
    fn publish(&self, key: &[u8], job: &Job, outcome: RunOutcome) {
        job.publish(outcome);
        self.jobs.lock().expect("coalescer poisoned").remove(key);
    }
}

// -------------------------------------------------------------- engine --

/// Bounded cache of parsed instances keyed by their exact text, so a
/// hot instance is parsed once across requests (the per-request
/// `dist_cache` scope then shares distribution snapshots *within* each
/// run). Cleared wholesale when it outgrows its cap — correctness never
/// depends on a hit.
struct ParseCache {
    map: Mutex<HashMap<String, Arc<Instance>>>,
}

const PARSE_CACHE_CAP: usize = 64;

impl ParseCache {
    fn new() -> Self {
        ParseCache {
            map: Mutex::new(HashMap::new()),
        }
    }

    fn get_or_parse(&self, text: &str) -> Result<Arc<Instance>, String> {
        if let Some(hit) = self.map.lock().expect("cache poisoned").get(text) {
            return Ok(Arc::clone(hit));
        }
        let parsed = Arc::new(core_io::parse_instance(text).map_err(|e| e.to_string())?);
        let mut map = self.map.lock().expect("cache poisoned");
        if map.len() >= PARSE_CACHE_CAP {
            map.clear();
        }
        map.insert(text.to_string(), Arc::clone(&parsed));
        Ok(parsed)
    }
}

struct Engine {
    cfg: ServeConfig,
    registry: Registry,
    gate: Gate,
    coalescer: Coalescer,
    parse_cache: ParseCache,
    stats: Stats,
    shutdown: AtomicBool,
}

/// What a connection thread tells the accept loop after each request.
enum Flow {
    Continue,
    Hangup,
}

impl Engine {
    fn new(cfg: ServeConfig) -> Self {
        let gate = Gate::new(cfg.max_inflight, cfg.queue);
        Engine {
            registry: Registry::with_defaults(),
            gate,
            coalescer: Coalescer::new(),
            parse_cache: ParseCache::new(),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            cfg,
        }
    }

    fn budget(&self, timeout_millis: u64) -> Duration {
        if timeout_millis == 0 {
            self.cfg.timeout
        } else {
            Duration::from_millis(timeout_millis)
        }
    }

    fn parse_backend(&self, name: &str) -> Result<Backend, String> {
        Backend::ALL
            .into_iter()
            .find(|b| b.to_string() == name)
            .ok_or_else(|| {
                let names: Vec<String> = Backend::ALL.iter().map(Backend::to_string).collect();
                format!(
                    "unknown backend `{name}` (expected one of: {})",
                    names.join(", ")
                )
            })
    }

    #[allow(clippy::too_many_arguments)]
    fn job_cfg(
        &self,
        instance: &Instance,
        backend: Backend,
        mu: f64,
        seed: u64,
        threads: Option<u64>,
        machines: Option<u64>,
        workers: Option<u64>,
    ) -> Result<MrConfig, String> {
        if !(mu.is_finite() && mu > 0.0) {
            return Err(format!("mu must be positive and finite (got {mu})"));
        }
        let mut cfg = instance.auto_config(mu, seed);
        if let Some(t) = threads {
            cfg = cfg.with_threads(t as usize);
        }
        if let Some(m) = machines {
            cfg = cfg.with_machines(m as usize);
        }
        if backend == Backend::Dist {
            cfg = cfg.with_spawn(self.cfg.dist_spawn);
            if let Some(w) = workers {
                cfg = cfg.with_workers(w as usize);
            }
        }
        Ok(cfg)
    }

    /// Runs one solve on warm infrastructure: the single-job batch path
    /// resolves pooled executors and opens the `dist_cache` scope, so a
    /// served solve shares exactly the machinery of `mrlr batch`.
    fn run_solve(&self, spec: &SolveSpec) -> RunOutcome {
        let backend = match self.parse_backend(&spec.backend) {
            Ok(b) => b,
            Err(e) => return RunOutcome::Failed(e),
        };
        let instance = match self.parse_cache.get_or_parse(&spec.instance_text) {
            Ok(i) => i,
            Err(e) => return RunOutcome::Failed(format!("instance: {e}")),
        };
        let cfg = match self.job_cfg(
            &instance,
            backend,
            spec.mu(),
            spec.seed,
            spec.threads,
            spec.machines,
            spec.workers,
        ) {
            Ok(c) => c,
            Err(e) => return RunOutcome::Failed(e),
        };
        Stats::bump(&self.stats.solver_runs);
        let jobs = [(spec.algorithm.as_str(), cfg)];
        let slot = self
            .registry
            .solve_batch_with(backend, std::slice::from_ref(&*instance), &jobs)
            .remove(0)
            .remove(0);
        match slot {
            Ok(report) => RunOutcome::Done(Arc::new(report)),
            Err(e) => RunOutcome::Failed(e.to_string()),
        }
    }

    fn render_report(&self, report: &Report<Solution>, render: RenderOpts) -> String {
        let timing = if render.mask_timings {
            TimingMode::Masked
        } else {
            TimingMode::Real
        };
        let certificates = if render.certificates_full {
            CertificateMode::Full
        } else {
            CertificateMode::Summary
        };
        match render.format {
            ReportFormat::Json => core_io::report_json_with(report, timing, certificates).render(),
            ReportFormat::Csv => format!(
                "{}\n{}\n",
                core_io::REPORT_CSV_HEADER,
                core_io::report_csv_row(report, timing)
            ),
            ReportFormat::Text => core_io::report_text(report, timing),
        }
    }

    /// Host-event annotation lines for a served report: the offline
    /// ones (dist recoveries) plus the serve counters, stamped through
    /// [`mrlr_mapreduce::ServeSummary`] so they ride the same
    /// `Timeline` pathway — and stay out of the rendered document.
    fn notes_for(&self, report: &Report<Solution>) -> Vec<String> {
        let Some(metrics) = report.metrics.as_ref() else {
            return Vec::new();
        };
        let mut stamped = metrics.clone();
        stamped.serve = Some(self.stats.snapshot().to_summary());
        Timeline::from_metrics(&stamped).annotations().to_vec()
    }

    fn handle_solve(
        &self,
        stream: &mut UnixStream,
        spec: &SolveSpec,
        render: RenderOpts,
        timeout_millis: u64,
    ) -> io::Result<()> {
        Stats::bump(&self.stats.requests);
        let budget = self.budget(timeout_millis);
        let key = spec.coalesce_key();
        match self.coalescer.join(&key) {
            Ticket::Waiter(job) => {
                Stats::bump(&self.stats.coalesce_hits);
                match job.wait(budget) {
                    Some(RunOutcome::Done(report)) => {
                        for line in self.notes_for(&report) {
                            write_wire_frame(stream, &Response::Note { line })?;
                        }
                        let content = self.render_report(&report, render);
                        write_wire_frame(
                            stream,
                            &Response::Report {
                                content,
                                coalesced: true,
                            },
                        )
                    }
                    Some(RunOutcome::Failed(message)) => {
                        write_wire_frame(stream, &Response::Error { message })
                    }
                    None => {
                        Stats::bump(&self.stats.timeouts);
                        write_wire_frame(
                            stream,
                            &Response::Error {
                                message: format!(
                                    "timed out after {budget:?} waiting for the shared run"
                                ),
                            },
                        )
                    }
                }
            }
            Ticket::Runner(job) => match self.gate.acquire(budget, &self.stats) {
                Admission::Admitted => {
                    write_wire_frame(stream, &Response::Admitted)?;
                    let outcome = self.run_solve(spec);
                    if !self.cfg.hold.is_zero() {
                        // Keep the slot and the coalescing entry alive so
                        // tests can provoke Busy/coalesced paths on cue.
                        std::thread::sleep(self.cfg.hold);
                    }
                    self.coalescer.publish(&key, &job, outcome.clone());
                    self.gate.release();
                    match outcome {
                        RunOutcome::Done(report) => {
                            for line in self.notes_for(&report) {
                                write_wire_frame(stream, &Response::Note { line })?;
                            }
                            let content = self.render_report(&report, render);
                            write_wire_frame(
                                stream,
                                &Response::Report {
                                    content,
                                    coalesced: false,
                                },
                            )
                        }
                        RunOutcome::Failed(message) => {
                            write_wire_frame(stream, &Response::Error { message })
                        }
                    }
                }
                Admission::Busy { in_flight, queued } => {
                    Stats::bump(&self.stats.busy_rejects);
                    self.coalescer.publish(
                        &key,
                        &job,
                        RunOutcome::Failed("rejected: daemon busy".to_string()),
                    );
                    write_wire_frame(
                        stream,
                        &Response::Busy {
                            in_flight: in_flight as u64,
                            queued: queued as u64,
                            limit: self.gate.max_inflight as u64,
                        },
                    )
                }
                Admission::TimedOut => {
                    Stats::bump(&self.stats.timeouts);
                    self.coalescer.publish(
                        &key,
                        &job,
                        RunOutcome::Failed("rejected: admission timed out".to_string()),
                    );
                    write_wire_frame(
                        stream,
                        &Response::Error {
                            message: format!("timed out after {budget:?} waiting for admission"),
                        },
                    )
                }
                Admission::Draining => {
                    self.coalescer.publish(
                        &key,
                        &job,
                        RunOutcome::Failed("rejected: daemon shutting down".to_string()),
                    );
                    write_wire_frame(
                        stream,
                        &Response::Error {
                            message: "daemon is shutting down".to_string(),
                        },
                    )
                }
            },
        }
    }

    fn handle_batch(
        &self,
        stream: &mut UnixStream,
        instances: &[(String, String)],
        jobs: &[BatchJob],
        backend_name: &str,
        render: RenderOpts,
        timeout_millis: u64,
    ) -> io::Result<()> {
        Stats::bump(&self.stats.requests);
        let budget = self.budget(timeout_millis);
        match self.gate.acquire(budget, &self.stats) {
            Admission::Busy { in_flight, queued } => {
                Stats::bump(&self.stats.busy_rejects);
                return write_wire_frame(
                    stream,
                    &Response::Busy {
                        in_flight: in_flight as u64,
                        queued: queued as u64,
                        limit: self.gate.max_inflight as u64,
                    },
                );
            }
            Admission::TimedOut => {
                Stats::bump(&self.stats.timeouts);
                return write_wire_frame(
                    stream,
                    &Response::Error {
                        message: format!("timed out after {budget:?} waiting for admission"),
                    },
                );
            }
            Admission::Draining => {
                return write_wire_frame(
                    stream,
                    &Response::Error {
                        message: "daemon is shutting down".to_string(),
                    },
                );
            }
            Admission::Admitted => {}
        }
        write_wire_frame(stream, &Response::Admitted)?;
        let result = self.run_batch(stream, instances, jobs, backend_name, render);
        self.gate.release();
        match result {
            Ok(Ok(content)) => write_wire_frame(
                stream,
                &Response::Report {
                    content,
                    coalesced: false,
                },
            ),
            Ok(Err(message)) => write_wire_frame(stream, &Response::Error { message }),
            Err(io_err) => Err(io_err),
        }
    }

    /// The grid run behind a batch request. The outer `Result` is a
    /// transport failure (connection gone mid-stream); the inner one is
    /// a request failure reported back as an error frame.
    fn run_batch(
        &self,
        stream: &mut UnixStream,
        instances: &[(String, String)],
        jobs: &[BatchJob],
        backend_name: &str,
        render: RenderOpts,
    ) -> io::Result<Result<String, String>> {
        let backend = match self.parse_backend(backend_name) {
            Ok(b) => b,
            Err(e) => return Ok(Err(e)),
        };
        if matches!(render.format, ReportFormat::Text) {
            return Ok(Err(
                "batch documents render as json or csv, not text".to_string()
            ));
        }
        let mut parsed: Vec<Arc<Instance>> = Vec::with_capacity(instances.len());
        for (path, text) in instances {
            match self.parse_cache.get_or_parse(text) {
                Ok(i) => parsed.push(i),
                Err(e) => return Ok(Err(format!("{path}: {e}"))),
            }
        }
        let specs: Vec<core_io::JobSpec> = jobs
            .iter()
            .map(|j| core_io::JobSpec {
                algorithm: j.algorithm.clone(),
                mu: f64::from_bits(j.mu_bits),
                seed: j.seed,
                threads: j.threads.map(|t| t as usize),
            })
            .collect();
        // One solve_batch per instance, like the offline CLI: shapes are
        // auto-derived per instance and the batch scope amortizes
        // executor warm-up and distribution snapshots across its jobs.
        let mut results: core_io::BatchResults = Vec::with_capacity(parsed.len());
        for (idx, instance) in parsed.iter().enumerate() {
            let mut cfgs: Vec<(&str, MrConfig)> = Vec::with_capacity(specs.len());
            for spec in &specs {
                match self.job_cfg(
                    instance,
                    backend,
                    spec.mu,
                    spec.seed,
                    spec.threads.map(|t| t as u64),
                    None,
                    None,
                ) {
                    Ok(cfg) => cfgs.push((spec.algorithm.as_str(), cfg)),
                    Err(e) => return Ok(Err(format!("{}: {e}", instances[idx].0))),
                }
            }
            Stats::bump(&self.stats.solver_runs);
            let rows = self
                .registry
                .solve_batch_with(backend, std::slice::from_ref(&**instance), &cfgs)
                .remove(0)
                .into_iter()
                .map(|slot| slot.map_err(|e| e.to_string()))
                .collect();
            results.push(rows);
            write_wire_frame(
                stream,
                &Response::Note {
                    line: format!(
                        "batch: instance {}/{} ({}) done",
                        idx + 1,
                        parsed.len(),
                        instances[idx].0
                    ),
                },
            )?;
        }
        let timing = if render.mask_timings {
            TimingMode::Masked
        } else {
            TimingMode::Real
        };
        let certificates = if render.certificates_full {
            CertificateMode::Full
        } else {
            CertificateMode::Summary
        };
        let paths: Vec<String> = instances.iter().map(|(p, _)| p.clone()).collect();
        let content = match render.format {
            ReportFormat::Json => {
                core_io::batch_json(&paths, &specs, &results, timing, certificates).render()
            }
            ReportFormat::Csv => core_io::batch_csv(&paths, &specs, &results, timing),
            ReportFormat::Text => unreachable!("rejected above"),
        };
        Ok(Ok(content))
    }

    fn handle_verify(
        &self,
        stream: &mut UnixStream,
        instance_text: &str,
        report_json: &str,
    ) -> io::Result<()> {
        Stats::bump(&self.stats.requests);
        match self.gate.acquire(self.cfg.timeout, &self.stats) {
            Admission::Busy { in_flight, queued } => {
                Stats::bump(&self.stats.busy_rejects);
                return write_wire_frame(
                    stream,
                    &Response::Busy {
                        in_flight: in_flight as u64,
                        queued: queued as u64,
                        limit: self.gate.max_inflight as u64,
                    },
                );
            }
            Admission::TimedOut => {
                Stats::bump(&self.stats.timeouts);
                return write_wire_frame(
                    stream,
                    &Response::Error {
                        message: "timed out waiting for admission".to_string(),
                    },
                );
            }
            Admission::Draining => {
                return write_wire_frame(
                    stream,
                    &Response::Error {
                        message: "daemon is shutting down".to_string(),
                    },
                );
            }
            Admission::Admitted => {}
        }
        let outcome = self.run_verify(instance_text, report_json);
        self.gate.release();
        match outcome {
            Ok((algorithm, backend, checks)) => write_wire_frame(
                stream,
                &Response::VerifyOk {
                    algorithm,
                    backend,
                    checks,
                },
            ),
            Err(message) => write_wire_frame(stream, &Response::Error { message }),
        }
    }

    fn run_verify(
        &self,
        instance_text: &str,
        report_json: &str,
    ) -> Result<(String, String, Vec<String>), String> {
        let instance = self
            .parse_cache
            .get_or_parse(instance_text)
            .map_err(|e| format!("instance: {e}"))?;
        let stored = core_io::parse_report(report_json).map_err(|e| format!("report: {e}"))?;
        let witness = stored.witness.as_ref().ok_or_else(|| {
            "certificate has no witness — re-solve with full certificates to produce a \
             re-verifiable report"
                .to_string()
        })?;
        let checks = witness::audit(
            &instance,
            &stored.algorithm,
            &stored.solution,
            &stored.claims,
            witness,
        )
        .map_err(|e| e.to_string())?;
        Ok((stored.algorithm, stored.backend, checks))
    }

    fn handle_request(&self, stream: &mut UnixStream, request: Request) -> io::Result<Flow> {
        match request {
            Request::Solve {
                spec,
                render,
                timeout_millis,
            } => {
                self.handle_solve(stream, &spec, render, timeout_millis)?;
                Ok(Flow::Continue)
            }
            Request::Batch {
                instances,
                jobs,
                backend,
                render,
                timeout_millis,
            } => {
                self.handle_batch(stream, &instances, &jobs, &backend, render, timeout_millis)?;
                Ok(Flow::Continue)
            }
            Request::Verify {
                instance_text,
                report_json,
            } => {
                self.handle_verify(stream, &instance_text, &report_json)?;
                Ok(Flow::Continue)
            }
            Request::Ping { nonce } => {
                write_wire_frame(stream, &Response::Pong { nonce })?;
                Ok(Flow::Continue)
            }
            Request::Stats => {
                write_wire_frame(
                    stream,
                    &Response::Stats {
                        stats: self.stats.snapshot(),
                    },
                )?;
                Ok(Flow::Continue)
            }
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                self.gate.drain();
                write_wire_frame(stream, &Response::Bye)?;
                // Unblock the accept loop so it can observe the flag.
                let _ = UnixStream::connect(&self.cfg.socket);
                Ok(Flow::Hangup)
            }
        }
    }

    /// Reads the next request frame, polling the drain flag while the
    /// connection is idle. The read timeout only ever interrupts us
    /// *between* frames (zero bytes buffered): once a frame has started
    /// arriving we keep reading until it completes, so draining cannot
    /// tear a frame apart. Returns `None` on hangup, malformed frames,
    /// or a drain observed at a frame boundary.
    fn read_request_interruptible(&self, stream: &mut UnixStream) -> Option<Request> {
        use std::io::Read;
        const POLL: Duration = Duration::from_millis(100);
        stream.set_read_timeout(Some(POLL)).ok()?;
        let mut fill = |buf: &mut [u8], at_boundary: bool| -> Option<()> {
            let mut have = 0usize;
            while have < buf.len() {
                match stream.read(&mut buf[have..]) {
                    Ok(0) => return None, // peer hung up
                    Ok(n) => have += n,
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock
                                | io::ErrorKind::TimedOut
                                | io::ErrorKind::Interrupted
                        ) =>
                    {
                        if at_boundary && have == 0 && self.shutdown.load(Ordering::SeqCst) {
                            return None; // idle connection at drain time
                        }
                    }
                    Err(_) => return None,
                }
            }
            Some(())
        };
        let mut header = [0u8; 4];
        fill(&mut header, true)?;
        let len = u32::from_le_bytes(header) as usize;
        if len > MAX_FRAME {
            return None;
        }
        let mut body = vec![0u8; len];
        fill(&mut body, false)?;
        decode_value::<Request>(&body).ok()
    }

    /// Serves one connection until the peer hangs up, shuts the daemon
    /// down, or the daemon drains while the connection is idle.
    /// Transport errors just end the connection — the daemon never dies
    /// because one client misbehaved.
    fn serve_connection(&self, mut stream: UnixStream) {
        while let Some(request) = self.read_request_interruptible(&mut stream) {
            match self.handle_request(&mut stream, request) {
                Ok(Flow::Continue) => {}
                Ok(Flow::Hangup) | Err(_) => return,
            }
        }
    }
}

/// Runs the daemon on `cfg.socket` until a client sends
/// [`Request::Shutdown`]. Blocks the calling thread; connections are
/// served on one thread each. Returns the final counter snapshot after
/// every in-flight connection has drained and the socket file is gone.
pub fn serve(cfg: ServeConfig) -> io::Result<StatsSnapshot> {
    // Replace a stale socket file (e.g. from a killed daemon) so
    // restarts are idempotent.
    let _ = std::fs::remove_file(&cfg.socket);
    let listener = UnixListener::bind(&cfg.socket)?;
    let socket = cfg.socket.clone();
    let engine = Arc::new(Engine::new(cfg));
    eprintln!("mrlr serve: listening on {}", socket.display());
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let (stream, _) = listener.accept()?;
        if engine.shutdown.load(Ordering::SeqCst) {
            // The drain wake-up (or a client racing shutdown): refuse by
            // closing immediately; queued/in-flight work still completes.
            drop(stream);
            break;
        }
        let engine = Arc::clone(&engine);
        handles.retain(|h| !h.is_finished());
        handles.push(std::thread::spawn(move || engine.serve_connection(stream)));
    }
    for handle in handles {
        let _ = handle.join();
    }
    let _ = std::fs::remove_file(&socket);
    let snapshot = engine.stats.snapshot();
    // Surface the lifetime counters the way every host event surfaces:
    // as Timeline annotations, printed as `note:` lines.
    let metrics = mrlr_mapreduce::Metrics {
        serve: Some(snapshot.to_summary()),
        ..mrlr_mapreduce::Metrics::default()
    };
    for line in Timeline::from_metrics(&metrics).annotations() {
        eprintln!("note: {line}");
    }
    Ok(snapshot)
}
