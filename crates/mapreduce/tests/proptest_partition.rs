//! Property-based tests of the data partitioners (`partition.rs`): the
//! balanced-assignment invariants the sharded runtime leans on.
//!
//! * **Every key is routed** — each partitioner places every key on
//!   exactly one machine in range, and [`split`] conserves items.
//! * **Per-shard load stays within the µ bound** — with the paper's
//!   shape `M = ⌈records/η⌉`, block placement puts at most
//!   `η = ⌈records/M⌉` keys on a machine, and hash placement stays
//!   within a constant factor of the mean w.h.p. (the Chernoff-style
//!   bound behind Theorems 2.4/3.3/5.6, tested at a generous constant).
//! * **Placement is stable under permuted input** — a partitioner is a
//!   pure function of the key, so shuffling the input stream changes
//!   neither the per-machine membership nor the within-machine relative
//!   order of equal-destination items beyond the stream's own order.

use proptest::prelude::*;

use mrlr_mapreduce::partition::{
    balance_stats, split, BlockPartitioner, HashPartitioner, Partitioner, RangePartitioner,
};
use mrlr_mapreduce::rng::DetRng;

proptest! {
    #[test]
    fn hash_routes_every_key_in_range(seed in any::<u64>(), machines in 1usize..40, keys in 1u64..5_000) {
        let p = HashPartitioner::new(seed, machines);
        for key in 0..keys.min(500) {
            let m = p.place(key);
            prop_assert!(m < machines, "key {key} routed to {m} of {machines}");
            prop_assert_eq!(m, p.place(key), "placement must be pure");
        }
    }

    #[test]
    fn split_conserves_items_exactly_once(seed in any::<u64>(), machines in 1usize..20, n in 0usize..2_000) {
        let items: Vec<u64> = (0..n as u64).collect();
        let p = HashPartitioner::new(seed, machines);
        let parts = split(items, |&x| x, &p);
        prop_assert_eq!(parts.len(), machines);
        let mut seen: Vec<u64> = parts.iter().flatten().copied().collect();
        prop_assert_eq!(seen.len(), n, "every key routed exactly once");
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as u64).collect::<Vec<_>>());
        // Each machine holds exactly the keys the partitioner maps to it.
        for (m, part) in parts.iter().enumerate() {
            prop_assert!(part.iter().all(|&x| p.place(x) == m));
        }
    }

    /// The paper's shape: `M = ⌈records/η⌉` machines. Block placement is
    /// the deterministic worst-case layout of Theorem 2.4 and must put at
    /// most `η` keys on a machine (exactly the `n^{1+µ}` budget).
    #[test]
    fn block_load_meets_the_mu_bound(records in 1u64..100_000, eta in 1u64..4_000) {
        let machines = records.div_ceil(eta).max(1) as usize;
        let p = BlockPartitioner::new(records, machines);
        let counts: Vec<usize> = (0..machines)
            .map(|m| {
                let (lo, hi) = p.block(m);
                (hi - lo) as usize
            })
            .collect();
        prop_assert_eq!(counts.iter().sum::<usize>(), records as usize);
        let eta_cap = records.div_ceil(machines as u64) as usize;
        prop_assert!(eta_cap <= eta as usize + 1);
        for (m, &c) in counts.iter().enumerate() {
            prop_assert!(c <= eta_cap, "machine {m} holds {c} > η' = {eta_cap}");
        }
        // Near-equal blocks: sizes differ by at most one.
        let s = balance_stats(&counts);
        prop_assert!(s.max - s.min <= 1, "blocks unbalanced: {s:?}");
    }

    /// Hash placement balances any key set w.h.p.: with ≥ 64 keys per
    /// machine the max load stays within 2× the mean (the shim's
    /// deterministic seeds make this reproducible, and the bound is far
    /// looser than the Chernoff tail it stands in for).
    #[test]
    fn hash_load_is_balanced(seed in any::<u64>(), machines in 1usize..16) {
        let keys = (machines as u64) * 256;
        let p = HashPartitioner::new(seed, machines);
        let mut counts = vec![0usize; machines];
        for key in 0..keys {
            counts[p.place(key)] += 1;
        }
        let s = balance_stats(&counts);
        prop_assert!(s.min > 0, "an empty shard at {keys} keys: {s:?}");
        prop_assert!(s.imbalance <= 2.0, "imbalance {} at {machines} machines", s.imbalance);
    }

    /// Placement is a pure function of the key, so permuting the input
    /// stream permutes nothing across machines: memberships are equal
    /// and each machine's content order is the stream order restricted
    /// to its keys.
    #[test]
    fn split_is_stable_under_permuted_input(seed in any::<u64>(), machines in 1usize..12, n in 0usize..500) {
        let items: Vec<u64> = (0..n as u64).collect();
        let mut shuffled = items.clone();
        DetRng::new(seed ^ 0x5bfe).shuffle(&mut shuffled);
        let p = HashPartitioner::new(seed, machines);
        let a = split(items, |&x| x, &p);
        let b = split(shuffled.clone(), |&x| x, &p);
        for m in 0..machines {
            let mut am = a[m].clone();
            let mut bm = b[m].clone();
            // Same membership…
            am.sort_unstable();
            bm.sort_unstable();
            prop_assert_eq!(&am, &bm, "machine {} membership changed", m);
            // …and b's order is the shuffled stream restricted to m.
            let expect: Vec<u64> = shuffled.iter().copied().filter(|&x| p.place(x) == m).collect();
            prop_assert_eq!(&b[m], &expect);
        }
    }

    #[test]
    fn range_partitioner_routes_every_key(bounds in proptest::collection::btree_set(1u64..10_000, 0..8), probe in any::<u64>()) {
        let bounds: Vec<u64> = bounds.into_iter().collect(); // sorted, distinct
        let machines = bounds.len() + 1;
        let p = RangePartitioner::new(bounds.clone());
        prop_assert_eq!(p.machines(), machines);
        let m = p.place(probe);
        prop_assert!(m < machines);
        // The chosen machine's range actually contains the key.
        let lo = if m == 0 { 0 } else { bounds[m - 1] };
        prop_assert!(probe >= lo);
        if m < bounds.len() {
            prop_assert!(probe < bounds[m]);
        }
    }
}
