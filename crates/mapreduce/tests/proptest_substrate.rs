//! Property-based tests of the simulator substrate: RNG laws, bitset
//! equivalence to a model, tree-depth monotonicity, and conservation of
//! messages through `exchange`.

use proptest::prelude::*;

use mrlr_mapreduce::bitset::Bitset;
use mrlr_mapreduce::cluster::{tree_depth, Cluster, ClusterConfig};
use mrlr_mapreduce::rng::{coin, mix_tags, DetRng};

proptest! {
    #[test]
    fn range_is_bounded_and_deterministic(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..16 {
            let x = a.range(n);
            prop_assert!(x < n);
            prop_assert_eq!(x, b.range(n));
        }
    }

    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), len in 0usize..200) {
        let mut xs: Vec<usize> = (0..len).collect();
        DetRng::new(seed).shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct(seed in any::<u64>(), n in 0usize..100, k in 0usize..120) {
        let s = DetRng::new(seed).sample_indices(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        prop_assert_eq!(t.len(), k.min(n));
        prop_assert!(s.iter().all(|&i| i < n));
    }

    #[test]
    fn coin_is_stable_and_monotone_in_p(seed in any::<u64>(), tag in any::<u64>()) {
        // Same inputs, same answer.
        prop_assert_eq!(coin(seed, &[tag], 0.5), coin(seed, &[tag], 0.5));
        // p = 0 never, p = 1 always.
        prop_assert!(!coin(seed, &[tag], 0.0));
        prop_assert!(coin(seed, &[tag], 1.0));
        // Monotone: if it fires at p, it fires at any p' >= p.
        if coin(seed, &[tag], 0.3) {
            prop_assert!(coin(seed, &[tag], 0.7));
        }
    }

    #[test]
    fn mix_tags_injective_in_practice(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(mix_tags(1, &[a]), mix_tags(1, &[b]));
    }

    #[test]
    fn bitset_matches_model(ops in proptest::collection::vec((0usize..200, any::<bool>()), 0..100)) {
        let mut bs = Bitset::new(200);
        let mut model = [false; 200];
        for (i, set) in ops {
            if set {
                bs.set(i);
                model[i] = true;
            } else {
                bs.clear(i);
                model[i] = false;
            }
        }
        prop_assert_eq!(bs.count(), model.iter().filter(|&&b| b).count());
        let ones: Vec<usize> = bs.iter_ones().collect();
        let expect: Vec<usize> = (0..200).filter(|&i| model[i]).collect();
        prop_assert_eq!(ones, expect);
    }

    #[test]
    fn tree_depth_monotone(machines in 1usize..10_000, fanout in 2usize..64) {
        let d = tree_depth(machines, fanout);
        // More machines never need fewer hops.
        prop_assert!(tree_depth(machines + 1, fanout) >= d);
        // Bigger fan-out never needs more hops.
        prop_assert!(tree_depth(machines, fanout + 1) <= d);
        // Coverage really is achieved: (fanout+1)^d >= machines.
        let mut reach = 1usize;
        for _ in 0..d {
            reach = reach.saturating_mul(fanout + 1);
        }
        prop_assert!(reach >= machines);
    }

    #[test]
    fn exchange_conserves_messages(
        machines in 1usize..8,
        sends in proptest::collection::vec((0usize..8, 0usize..8, any::<u32>()), 0..50),
    ) {
        let sends: Vec<(usize, usize, u32)> = sends
            .into_iter()
            .map(|(s, d, v)| (s % machines, d % machines, v))
            .collect();
        let states: Vec<Vec<u64>> = (0..machines).map(|_| Vec::new()).collect();
        let mut cluster = Cluster::new(ClusterConfig::new(machines, 1 << 20), states).unwrap();
        let sends2 = sends.clone();
        cluster
            .exchange::<u32, _, _>(
                move |id, _s, out| {
                    for &(src, dst, v) in &sends2 {
                        if src == id {
                            out.send(dst, v);
                        }
                    }
                },
                |_, s, inbox| {
                    for v in inbox {
                        s.push(v as u64);
                    }
                },
            )
            .unwrap();
        let received: usize = (0..machines).map(|i| cluster.state(i).len()).sum();
        prop_assert_eq!(received, sends.len());
        prop_assert_eq!(cluster.metrics().total_message_words, sends.len());
        prop_assert_eq!(cluster.rounds(), 1);
    }
}
