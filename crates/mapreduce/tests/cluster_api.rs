//! Behavioural suite of the cluster primitives, run against **both**
//! runtimes ([`RuntimeKind::Classic`] and [`RuntimeKind::Shard`]): the
//! facade's metering, delivery-order, budget-enforcement and
//! determinism contracts must hold identically whichever (scheduler,
//! router) pair executes the supersteps. The bit-identity of the two
//! runtimes — and of every thread count — over a mixed workload is
//! asserted at the end.

use std::sync::Arc;

use mrlr_mapreduce::cluster::{Cluster, ClusterConfig, Enforcement, MachineState};
use mrlr_mapreduce::error::{CapacityKind, MrError};
use mrlr_mapreduce::executor::{Executor, SeqExecutor, ThreadPoolExecutor};
use mrlr_mapreduce::metrics::Metrics;
use mrlr_mapreduce::superstep::RuntimeKind;

#[derive(Debug)]
struct VecState(Vec<u64>);
impl MachineState for VecState {
    fn words(&self) -> usize {
        self.0.len()
    }
}

const RUNTIMES: [RuntimeKind; 2] = [RuntimeKind::Classic, RuntimeKind::Shard];

fn cluster_with(machines: usize, cap: usize, runtime: RuntimeKind) -> Cluster<VecState> {
    let states = (0..machines).map(|i| VecState(vec![i as u64])).collect();
    Cluster::new(
        ClusterConfig::new(machines, cap).with_runtime(runtime),
        states,
    )
    .unwrap()
}

#[test]
fn local_costs_no_round() {
    for runtime in RUNTIMES {
        let mut c = cluster_with(4, 100, runtime);
        c.local(|id, s| s.0.push(id as u64)).unwrap();
        assert_eq!(c.rounds(), 0, "{}", runtime.name());
        assert_eq!(c.state(2).0, vec![2, 2]);
    }
}

#[test]
fn exchange_delivers_in_sender_order() {
    for runtime in RUNTIMES {
        let mut c = cluster_with(3, 100, runtime);
        c.exchange::<(u64, u64), _, _>(
            |id, _s, out| {
                // everyone sends (id, id*10) to machine 0
                out.send(0, (id as u64, id as u64 * 10));
            },
            |id, s, inbox| {
                if id == 0 {
                    for (src, val) in inbox {
                        s.0.push(src);
                        s.0.push(val);
                    }
                }
            },
        )
        .unwrap();
        assert_eq!(c.rounds(), 1);
        assert_eq!(
            c.state(0).0,
            vec![0, 0, 0, 1, 10, 2, 20],
            "{}",
            runtime.name()
        );
    }
}

#[test]
fn exchange_meters_words() {
    for runtime in RUNTIMES {
        let mut c = cluster_with(2, 100, runtime);
        c.exchange::<u64, _, _>(
            |id, _s, out| {
                if id == 1 {
                    for _ in 0..5 {
                        out.send(0, 7);
                    }
                }
            },
            |_, _, _| {},
        )
        .unwrap();
        let m = c.metrics();
        assert_eq!(m.total_message_words, 5);
        assert_eq!(m.peak_out_words, 5);
        assert_eq!(m.peak_in_words, 5);
    }
}

#[test]
fn outbox_capacity_enforced() {
    for runtime in RUNTIMES {
        let mut c = cluster_with(2, 4, runtime);
        let err = c
            .exchange::<u64, _, _>(
                |id, _s, out| {
                    if id == 0 {
                        for _ in 0..10 {
                            out.send(1, 1);
                        }
                    }
                },
                |_, _, _| {},
            )
            .unwrap_err();
        match err {
            MrError::CapacityExceeded { kind, used, .. } => {
                assert_eq!(kind, CapacityKind::Outbox);
                assert_eq!(used, 10);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}

#[test]
fn state_capacity_enforced_after_local() {
    for runtime in RUNTIMES {
        let mut c = cluster_with(2, 3, runtime);
        let err = c
            .local(|_, s| s.0.extend_from_slice(&[1, 2, 3, 4]))
            .unwrap_err();
        assert!(matches!(
            err,
            MrError::CapacityExceeded {
                kind: CapacityKind::State,
                ..
            }
        ));
    }
}

#[test]
fn record_mode_logs_instead_of_failing() {
    for runtime in RUNTIMES {
        let cfg = ClusterConfig::new(2, 3)
            .with_runtime(runtime)
            .with_enforcement(Enforcement::Record);
        let states = (0..2).map(|i| VecState(vec![i as u64])).collect();
        let mut c = Cluster::new(cfg, states).unwrap();
        c.local(|_, s| s.0.extend_from_slice(&[1, 2, 3, 4]))
            .unwrap();
        assert!(!c.metrics().violations.is_empty());
        assert!(c.metrics().peak_machine_words >= 5);
    }
}

#[test]
fn gather_returns_in_machine_order() {
    for runtime in RUNTIMES {
        let mut c = cluster_with(4, 100, runtime);
        let got = c.gather(|id, _s| vec![id as u64, 100 + id as u64]).unwrap();
        assert_eq!(got, vec![0, 100, 1, 101, 2, 102, 3, 103]);
        assert_eq!(c.rounds(), 1);
        assert!(c.metrics().peak_central_words >= 8);
    }
}

#[test]
fn gather_overflow_detected() {
    for runtime in RUNTIMES {
        let mut c = cluster_with(4, 5, runtime);
        let err = c.gather(|_, _| vec![0u64, 0, 0]).unwrap_err();
        assert!(matches!(
            err,
            MrError::CapacityExceeded {
                kind: CapacityKind::CentralGather,
                ..
            }
        ));
    }
}

#[test]
fn broadcast_counts_tree_rounds() {
    for runtime in RUNTIMES {
        let cfg = ClusterConfig::new(100, 1000)
            .with_runtime(runtime)
            .with_fanout(9);
        let states = (0..100).map(|i| VecState(vec![i as u64])).collect();
        let mut c = Cluster::new(cfg, states).unwrap();
        let rounds = c.broadcast_words(10).unwrap();
        // coverage: 1 -> 10 -> 100, two hops
        assert_eq!(rounds, 2);
        assert_eq!(c.rounds(), 2);
        assert_eq!(c.metrics().total_message_words, 10 * 99);
    }
}

#[test]
fn broadcast_hop_capacity() {
    let cfg = ClusterConfig::new(100, 50).with_fanout(9);
    let states = (0..100).map(|_| VecState(vec![])).collect();
    let mut c = Cluster::new(cfg, states).unwrap();
    // 10 words * fanout 9 = 90 > 50
    let err = c.broadcast_words(10).unwrap_err();
    assert!(matches!(
        err,
        MrError::CapacityExceeded {
            kind: CapacityKind::BroadcastHop,
            ..
        }
    ));
}

#[test]
fn aggregate_combines_deterministically() {
    for runtime in RUNTIMES {
        let mut c = cluster_with(8, 100, runtime);
        let total = c.aggregate_sum(|id, _| id).unwrap();
        assert_eq!(total, 28);
        // one value per machine, tree fanout = machines => 1 hop
        assert_eq!(c.rounds(), 1);
        // Non-commutative combine is applied in machine order.
        let concat = c
            .aggregate(
                |id, _| vec![id as u64],
                |mut a, b| {
                    a.extend(b);
                    a
                },
            )
            .unwrap();
        assert_eq!(concat, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }
}

#[test]
fn charge_central_is_budgeted() {
    let mut c = cluster_with(2, 10, RuntimeKind::Shard);
    c.charge_central(5).unwrap();
    assert!(c.charge_central(50).is_err());
}

#[test]
fn single_machine_broadcast_free() {
    let mut c = cluster_with(1, 100, RuntimeKind::Shard);
    assert_eq!(c.broadcast_words(5).unwrap(), 0);
    assert_eq!(c.rounds(), 0);
}

#[test]
fn supersteps_record_wall_clock_timings() {
    for runtime in RUNTIMES {
        let mut c = cluster_with(4, 1000, runtime);
        c.local(|_, s| s.0.push(1)).unwrap();
        c.exchange::<u64, _, _>(|id, _, out| out.send(0, id as u64), |_, _, _| {})
            .unwrap();
        // local = 1 pass, exchange = produce + consume = 2 passes.
        assert_eq!(c.metrics().superstep_timings.len(), 3);
        for t in &c.metrics().superstep_timings {
            assert_eq!(t.tasks, 4);
            assert!(t.wall_nanos > 0);
        }
        assert!(c.metrics().total_wall_nanos() > 0);
        // Rounds carry their superstep join key (exchange was superstep 2).
        assert_eq!(c.metrics().per_round[0].superstep, 2);
    }
}

#[test]
fn shard_rng_streams_are_schedule_independent() {
    // The shard-owned RNG is a pure function of (cluster seed, shard id):
    // identical across runtimes, thread counts and draw interleavings.
    let draws = |runtime: RuntimeKind, threads: usize| -> Vec<u64> {
        let cfg = ClusterConfig::new(4, 100)
            .with_runtime(runtime)
            .with_threads(threads)
            .with_seed(99);
        let states = (0..4).map(|i| VecState(vec![i as u64])).collect();
        let mut c: Cluster<VecState> = Cluster::new(cfg, states).unwrap();
        (0..4)
            .map(|id| c.shard_mut(id).rng_mut().next_u64())
            .collect()
    };
    let reference = draws(RuntimeKind::Classic, 1);
    assert_eq!(reference.len(), 4);
    let mut distinct = reference.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert_eq!(distinct.len(), 4, "shard streams must differ");
    for runtime in RUNTIMES {
        for threads in [1usize, 4] {
            assert_eq!(draws(runtime, threads), reference);
        }
    }
}

/// The runtime contract end-to-end: a mixed workload (local, skewed
/// exchange, gather, broadcast, aggregate) is bit-identical — states
/// and `Metrics` — across both runtimes, the sequential executor and
/// thread pools of several sizes.
#[test]
fn runtimes_and_thread_counts_are_bit_identical() {
    fn workload(exec: Arc<dyn Executor>, runtime: RuntimeKind) -> (Vec<Vec<u64>>, Metrics) {
        let machines = 16;
        let states: Vec<VecState> = (0..machines).map(|i| VecState(vec![i as u64])).collect();
        let cfg = ClusterConfig::new(machines, 100_000).with_runtime(runtime);
        let mut c = Cluster::with_executor(cfg, states, exec).unwrap();
        // Skewed local work: machine i does O(i^2) pushes/pops.
        c.local(|id, s| {
            for k in 0..(id * id) as u64 {
                s.0.push(k);
            }
            s.0.truncate(id + 1);
        })
        .unwrap();
        // All-to-all exchange with value-dependent destinations.
        c.exchange::<(u64, u64), _, _>(
            |id, s, out| {
                for (j, &v) in s.0.iter().enumerate() {
                    out.send((id + j) % machines, (id as u64, v));
                }
            },
            |_, s, inbox| {
                for (src, v) in inbox {
                    s.0.push(src * 1000 + v);
                }
            },
        )
        .unwrap();
        let gathered = c.gather(|id, s| vec![id as u64, s.0.len() as u64]).unwrap();
        c.broadcast_words(gathered.len()).unwrap();
        let sum = c.aggregate_sum(|_, s| s.0.len()).unwrap();
        c.local(move |_, s| s.0.push(sum as u64)).unwrap();
        let (states, metrics) = c.into_parts();
        (states.into_iter().map(|s| s.0).collect(), metrics)
    }

    let (seq_states, seq_metrics) = workload(Arc::new(SeqExecutor), RuntimeKind::Classic);
    for runtime in RUNTIMES {
        for threads in [1usize, 2, 8] {
            let (states, metrics) = workload(Arc::new(ThreadPoolExecutor::new(threads)), runtime);
            assert_eq!(
                states,
                seq_states,
                "states diverged ({} runtime, {threads} threads)",
                runtime.name()
            );
            assert_eq!(
                metrics,
                seq_metrics,
                "metrics diverged ({} runtime, {threads} threads)",
                runtime.name()
            );
        }
    }
}
