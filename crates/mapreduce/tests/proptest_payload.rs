//! Property-based tests of the flat payload plane: model-based
//! round-trips against nested `Vec<Vec<T>>` traffic, staged through
//! both the slice and the writer-handle APIs, with empty payloads in
//! the mix — and Merge-vs-Columnar bit-identity (delivered messages,
//! delivery order, and `Metrics` word accounting) across threads
//! {1, 4}, checked against an equivalent run on the nested
//! `(H, Vec<T>)` exchange plane.

use proptest::prelude::*;

use mrlr_mapreduce::cluster::{Cluster, ClusterConfig, Outbox};
use mrlr_mapreduce::{Metrics, PayloadOutbox, RuntimeKind};

/// One staged message: (source machine, destination machine, head,
/// variable-size payload).
type Send = (usize, usize, u64, Vec<u64>);

type Received = Vec<Vec<(u64, Vec<u64>)>>;

/// The specification: every machine receives the messages addressed to
/// it grouped by sender machine id ascending, preserving each sender's
/// send order — repeated identically every superstep.
fn model(machines: usize, sends: &[Send], supersteps: usize) -> Received {
    let mut out: Received = vec![Vec::new(); machines];
    for _ in 0..supersteps {
        for src in 0..machines {
            for (s, d, h, p) in sends {
                if *s == src {
                    out[*d].push((*h, p.clone()));
                }
            }
        }
    }
    out
}

fn cluster(runtime: RuntimeKind, threads: usize, machines: usize) -> Cluster<Vec<(u64, Vec<u64>)>> {
    let cfg = ClusterConfig::new(machines, 1 << 20)
        .with_runtime(runtime)
        .with_threads(threads);
    Cluster::new(cfg, vec![Vec::new(); machines]).unwrap()
}

/// Runs the traffic on the payload plane, alternating the slice and the
/// writer-handle staging APIs so both paths see every shape (including
/// empty payloads).
fn run_payload(
    runtime: RuntimeKind,
    threads: usize,
    machines: usize,
    sends: &[Send],
    supersteps: usize,
) -> (Received, Metrics) {
    let mut cluster = cluster(runtime, threads, machines);
    for _ in 0..supersteps {
        cluster
            .exchange_payload::<u64, u64, _, _>(
                |id, _s, out: &mut PayloadOutbox<u64, u64>| {
                    for (i, (src, dst, head, payload)) in sends.iter().enumerate() {
                        if *src != id {
                            continue;
                        }
                        if i % 2 == 0 {
                            out.send(*dst, *head, payload);
                        } else {
                            let mut w = out.push_payload(*dst, *head);
                            for &e in payload {
                                w.push(e);
                            }
                        }
                    }
                },
                |_, s, mut inbox| {
                    while let Some((h, p)) = inbox.next_msg() {
                        s.push((h, p.to_vec()));
                    }
                },
            )
            .unwrap();
    }
    cluster.into_parts()
}

/// The same traffic as owned `(head, Vec<T>)` messages on the nested
/// exchange plane: the implementation-independent reference whose word
/// accounting the payload plane must reproduce exactly.
fn run_nested(machines: usize, sends: &[Send], supersteps: usize) -> (Received, Metrics) {
    let mut cluster = cluster(RuntimeKind::Classic, 1, machines);
    for _ in 0..supersteps {
        cluster
            .exchange::<(u64, Vec<u64>), _, _>(
                |id, _s, out: &mut Outbox<(u64, Vec<u64>)>| {
                    for (src, dst, head, payload) in sends {
                        if *src == id {
                            out.send(*dst, (*head, payload.clone()));
                        }
                    }
                },
                |_, s, inbox| {
                    for (h, p) in inbox {
                        s.push((h, p));
                    }
                },
            )
            .unwrap();
    }
    cluster.into_parts()
}

fn normalized(machines: usize, sends: Vec<Send>) -> Vec<Send> {
    sends
        .into_iter()
        .map(|(s, d, h, p)| (s % machines, d % machines, h, p))
        .collect()
}

proptest! {
    /// Round-trip vs the nested model on every plane: Merge (Classic)
    /// and Columnar (Shard at 1 and 4 threads) deliver exactly the
    /// modelled messages in the modelled order, and their `Metrics`
    /// match the nested `(H, Vec<T>)` reference run word for word —
    /// a payload message meters head + 1 + elements, the same as the
    /// tuple shape it replaces.
    #[test]
    fn payload_plane_matches_the_nested_model(
        machines in 1usize..6,
        sends in proptest::collection::vec(
            (
                0usize..6,
                0usize..6,
                any::<u64>(),
                proptest::collection::vec(any::<u64>(), 0..5),
            ),
            0..40,
        ),
    ) {
        let sends = normalized(machines, sends);
        // Two supersteps so the second one runs entirely on recycled
        // pooled buffers.
        let want = model(machines, &sends, 2);
        let (nested, nested_metrics) = run_nested(machines, &sends, 2);
        prop_assert_eq!(&nested, &want, "nested plane diverged from model");
        for (runtime, threads) in [
            (RuntimeKind::Classic, 1),
            (RuntimeKind::Shard, 1),
            (RuntimeKind::Shard, 4),
        ] {
            let (got, metrics) = run_payload(runtime, threads, machines, &sends, 2);
            prop_assert_eq!(
                &got, &want,
                "payload plane diverged from model on {:?} t{}", runtime, threads
            );
            prop_assert_eq!(
                &metrics, &nested_metrics,
                "payload metrics diverged from nested reference on {:?} t{}",
                runtime, threads
            );
        }
    }

    /// All-empty payloads are a legal degenerate shape: heads arrive in
    /// order, every slice view is empty, and each message still meters
    /// its one length word.
    #[test]
    fn empty_payloads_round_trip(
        machines in 1usize..5,
        pairs in proptest::collection::vec((0usize..5, 0usize..5, any::<u64>()), 0..30),
    ) {
        let sends: Vec<Send> = pairs
            .into_iter()
            .map(|(s, d, h)| (s % machines, d % machines, h, Vec::new()))
            .collect();
        let want = model(machines, &sends, 1);
        let (nested, nested_metrics) = run_nested(machines, &sends, 1);
        prop_assert_eq!(&nested, &want);
        let (got, metrics) = run_payload(RuntimeKind::Shard, 4, machines, &sends, 1);
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(&metrics, &nested_metrics);
    }
}
