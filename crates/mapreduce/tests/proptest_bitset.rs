//! Property-based tests of [`mrlr_mapreduce::bitset::Bitset`] against a
//! `HashSet` model, plus deterministic edge cases at word boundaries.
//!
//! The bitset backs the hot membership checks in the driver distribution
//! step (removed-vertex sets in MIS, chosen-vertex deltas in vertex cover,
//! pushed-edge sets in b-matching), so its `set`/`clear` return values and
//! iteration order are load-bearing for bit-identical outputs.

use std::collections::HashSet;

use proptest::prelude::*;

use mrlr_mapreduce::bitset::Bitset;

proptest! {
    /// set/clear/get round-trip against a HashSet model, including the
    /// was-clear/was-set return values both drivers rely on.
    #[test]
    fn ops_match_hashset_model(
        len in 1usize..300,
        ops_seed in proptest::collection::vec((0usize..300, 0u8..3), 0..200),
    ) {
        let mut bs = Bitset::new(len);
        let mut model: HashSet<usize> = HashSet::new();
        for (raw, kind) in ops_seed {
            let i = raw % len;
            match kind {
                0 => prop_assert_eq!(bs.set(i), model.insert(i)),
                1 => prop_assert_eq!(bs.clear(i), model.remove(&i)),
                _ => prop_assert_eq!(bs.get(i), model.contains(&i)),
            }
        }
        prop_assert_eq!(bs.count(), model.len());
        let ones: Vec<usize> = bs.iter_ones().collect();
        let mut expect: Vec<usize> = model.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(ones, expect);
    }

    /// iter_ones is ascending, in range, and a fixed point: rebuilding a
    /// bitset from its own iteration reproduces it exactly.
    #[test]
    fn iter_ones_round_trips(
        len in 0usize..300,
        picks in proptest::collection::vec(0usize..300, 0..100),
    ) {
        let mut bs = Bitset::new(len);
        for p in picks {
            if len > 0 {
                bs.set(p % len);
            }
        }
        let ones: Vec<usize> = bs.iter_ones().collect();
        prop_assert!(ones.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(ones.iter().all(|&i| i < len.max(1)));
        let mut rebuilt = Bitset::new(len);
        for &i in &ones {
            prop_assert!(rebuilt.set(i));
        }
        prop_assert_eq!(rebuilt, bs);
    }

    /// union/intersect agree with the HashSet model operations.
    #[test]
    fn union_intersect_match_model(
        len in 1usize..200,
        xs in proptest::collection::vec(0usize..200, 0..80),
        ys in proptest::collection::vec(0usize..200, 0..80),
    ) {
        let mut a = Bitset::new(len);
        let mut b = Bitset::new(len);
        let ma: HashSet<usize> = xs.iter().map(|&x| x % len).collect();
        let mb: HashSet<usize> = ys.iter().map(|&y| y % len).collect();
        for &i in &ma { a.set(i); }
        for &i in &mb { b.set(i); }
        let mut u = a.clone();
        u.union_with(&b);
        let mut i = a.clone();
        i.intersect_with(&b);
        let mut eu: Vec<usize> = ma.union(&mb).copied().collect();
        let mut ei: Vec<usize> = ma.intersection(&mb).copied().collect();
        eu.sort_unstable();
        ei.sort_unstable();
        prop_assert_eq!(u.iter_ones().collect::<Vec<_>>(), eu);
        prop_assert_eq!(i.iter_ones().collect::<Vec<_>>(), ei);
    }

    /// `full(len)` sets exactly the ids below `len`, never the padding bits
    /// of the last word — for any length, including word-boundary ones.
    #[test]
    fn full_is_exactly_the_range(len in 0usize..300) {
        let f = Bitset::full(len);
        prop_assert_eq!(f.len(), len);
        prop_assert_eq!(f.count(), len);
        prop_assert_eq!(f.iter_ones().collect::<Vec<_>>(), (0..len).collect::<Vec<_>>());
        // Clearing every bit empties it, proving no stray padding bits.
        let mut g = f.clone();
        for i in 0..len {
            prop_assert!(g.clear(i));
        }
        prop_assert_eq!(g.count(), 0);
    }
}

/// `is_empty` reflects a zero-length range, not a zero count — and the
/// word-boundary lengths (0, exactly one word, non-multiple of 64) all
/// behave consistently.
#[test]
fn empty_and_boundary_lengths() {
    let zero = Bitset::new(0);
    assert!(zero.is_empty());
    assert_eq!(zero.len(), 0);
    assert_eq!(zero.count(), 0);
    assert_eq!(zero.iter_ones().count(), 0);
    assert!(Bitset::full(0).is_empty());

    // len == 64: exactly one word, no second word allocated.
    let mut one_word = Bitset::new(64);
    assert!(!one_word.is_empty());
    assert!(one_word.set(63));
    assert!(one_word.get(63));
    assert_eq!(one_word.count(), 1);
    assert_eq!(Bitset::full(64).count(), 64);

    // len % 64 != 0: last word is partial.
    let mut partial = Bitset::new(65);
    assert!(partial.set(64));
    assert_eq!(partial.iter_ones().collect::<Vec<_>>(), vec![64]);
    let f = Bitset::full(65);
    assert_eq!(f.count(), 65);
    assert!(f.get(64));

    // A cleared-out bitset is not `is_empty` — the range is still there.
    let mut b = Bitset::new(3);
    b.set(1);
    assert!(b.clear(1));
    assert_eq!(b.count(), 0);
    assert!(!b.is_empty());
}
