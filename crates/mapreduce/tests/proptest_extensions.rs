//! Property-based tests for the partitioners, trace, model and fault
//! extensions of the simulator substrate.

use proptest::prelude::*;

use mrlr_mapreduce::faults::{apply, FaultPlan};
use mrlr_mapreduce::metrics::{Metrics, RoundKind};
use mrlr_mapreduce::partition::{
    balance_stats, split, BlockPartitioner, HashPartitioner, Partitioner, RangePartitioner,
};
use mrlr_mapreduce::trace::Timeline;
use mrlr_mapreduce::{ClusterConfig, ComputeModel};

fn arb_metrics() -> impl Strategy<Value = Metrics> {
    proptest::collection::vec((0usize..4, 0usize..1000, 0usize..1000, 0usize..3000), 0..40)
        .prop_map(|rounds| {
            let mut m = Metrics::new(8, 10_000);
            for (k, max_out, max_in, total) in rounds {
                let kind = match k {
                    0 => RoundKind::Exchange,
                    1 => RoundKind::Gather,
                    2 => RoundKind::Broadcast,
                    _ => RoundKind::Aggregate,
                };
                m.record_round(kind, max_out, max_in, total.max(max_out).max(max_in));
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hash_partitioner_total_and_stable(keys in proptest::collection::vec(any::<u64>(), 1..300), seed in any::<u64>(), machines in 1usize..20) {
        let p = HashPartitioner::new(seed, machines);
        for &k in &keys {
            let m = p.place(k);
            prop_assert!(m < machines);
            prop_assert_eq!(m, p.place(k));
        }
    }

    #[test]
    fn block_partitioner_covers_exactly(items in 1u64..500, machines in 1usize..20) {
        let p = BlockPartitioner::new(items, machines);
        let mut counts = vec![0u64; machines];
        for k in 0..items {
            counts[p.place(k)] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<u64>(), items);
        // Near-equal block sizes.
        let max = counts.iter().copied().max().unwrap();
        let min = counts.iter().copied().min().unwrap();
        prop_assert!(max - min <= 1, "blocks {counts:?}");
        // place agrees with block()
        for (m, &count) in counts.iter().enumerate() {
            let (lo, hi) = p.block(m);
            prop_assert_eq!(hi - lo, count);
        }
    }

    #[test]
    fn range_partitioner_monotone(bounds in proptest::collection::btree_set(1u64..10_000, 0..10), keys in proptest::collection::vec(0u64..11_000, 0..50)) {
        let bounds: Vec<u64> = bounds.into_iter().collect();
        let p = RangePartitioner::new(bounds.clone());
        prop_assert_eq!(p.machines(), bounds.len() + 1);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let mut last = 0usize;
        for k in sorted {
            let m = p.place(k);
            prop_assert!(m >= last, "placement must be monotone in key");
            prop_assert!(m < p.machines());
            last = m;
        }
    }

    #[test]
    fn split_conserves_items(items in proptest::collection::vec(any::<u64>(), 0..200), machines in 1usize..8, seed in any::<u64>()) {
        let p = HashPartitioner::new(seed, machines);
        let total = items.len();
        let parts = split(items, |&x| x, &p);
        prop_assert_eq!(parts.len(), machines);
        prop_assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), total);
        let counts: Vec<usize> = parts.iter().map(Vec::len).collect();
        let stats = balance_stats(&counts);
        prop_assert!(stats.max >= stats.min);
    }

    #[test]
    fn timeline_is_consistent_with_any_metrics(m in arb_metrics()) {
        let t = Timeline::from_metrics(&m);
        prop_assert_eq!(t.len(), m.rounds);
        prop_assert_eq!(t.total_words(), m.total_message_words);
        // Cumulative is nondecreasing.
        let mut last = 0usize;
        for row in t.rows() {
            prop_assert!(row.cumulative >= last);
            last = row.cumulative;
        }
        // Kind summary partitions the rounds.
        prop_assert_eq!(t.summary_by_kind().iter().map(|k| k.rounds).sum::<usize>(), m.rounds);
        // CSV has exactly one line per round plus header.
        prop_assert_eq!(t.to_csv().lines().count(), m.rounds + 1);
        // Histogram covers all rounds.
        if m.rounds > 0 {
            let h = t.volume_histogram(5);
            prop_assert_eq!(h.iter().map(|&(_, _, c)| c).sum::<usize>(), m.rounds);
        }
    }

    #[test]
    fn fault_pricing_bounds(m in arb_metrics(), crash_p in 0.0f64..0.5, straggle_p in 0.0f64..0.5, seed in any::<u64>()) {
        let plan = FaultPlan::random(m.machines, m.rounds, crash_p, straggle_p, 2.5, seed);
        let r = apply(&m, &plan);
        prop_assert_eq!(r.base_rounds, m.rounds);
        prop_assert!(r.effective_rounds >= m.rounds);
        prop_assert!(r.effective_rounds <= 2 * m.rounds);
        prop_assert!(r.makespan + 1e-9 >= r.base_rounds as f64);
        // Makespan ≤ rounds·slowdown + redo rounds.
        prop_assert!(r.makespan <= m.rounds as f64 * 2.5 + r.redo_rounds as f64 + 1e-9);
        prop_assert!(r.redo_rounds <= r.crashes_applied);
    }

    #[test]
    fn mpc_shapes_always_pass_their_check(input in 100usize..1_000_000, machines in 1usize..64, slack_i in 10u32..50) {
        let slack = slack_i as f64 / 10.0;
        let model = ComputeModel::Mpc { slack };
        let cfg = model.shape(input, machines);
        let check = model.check(input, &cfg);
        // Sublinearity is enforced by construction; when slack ≥ machines no
        // sublinear shape can hold the input, and the only acceptable
        // violation is the total-memory one.
        for v in &check.violations {
            prop_assert!(v.contains("total memory"), "unexpected violation {v}");
        }
        if (machines as f64) > slack {
            prop_assert!(check.ok, "violations: {:?}", check.violations);
        }
    }

    #[test]
    fn mrc_shapes_always_pass_their_check(input in 100usize..1_000_000, delta_i in 1u32..9, slack_i in 10u32..50) {
        let delta = delta_i as f64 / 10.0;
        let slack = slack_i as f64 / 10.0;
        let model = ComputeModel::Mrc { delta, slack };
        let cfg = model.shape(input, 0);
        let check = model.check(input, &cfg);
        // Total memory may legitimately fall short for tiny slack·δ combos;
        // every other constraint must hold.
        for v in &check.violations {
            prop_assert!(v.contains("total memory"), "unexpected violation {v}");
        }
        let _ = cfg;
    }

    #[test]
    fn cluster_config_validation_is_total(machines in 0usize..10, capacity in 0usize..100, fanout in 0usize..10) {
        let mut cfg = ClusterConfig::new(machines.max(1), capacity.max(1));
        cfg.machines = machines;
        cfg.capacity = capacity;
        cfg.tree_fanout = fanout;
        // validate() never panics; it errs exactly when a field is degenerate.
        let ok = cfg.validate().is_ok();
        prop_assert_eq!(ok, machines >= 1 && capacity >= 1 && fanout >= 2 && cfg.central < machines);
    }
}
