//! Property-based contract of the dist wire format: every [`Frame`]
//! kind survives `decode(encode(f)) == f` on arbitrary field values,
//! every strict prefix of a canonical encoding is rejected as
//! truncated, trailing garbage is rejected, and both failure modes
//! carry the exact byte offset at which decoding gave up.

use proptest::prelude::*;

use mrlr_mapreduce::dist::wire::{decode_value, encode_value};
use mrlr_mapreduce::dist::Frame;

/// Strategy: the payload byte strings carried inside batches/inboxes.
fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=u8::MAX, 0..32)
}

/// Strategy: one arbitrary frame, the kind selected uniformly so every
/// protocol tag is exercised.
fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0u8..9,
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            (any::<bool>(), any::<u64>()),
        ),
        proptest::collection::vec((any::<u64>(), arb_payload()), 0..8),
        proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(arb_payload(), 0..4)),
            0..6,
        ),
    )
        .prop_map(
            |(kind, (a, b, c, d, e, (has_kill, kill)), msgs, shards)| match kind {
                0 => Frame::Assign {
                    worker: a,
                    shard_lo: b,
                    shard_hi: c,
                    machines: d,
                    seed: e,
                    kill_at: has_kill.then_some(kill),
                },
                1 => Frame::Open { superstep: a },
                2 => Frame::Ack { superstep: a },
                3 => Frame::Batch { superstep: a, msgs },
                4 => Frame::Flush { superstep: a },
                5 => Frame::Inboxes {
                    superstep: a,
                    shards,
                    digest: e,
                },
                6 => Frame::Ping { nonce: a },
                7 => Frame::Pong { nonce: a },
                _ => Frame::Shutdown,
            },
        )
}

proptest! {
    #[test]
    fn every_frame_kind_round_trips(frame in arb_frame()) {
        let bytes = encode_value(&frame);
        prop_assert_eq!(decode_value::<Frame>(&bytes).unwrap(), frame);
    }

    #[test]
    fn every_strict_prefix_is_rejected_as_truncated(frame in arb_frame()) {
        let bytes = encode_value(&frame);
        for cut in 0..bytes.len() {
            let err = decode_value::<Frame>(&bytes[..cut])
                .expect_err("strict prefix must not decode");
            // The reported offset points inside the surviving prefix —
            // decoding never reads past the data it was handed.
            prop_assert!(
                err.offset <= cut,
                "cut {} of {}: offset {} out of range ({})",
                cut, bytes.len(), err.offset, err.reason
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected_at_the_exact_boundary(
        frame in arb_frame(),
        junk in proptest::collection::vec(0u8..=u8::MAX, 1..16),
    ) {
        let mut bytes = encode_value(&frame);
        let canonical = bytes.len();
        bytes.extend_from_slice(&junk);
        let err = decode_value::<Frame>(&bytes).expect_err("trailing bytes must not decode");
        prop_assert_eq!(err.offset, canonical);
        prop_assert!(err.reason.contains("trailing"), "{}", err.reason);
    }

    #[test]
    fn unknown_tags_are_rejected_at_offset_zero(
        tag in 9u8..=u8::MAX,
        body in proptest::collection::vec(0u8..=u8::MAX, 0..16),
    ) {
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&body);
        let err = decode_value::<Frame>(&bytes).expect_err("unknown tag must not decode");
        prop_assert_eq!(err.offset, 0);
        prop_assert!(err.reason.contains("unknown frame tag"), "{}", err.reason);
    }

    #[test]
    fn corrupted_bytes_never_panic(
        frame in arb_frame(),
        flip in (any::<usize>(), 1u8..=u8::MAX),
    ) {
        // Flip one byte anywhere: decoding must either produce some
        // frame or return a structured error — never panic or read out
        // of bounds.
        let mut bytes = encode_value(&frame);
        let (pos, xor) = flip;
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        match decode_value::<Frame>(&bytes) {
            Ok(_) => {}
            Err(err) => prop_assert!(err.offset <= bytes.len(), "{}", err.reason),
        }
    }
}
