//! End-to-end contract of the distributed runtime
//! ([`RuntimeKind::Dist`]): the same mixed workload as the in-process
//! runtime suite must produce bit-identical states and model `Metrics`
//! whether the shuffle runs in-process, through thread-backed dist
//! workers at any worker count, through real worker *processes*, or
//! across an injected worker kill that forces the master down its
//! recovery path.

use std::sync::Arc;

use mrlr_mapreduce::cluster::{Cluster, ClusterConfig, MachineState};
use mrlr_mapreduce::dist::{DistConfig, SpawnKind};
use mrlr_mapreduce::executor::{Executor, SeqExecutor, ThreadPoolExecutor};
use mrlr_mapreduce::faults::WorkerKill;
use mrlr_mapreduce::metrics::Metrics;
use mrlr_mapreduce::superstep::RuntimeKind;
use mrlr_mapreduce::trace::Timeline;

#[derive(Debug)]
struct VecState(Vec<u64>);
impl MachineState for VecState {
    fn words(&self) -> usize {
        self.0.len()
    }
}

/// The same mixed workload as `cluster_api.rs`: skewed local work, a
/// value-dependent all-to-all exchange, gather, broadcast, aggregate.
fn workload(
    exec: Arc<dyn Executor>,
    runtime: RuntimeKind,
    dist: DistConfig,
) -> (Vec<Vec<u64>>, Metrics) {
    let machines = 16;
    let states: Vec<VecState> = (0..machines).map(|i| VecState(vec![i as u64])).collect();
    let cfg = ClusterConfig::new(machines, 100_000)
        .with_runtime(runtime)
        .with_seed(7)
        .with_dist(dist);
    let mut c = Cluster::with_executor(cfg, states, exec).unwrap();
    c.local(|id, s| {
        for k in 0..(id * id) as u64 {
            s.0.push(k);
        }
        s.0.truncate(id + 1);
    })
    .unwrap();
    // Two exchanges so a mid-run kill lands inside live shuffle traffic.
    for round in 0..2u64 {
        c.exchange::<(u64, u64), _, _>(
            move |id, s, out| {
                for (j, &v) in s.0.iter().enumerate() {
                    out.send((id + j + round as usize) % machines, (id as u64, v));
                }
            },
            |_, s, inbox| {
                for (src, v) in inbox {
                    s.0.push(src * 1000 + v);
                }
            },
        )
        .unwrap();
    }
    let gathered = c.gather(|id, s| vec![id as u64, s.0.len() as u64]).unwrap();
    c.broadcast_words(gathered.len()).unwrap();
    let sum = c.aggregate_sum(|_, s| s.0.len()).unwrap();
    c.local(move |_, s| s.0.push(sum as u64)).unwrap();
    let (states, metrics) = c.into_parts();
    (states.into_iter().map(|s| s.0).collect(), metrics)
}

fn dist_cfg(workers: usize) -> DistConfig {
    DistConfig {
        workers,
        spawn: SpawnKind::Thread,
        kills: Vec::new(),
    }
}

/// Reference run: the classic in-process runtime on the sequential
/// executor.
fn reference() -> (Vec<Vec<u64>>, Metrics) {
    workload(
        Arc::new(SeqExecutor),
        RuntimeKind::Classic,
        DistConfig::default(),
    )
}

#[test]
fn dist_runtime_is_bit_identical_to_classic_at_every_worker_count() {
    let (ref_states, ref_metrics) = reference();
    assert!(ref_metrics.dist.is_none());
    for workers in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let (states, metrics) = workload(
                Arc::new(ThreadPoolExecutor::new(threads)),
                RuntimeKind::Dist,
                dist_cfg(workers),
            );
            assert_eq!(
                states, ref_states,
                "states diverged ({workers} workers, {threads} threads)"
            );
            // `Metrics` equality ignores host-level observables (timings,
            // the dist summary), so this is the model-observable contract.
            assert_eq!(
                metrics, ref_metrics,
                "metrics diverged ({workers} workers, {threads} threads)"
            );
            let dist = metrics.dist.expect("dist runtime must attach a summary");
            assert_eq!(dist.workers, workers);
            assert_eq!(dist.shuffle.len(), workers);
            assert!(dist.recoveries.is_empty());
            // Both exchanges moved real bytes through the transport.
            assert!(dist.shuffle.iter().any(|w| w.bytes_out > 0));
            assert!(dist.shuffle.iter().all(|w| w.bytes_in > 0));
        }
    }
}

#[test]
fn killed_worker_recovers_bit_identically() {
    let (ref_states, ref_metrics) = reference();
    // Superstep 2 is the produce half of the first exchange: the worker
    // dies holding live batch traffic, exercising the replay path.
    for kill_superstep in [1usize, 2] {
        let dist = DistConfig {
            workers: 2,
            spawn: SpawnKind::Thread,
            kills: vec![WorkerKill {
                worker: 1,
                superstep: kill_superstep,
            }],
        };
        let (states, metrics) = workload(Arc::new(SeqExecutor), RuntimeKind::Dist, dist);
        assert_eq!(states, ref_states, "kill@{kill_superstep}: states diverged");
        assert_eq!(
            metrics, ref_metrics,
            "kill@{kill_superstep}: metrics diverged"
        );
        let summary = metrics.dist.as_ref().expect("dist summary");
        assert_eq!(summary.recoveries.len(), 1, "kill@{kill_superstep}");
        let rec = &summary.recoveries[0];
        assert_eq!(rec.worker, 1);
        assert!(rec.wall_nanos > 0);
        // The recovery surfaces in the timeline narrative without
        // perturbing timeline equality against the clean run.
        let t = Timeline::from_metrics(&metrics);
        assert!(
            t.annotations().iter().any(|a| a.contains("recovery")),
            "kill@{kill_superstep}: no recovery annotation in {:?}",
            t.annotations()
        );
        assert_eq!(t, Timeline::from_metrics(&ref_metrics));
    }
}

#[test]
fn process_workers_match_thread_workers() {
    // Real OS processes: the dedicated worker binary is built by cargo
    // alongside this test and resolved through the env override.
    std::env::set_var(
        mrlr_mapreduce::dist::worker::WORKER_BIN_ENV,
        env!("CARGO_BIN_EXE_mrlr-dist-worker"),
    );
    let (ref_states, ref_metrics) = reference();
    let dist = DistConfig {
        workers: 2,
        spawn: SpawnKind::Process,
        kills: Vec::new(),
    };
    let (states, metrics) = workload(Arc::new(SeqExecutor), RuntimeKind::Dist, dist);
    assert_eq!(states, ref_states, "process-mode states diverged");
    assert_eq!(metrics, ref_metrics, "process-mode metrics diverged");
    let summary = metrics.dist.expect("dist summary");
    assert_eq!(summary.workers, 2);
    assert!(summary.recoveries.is_empty());
}

#[test]
fn killed_process_worker_recovers() {
    std::env::set_var(
        mrlr_mapreduce::dist::worker::WORKER_BIN_ENV,
        env!("CARGO_BIN_EXE_mrlr-dist-worker"),
    );
    let (ref_states, ref_metrics) = reference();
    let dist = DistConfig {
        workers: 2,
        spawn: SpawnKind::Process,
        kills: vec![WorkerKill {
            worker: 0,
            superstep: 2,
        }],
    };
    let (states, metrics) = workload(Arc::new(SeqExecutor), RuntimeKind::Dist, dist);
    assert_eq!(states, ref_states, "killed-process states diverged");
    assert_eq!(metrics, ref_metrics, "killed-process metrics diverged");
    let summary = metrics.dist.expect("dist summary");
    assert_eq!(summary.recoveries.len(), 1);
    assert_eq!(summary.recoveries[0].worker, 0);
}
