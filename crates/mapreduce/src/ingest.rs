//! Streaming record ingestion: scatter an input stream into per-machine
//! blocks without ever materializing it centrally.
//!
//! The MRC input contract distributes the `Θ(n^{1+c})` input records
//! across the `M` machines before round one; no machine — the central one
//! included — may hold more than its `η = n^{1+µ}` word budget. The
//! materialized pipeline violates this during *loading*: the whole
//! instance transits one host before `Cluster::new` splits it. An
//! [`Ingest`] accumulator restores the regime: records arriving one at a
//! time (from the chunked instance parser, a generator, or a socket) are
//! routed straight to their owning machine's block via any
//! [`Partitioner`](crate::partition::Partitioner)-style placement, with
//! exact [`WordSized`] accounting
//! and an optional per-machine capacity that fails ingestion the moment a
//! block would exceed `η`-scale space — the same `CapacityExceeded`
//! discipline the cluster applies to supersteps, applied to round zero.
//!
//! ```
//! use mrlr_mapreduce::ingest::Ingest;
//! use mrlr_mapreduce::partition::{HashPartitioner, Partitioner};
//!
//! let part = HashPartitioner::new(7, 4);
//! let mut ingest: Ingest<(u64, f64)> = Ingest::new(4);
//! for rec in 0..100u64 {
//!     ingest.push(part.place(rec), (rec, 1.5)).unwrap();
//! }
//! assert_eq!(ingest.routed(), 100);
//! let blocks = ingest.into_blocks();
//! assert_eq!(blocks.iter().map(Vec::len).sum::<usize>(), 100);
//! ```

use crate::cluster::MachineId;
use crate::error::{CapacityKind, MrError, MrResult};
use crate::partition::{balance_stats, BalanceStats};
use crate::words::WordSized;

/// Per-machine block accumulator for streamed record ingestion.
#[derive(Debug, Clone)]
pub struct Ingest<T> {
    blocks: Vec<Vec<T>>,
    block_words: Vec<usize>,
    capacity: Option<usize>,
    routed: usize,
}

impl<T: WordSized> Ingest<T> {
    /// An accumulator over `machines` blocks with no capacity limit
    /// (measure only).
    ///
    /// # Panics
    /// Panics if `machines == 0`.
    pub fn new(machines: usize) -> Self {
        assert!(machines > 0, "need at least one machine");
        Ingest {
            blocks: (0..machines).map(|_| Vec::new()).collect(),
            block_words: vec![0; machines],
            capacity: None,
            routed: 0,
        }
    }

    /// An accumulator that fails the push that would take any one block
    /// past `capacity_words` — the ingestion-time analogue of the
    /// cluster's per-machine state budget.
    pub fn with_capacity_limit(machines: usize, capacity_words: usize) -> Self {
        let mut ingest = Ingest::new(machines);
        ingest.capacity = Some(capacity_words);
        ingest
    }

    /// Routes one record to `machine`, charging its exact word size.
    pub fn push(&mut self, machine: MachineId, item: T) -> MrResult<()> {
        let words = self.block_words[machine] + item.words();
        if let Some(capacity) = self.capacity {
            if words > capacity {
                return Err(MrError::CapacityExceeded {
                    round: 0,
                    machine,
                    kind: CapacityKind::State,
                    used: words,
                    capacity,
                });
            }
        }
        self.block_words[machine] = words;
        self.blocks[machine].push(item);
        self.routed += 1;
        Ok(())
    }

    /// Number of machines being ingested into.
    pub fn machines(&self) -> usize {
        self.blocks.len()
    }

    /// Total records routed so far.
    pub fn routed(&self) -> usize {
        self.routed
    }

    /// Words resident per machine block.
    pub fn block_words(&self) -> &[usize] {
        &self.block_words
    }

    /// The largest per-machine block, in words — what the paper's space
    /// bound constrains (`≤ c·η` for the drivers' layouts).
    pub fn max_block_words(&self) -> usize {
        self.block_words.iter().copied().max().unwrap_or(0)
    }

    /// Load-balance summary of the per-machine record counts.
    pub fn balance(&self) -> BalanceStats {
        let counts: Vec<usize> = self.blocks.iter().map(Vec::len).collect();
        balance_stats(&counts)
    }

    /// Consumes the accumulator, yielding the per-machine blocks in
    /// machine-id order (record order preserved within each block).
    pub fn into_blocks(self) -> Vec<Vec<T>> {
        self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{HashPartitioner, Partitioner};

    #[test]
    fn routes_and_counts_words() {
        let mut ingest: Ingest<(u32, u32, f64)> = Ingest::new(3);
        ingest.push(0, (1, 2, 0.5)).unwrap();
        ingest.push(2, (3, 4, 1.5)).unwrap();
        ingest.push(2, (5, 6, 2.5)).unwrap();
        assert_eq!(ingest.routed(), 3);
        assert_eq!(ingest.block_words(), &[3, 0, 6]);
        assert_eq!(ingest.max_block_words(), 6);
        let blocks = ingest.into_blocks();
        assert_eq!(blocks[0], vec![(1, 2, 0.5)]);
        assert_eq!(blocks[1], vec![]);
        assert_eq!(blocks[2], vec![(3, 4, 1.5), (5, 6, 2.5)]);
    }

    #[test]
    fn capacity_limit_fails_the_overflowing_push() {
        let mut ingest: Ingest<u64> = Ingest::with_capacity_limit(2, 2);
        ingest.push(1, 10).unwrap();
        ingest.push(1, 11).unwrap();
        let err = ingest.push(1, 12).unwrap_err();
        assert!(matches!(
            err,
            MrError::CapacityExceeded {
                machine: 1,
                used: 3,
                capacity: 2,
                ..
            }
        ));
        // The failed push left no trace.
        assert_eq!(ingest.routed(), 2);
        assert_eq!(ingest.block_words(), &[0, 2]);
    }

    #[test]
    fn hash_placement_balances_blocks() {
        let part = HashPartitioner::new(11, 8);
        let mut ingest: Ingest<u64> = Ingest::new(8);
        for key in 0..8000u64 {
            ingest.push(part.place(key), key).unwrap();
        }
        let s = ingest.balance();
        assert!(s.imbalance < 1.15, "imbalance {}", s.imbalance);
        assert!(s.min > 0);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let _ = Ingest::<u64>::new(0);
    }
}
