//! Round-by-round execution traces derived from [`Metrics`].
//!
//! The experiments binary and the benches render what a run *did*: one row
//! per communication round with volumes and cumulative totals, exportable as
//! CSV (for the plots behind EXPERIMENTS.md) or as an ASCII bar chart (for
//! terminal inspection). A [`Timeline`] is a pure function of the metrics —
//! it never affects the simulation.
//!
//! Alongside the model-level rounds, a timeline carries the host-level
//! [`SuperstepTiming`]s the cluster records around every executor pass:
//! per-pass wall-clock, the slowest machine's time, and the straggler
//! skew (max/mean). Under the threaded executor these show where real
//! time goes and which supersteps are skew-bound; they are rendered by
//! [`Timeline::timing_csv`] and [`Timeline::render_timing_ascii`] and —
//! like the metrics they come from — excluded from timeline equality.
//!
//! ```
//! use mrlr_mapreduce::metrics::{Metrics, RoundKind};
//! use mrlr_mapreduce::trace::Timeline;
//!
//! let mut m = Metrics::new(4, 1000);
//! m.record_round(RoundKind::Exchange, 10, 20, 100);
//! m.record_round(RoundKind::Gather, 5, 50, 50);
//! let t = Timeline::from_metrics(&m);
//! assert_eq!(t.len(), 2);
//! assert_eq!(t.total_words(), 150);
//! assert!(t.to_csv().starts_with("round,kind"));
//! ```

use std::fmt;

use crate::faults::StragglerCost;
use crate::metrics::{Metrics, RoundKind, SuperstepTiming};

/// One row of a [`Timeline`]: a communication round plus running totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineRow {
    /// 1-based round index.
    pub round: usize,
    /// Primitive that produced the round.
    pub kind: RoundKind,
    /// Maximum words sent by any machine this round.
    pub max_out: usize,
    /// Maximum words received by any machine this round.
    pub max_in: usize,
    /// Total words moved this round.
    pub total: usize,
    /// Words moved in rounds `1..=round`.
    pub cumulative: usize,
}

/// Volume totals for one [`RoundKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindSummary {
    /// The primitive.
    pub kind: RoundKind,
    /// Number of rounds of this kind.
    pub rounds: usize,
    /// Total words moved by rounds of this kind.
    pub words: usize,
}

/// A per-round view of one cluster run.
///
/// Equality compares the model-level rows only; the wall-clock
/// [`SuperstepTiming`]s are host observations and vary run to run.
#[derive(Debug, Clone)]
pub struct Timeline {
    rows: Vec<TimelineRow>,
    timings: Vec<SuperstepTiming>,
    annotations: Vec<String>,
}

impl PartialEq for Timeline {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring: a new field must be explicitly
        // classified as model-level (compared) or host-level (ignored).
        // Annotations describe host events (recoveries, pricing
        // fallbacks) — never model observables — so they are ignored.
        let Timeline {
            rows,
            timings: _,
            annotations: _,
        } = self;
        *rows == other.rows
    }
}

impl Eq for Timeline {}

impl Timeline {
    /// Builds the timeline for `metrics`.
    pub fn from_metrics(metrics: &Metrics) -> Self {
        let mut cumulative = 0usize;
        let rows = metrics
            .per_round
            .iter()
            .map(|r| {
                cumulative += r.total;
                TimelineRow {
                    round: r.round,
                    kind: r.kind,
                    max_out: r.max_out,
                    max_in: r.max_in,
                    total: r.total,
                    cumulative,
                }
            })
            .collect();
        let mut annotations = Vec::new();
        if let Some(dist) = &metrics.dist {
            for r in &dist.recoveries {
                annotations.push(format!(
                    "recovery: worker {} respawned at superstep {} (replayed {} bytes, {} ns)",
                    r.worker, r.superstep, r.replayed_bytes, r.wall_nanos
                ));
            }
        }
        if let Some(serve) = &metrics.serve {
            annotations.push(format!(
                "serve: {} requests, {} solver runs, {} coalesce hits, {} busy rejects, \
                 {} timeouts, queue depth high-water {}",
                serve.requests,
                serve.solver_runs,
                serve.coalesce_hits,
                serve.busy_rejects,
                serve.timeouts,
                serve.queue_depth_high_water
            ));
        }
        Timeline {
            rows,
            timings: metrics.superstep_timings.clone(),
            annotations,
        }
    }

    /// Host-event annotations: distributed-runtime recoveries (one line
    /// per [`crate::metrics::RecoveryEvent`]), daemon-side serve stats
    /// (one line per [`crate::metrics::ServeSummary`], both added by
    /// [`Timeline::from_metrics`]) and straggler-pricing fallbacks
    /// ([`Timeline::annotate_straggler_pricing`]). Excluded from
    /// equality, like the timings.
    pub fn annotations(&self) -> &[String] {
        &self.annotations
    }

    /// Logs every synthetic-fallback straggler pricing outcome (see
    /// [`crate::faults::StragglerCost::SyntheticFallback`] and
    /// [`crate::faults::MeasuredRecovery`]) as an annotation line, making
    /// the previously silent fallback visible in rendered traces.
    pub fn annotate_straggler_pricing(&mut self, pricing: &[StragglerCost]) {
        for cost in pricing {
            if let StragglerCost::SyntheticFallback { round, multiplier } = cost {
                self.annotations.push(format!(
                    "straggler pricing: round {round} had no timing signal, \
                     fell back to synthetic multiplier {multiplier}"
                ));
            }
        }
    }

    /// All rows, in round order.
    pub fn rows(&self) -> &[TimelineRow] {
        &self.rows
    }

    /// Number of rounds.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rounds were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total words moved over the whole run.
    pub fn total_words(&self) -> usize {
        self.rows.last().map_or(0, |r| r.cumulative)
    }

    /// The round that moved the most words, if any.
    pub fn busiest_round(&self) -> Option<&TimelineRow> {
        self.rows.iter().max_by_key(|r| r.total)
    }

    /// Round and word totals per primitive kind, in
    /// exchange/gather/broadcast/aggregate order (kinds with zero rounds are
    /// included, so the output shape is stable).
    pub fn summary_by_kind(&self) -> Vec<KindSummary> {
        let kinds = [
            RoundKind::Exchange,
            RoundKind::Gather,
            RoundKind::Broadcast,
            RoundKind::Aggregate,
        ];
        kinds
            .into_iter()
            .map(|kind| {
                let mut rounds = 0;
                let mut words = 0;
                for r in &self.rows {
                    if r.kind == kind {
                        rounds += 1;
                        words += r.total;
                    }
                }
                KindSummary {
                    kind,
                    rounds,
                    words,
                }
            })
            .collect()
    }

    /// Histogram of per-round volumes over `buckets` equal-width buckets
    /// spanning `0..=max_total`. Returns `(lo, hi, count)` triples with
    /// inclusive bounds. Empty when there are no rounds or `buckets == 0`.
    pub fn volume_histogram(&self, buckets: usize) -> Vec<(usize, usize, usize)> {
        if self.rows.is_empty() || buckets == 0 {
            return Vec::new();
        }
        let max = self.rows.iter().map(|r| r.total).max().unwrap_or(0);
        let width = (max / buckets).max(1) + 1;
        let mut out: Vec<(usize, usize, usize)> = (0..buckets)
            .map(|b| (b * width, (b + 1) * width - 1, 0))
            .collect();
        for r in &self.rows {
            let b = (r.total / width).min(buckets - 1);
            out[b].2 += 1;
        }
        out
    }

    /// Serializes the timeline as CSV with a header row. Stable column
    /// order: `round,kind,max_out,max_in,total,cumulative`.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("round,kind,max_out,max_in,total,cumulative\n");
        for r in &self.rows {
            s.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.round, r.kind, r.max_out, r.max_in, r.total, r.cumulative
            ));
        }
        s
    }

    /// The wall-clock timings of every executor pass, in execution order.
    pub fn timings(&self) -> &[SuperstepTiming] {
        &self.timings
    }

    /// Total host wall-clock nanoseconds across all executor passes.
    pub fn total_wall_nanos(&self) -> u64 {
        self.timings.iter().map(|t| t.wall_nanos).sum()
    }

    /// Worst straggler skew (slowest machine over mean machine time) of
    /// any pass; 0.0 when nothing was timed.
    pub fn max_straggler_skew(&self) -> f64 {
        self.timings
            .iter()
            .map(SuperstepTiming::skew)
            .fold(0.0, f64::max)
    }

    /// Serializes the executor-pass timings as CSV with a header row.
    /// Stable column order:
    /// `pass,superstep,wall_nanos,max_machine_nanos,sum_machine_nanos,tasks,skew`.
    pub fn timing_csv(&self) -> String {
        let mut s = String::from(
            "pass,superstep,wall_nanos,max_machine_nanos,sum_machine_nanos,tasks,skew\n",
        );
        for (i, t) in self.timings.iter().enumerate() {
            s.push_str(&format!(
                "{},{},{},{},{},{},{:.3}\n",
                i + 1,
                t.superstep,
                t.wall_nanos,
                t.max_machine_nanos,
                t.sum_machine_nanos,
                t.tasks,
                t.skew()
            ));
        }
        s
    }

    /// Renders an ASCII bar chart of per-pass wall-clock, one line per
    /// executor pass, bars scaled to `width` characters and annotated
    /// with the straggler skew — the terminal view of where real time
    /// goes under the threaded executor.
    pub fn render_timing_ascii(&self, width: usize) -> String {
        let width = width.max(1);
        let max = self
            .timings
            .iter()
            .map(|t| t.wall_nanos)
            .max()
            .unwrap_or(0)
            .max(1);
        let mut out = String::new();
        for (i, t) in self.timings.iter().enumerate() {
            let bar_len = ((t.wall_nanos as usize) * width).div_ceil(max as usize);
            let bar: String = std::iter::repeat_n('#', bar_len).collect();
            out.push_str(&format!(
                "{:>4} s{:<4} {:>10}ns skew {:>5.2} |{}\n",
                i + 1,
                t.superstep,
                t.wall_nanos,
                t.skew(),
                bar
            ));
        }
        out
    }

    /// Renders an ASCII bar chart of per-round volumes, one line per round,
    /// bars scaled to `width` characters. Intended for terminal output from
    /// the experiments binary.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(1);
        let max = self.rows.iter().map(|r| r.total).max().unwrap_or(0).max(1);
        let mut out = String::new();
        for r in &self.rows {
            let bar_len = (r.total * width).div_ceil(max);
            let bar: String = std::iter::repeat_n('#', bar_len).collect();
            out.push_str(&format!(
                "{:>4} {:<9} {:>10}w |{}\n",
                r.round,
                r.kind.to_string(),
                r.total,
                bar
            ));
        }
        out
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} words total",
            self.len(),
            self.total_words()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn sample_metrics() -> Metrics {
        let mut m = Metrics::new(4, 1000);
        m.record_round(RoundKind::Exchange, 10, 20, 100);
        m.record_round(RoundKind::Gather, 5, 50, 50);
        m.record_round(RoundKind::Broadcast, 40, 10, 40);
        m.record_round(RoundKind::Broadcast, 40, 10, 40);
        m
    }

    #[test]
    fn rows_track_cumulative_volume() {
        let t = Timeline::from_metrics(&sample_metrics());
        assert_eq!(t.len(), 4);
        assert_eq!(t.rows()[0].cumulative, 100);
        assert_eq!(t.rows()[1].cumulative, 150);
        assert_eq!(t.rows()[3].cumulative, 230);
        assert_eq!(t.total_words(), 230);
        assert!(!t.is_empty());
    }

    #[test]
    fn busiest_round_found() {
        let t = Timeline::from_metrics(&sample_metrics());
        let b = t.busiest_round().unwrap();
        assert_eq!(b.round, 1);
        assert_eq!(b.total, 100);
    }

    #[test]
    fn empty_metrics_empty_timeline() {
        let t = Timeline::from_metrics(&Metrics::new(2, 10));
        assert!(t.is_empty());
        assert_eq!(t.total_words(), 0);
        assert!(t.busiest_round().is_none());
        assert_eq!(t.to_csv().lines().count(), 1); // header only
    }

    #[test]
    fn summary_by_kind_is_stable_shape() {
        let t = Timeline::from_metrics(&sample_metrics());
        let s = t.summary_by_kind();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].kind, RoundKind::Exchange);
        assert_eq!(s[0].rounds, 1);
        assert_eq!(s[0].words, 100);
        assert_eq!(s[2].kind, RoundKind::Broadcast);
        assert_eq!(s[2].rounds, 2);
        assert_eq!(s[2].words, 80);
        assert_eq!(s[3].rounds, 0);
        assert_eq!(s[3].words, 0);
    }

    #[test]
    fn csv_round_trips_columns() {
        let t = Timeline::from_metrics(&sample_metrics());
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "round,kind,max_out,max_in,total,cumulative"
        );
        let first: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(first, vec!["1", "exchange", "10", "20", "100", "100"]);
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    fn histogram_covers_all_rounds() {
        let t = Timeline::from_metrics(&sample_metrics());
        let h = t.volume_histogram(4);
        assert_eq!(h.len(), 4);
        let total: usize = h.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total, 4);
        // Bounds are contiguous.
        for w in h.windows(2) {
            assert_eq!(w[0].1 + 1, w[1].0);
        }
        assert!(t.volume_histogram(0).is_empty());
    }

    #[test]
    fn ascii_render_scales_bars() {
        let t = Timeline::from_metrics(&sample_metrics());
        let art = t.render_ascii(20);
        assert_eq!(art.lines().count(), 4);
        let first = art.lines().next().unwrap();
        // The busiest round gets the full-width bar.
        assert!(first.contains(&"#".repeat(20)), "got: {first}");
    }

    #[test]
    fn timings_flow_into_the_timeline() {
        let mut m = sample_metrics();
        m.supersteps = 2;
        m.record_timing(1_000, &[100, 900]);
        m.record_timing(500, &[250, 250]);
        let t = Timeline::from_metrics(&m);
        assert_eq!(t.timings().len(), 2);
        assert_eq!(t.total_wall_nanos(), 1_500);
        // Pass 1: max 900 vs mean 500.
        assert!((t.max_straggler_skew() - 1.8).abs() < 1e-12);
        let csv = t.timing_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "pass,superstep,wall_nanos,max_machine_nanos,sum_machine_nanos,tasks,skew"
        );
        let first: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(first, vec!["1", "2", "1000", "900", "1000", "2", "1.800"]);
        let art = t.render_timing_ascii(10);
        assert_eq!(art.lines().count(), 2);
        assert!(art.lines().next().unwrap().contains(&"#".repeat(10)));
    }

    #[test]
    fn timeline_equality_ignores_wall_clock() {
        let m = sample_metrics();
        let mut fast = m.clone();
        let mut slow = m;
        fast.record_timing(10, &[5, 5]);
        slow.record_timing(99_999, &[99_999]);
        assert_eq!(Timeline::from_metrics(&fast), Timeline::from_metrics(&slow));
        assert_eq!(
            Timeline::from_metrics(&fast).timing_csv().lines().count(),
            2
        );
    }

    #[test]
    fn recoveries_surface_as_annotations_but_not_equality() {
        use crate::metrics::{DistSummary, RecoveryEvent};
        let clean = sample_metrics();
        let mut healed = clean.clone();
        healed.dist = Some(DistSummary {
            workers: 2,
            recoveries: vec![RecoveryEvent {
                worker: 1,
                superstep: 3,
                wall_nanos: 1234,
                replayed_bytes: 456,
            }],
            ..DistSummary::default()
        });
        let t_clean = Timeline::from_metrics(&clean);
        let t_healed = Timeline::from_metrics(&healed);
        assert!(t_clean.annotations().is_empty());
        assert_eq!(t_healed.annotations().len(), 1);
        assert!(
            t_healed.annotations()[0].contains("worker 1 respawned at superstep 3"),
            "got: {}",
            t_healed.annotations()[0]
        );
        assert!(t_healed.annotations()[0].contains("replayed 456 bytes"));
        // Recovery is a host event: the timelines still compare equal.
        assert_eq!(t_clean, t_healed);
    }

    #[test]
    fn serve_stats_surface_as_annotations_but_not_equality() {
        use crate::metrics::ServeSummary;
        let offline = sample_metrics();
        let mut served = offline.clone();
        served.serve = Some(ServeSummary {
            requests: 5,
            solver_runs: 2,
            coalesce_hits: 3,
            busy_rejects: 1,
            timeouts: 0,
            inflight_high_water: 2,
            queue_depth_high_water: 4,
        });
        let t_offline = Timeline::from_metrics(&offline);
        let t_served = Timeline::from_metrics(&served);
        assert!(t_offline.annotations().is_empty());
        assert_eq!(t_served.annotations().len(), 1);
        let line = &t_served.annotations()[0];
        assert!(line.contains("serve: 5 requests"), "got: {line}");
        assert!(line.contains("3 coalesce hits"), "got: {line}");
        assert!(line.contains("1 busy rejects"), "got: {line}");
        assert!(line.contains("queue depth high-water 4"), "got: {line}");
        // Serve stats are host events: the timelines still compare equal.
        assert_eq!(t_offline, t_served);
    }

    #[test]
    fn synthetic_fallbacks_are_annotated() {
        let mut t = Timeline::from_metrics(&sample_metrics());
        t.annotate_straggler_pricing(&[
            StragglerCost::Measured {
                round: 1,
                skew: 3.0,
            },
            StragglerCost::SyntheticFallback {
                round: 2,
                multiplier: 2.5,
            },
        ]);
        // Only the fallback is logged; measured pricing is the normal path.
        assert_eq!(t.annotations().len(), 1);
        assert!(t.annotations()[0].contains("round 2"));
        assert!(t.annotations()[0].contains("synthetic multiplier 2.5"));
    }

    #[test]
    fn display_mentions_totals() {
        let t = Timeline::from_metrics(&sample_metrics());
        let s = t.to_string();
        assert!(s.contains("4 rounds"));
        assert!(s.contains("230"));
    }
}
