//! The MPC/MapReduce cluster simulator — a thin facade over the three
//! runtime layers:
//!
//! * [`crate::shard`] — each machine's state, RNG and space accounting
//!   live in a [`Shard`] that owns them exclusively;
//! * [`crate::router`] — the routing plane that delivers exchanged
//!   messages (sequential merge, or a columnar counting sort into a
//!   pooled flat arena);
//! * [`crate::superstep`] — the scheduler that lays shard tasks onto OS
//!   threads (dynamic claiming or work-stealing-free static assignment).
//!
//! [`ClusterConfig::runtime`] picks the (schedule, router) pair; both
//! [`RuntimeKind`]s are bit-identical in every model-level observable.
//! What this facade itself owns is the *model*: the communication
//! primitives and their metering —
//!
//! * [`Cluster::local`] — machine-local computation (fused with the adjacent
//!   communication round; costs no round of its own),
//! * [`Cluster::exchange`] — one round of arbitrary point-to-point messages,
//! * [`Cluster::gather`] — one round of all-machines-to-one,
//! * [`Cluster::broadcast`] / [`Cluster::broadcast_words`] — central machine
//!   to everyone through a fan-out-`t` tree (`⌈log_t M⌉` rounds, exactly the
//!   broadcast tree of Section 2.2 / 4.1 of the paper),
//! * [`Cluster::aggregate`] — the reverse tree, combining one value per
//!   machine into a single value delivered to the central machine.
//!
//! Every primitive meters words moved and enforces the per-machine word
//! budget. Driver control flow lives in ordinary Rust; any value a driver
//! reads from the cluster went through a metered `gather`/`aggregate`, and
//! any value it pushes into closures after a `broadcast` was metered there.
//! See DESIGN.md ("Simulator honesty model").

use std::sync::Arc;

use crate::dist::{DistConfig, DistSession, Wire};
use crate::error::{CapacityKind, MrError, MrResult};
use crate::executor::{self, Executor};
use crate::metrics::{Metrics, RoundKind, Violation};
use crate::payload::{self, PayloadBatch, PayloadInbox, PayloadOutbox, PayloadSink};
use crate::router::{self, RouterKind, RouterScratch};
use crate::shard::{shards_from_states, Shard};
use crate::superstep::{self, RuntimeKind, Scheduler};
use crate::words::WordSized;

pub use crate::router::{Inbox, Outbox};
pub use crate::shard::{MachineId, MachineState};

/// What to do when a word budget is exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Enforcement {
    /// Return [`MrError::CapacityExceeded`] immediately (the model's rule).
    #[default]
    Strict,
    /// Record a [`Violation`] in the metrics and continue. Useful for
    /// measuring how much memory an algorithm *would* need.
    Record,
}

/// Cluster shape and budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of machines, `M`.
    pub machines: usize,
    /// Memory budget per machine in words (the paper's `O(n^{1+µ})`).
    pub capacity: usize,
    /// Budget enforcement mode.
    pub enforcement: Enforcement,
    /// Fan-out of broadcast/aggregation trees (the paper's `n^µ`).
    pub tree_fanout: usize,
    /// The designated central machine.
    pub central: MachineId,
    /// OS threads for machine supersteps: `0` or `1` selects the
    /// sequential executor, `t > 1` a shared `t`-thread pool (see
    /// [`crate::executor`]). Outputs and metrics are bit-identical either
    /// way; only wall-clock changes.
    pub threads: usize,
    /// Which runtime executes the supersteps (scheduler + routing plane).
    /// Bit-identical either way; defaults to the `MRLR_BACKEND`
    /// environment variable ([`superstep::default_runtime`]).
    pub runtime: RuntimeKind,
    /// Seed of the machine-local shard RNG streams
    /// ([`Shard::rng_mut`](crate::shard::Shard::rng_mut)).
    pub seed: u64,
    /// Distributed-session shape (workers, spawn mode, fault injections).
    /// Only consulted when [`ClusterConfig::runtime`] is
    /// [`RuntimeKind::Dist`].
    pub dist: DistConfig,
}

impl ClusterConfig {
    /// A strict cluster with `machines` machines of `capacity` words and
    /// tree fan-out chosen so a broadcast takes one hop when it fits. The
    /// thread count defaults to the `MRLR_THREADS` environment variable
    /// ([`executor::default_threads`]) and the runtime to `MRLR_BACKEND`
    /// ([`superstep::default_runtime`]).
    pub fn new(machines: usize, capacity: usize) -> Self {
        ClusterConfig {
            machines,
            capacity,
            enforcement: Enforcement::Strict,
            tree_fanout: machines.max(2),
            central: 0,
            threads: executor::default_threads(),
            runtime: superstep::default_runtime(),
            seed: 0,
            dist: DistConfig::default(),
        }
    }

    /// Sets the broadcast/aggregation tree fan-out (the paper's `n^µ`).
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.tree_fanout = fanout.max(2);
        self
    }

    /// Sets the executor thread count (see [`ClusterConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the runtime (see [`ClusterConfig::runtime`]).
    pub fn with_runtime(mut self, runtime: RuntimeKind) -> Self {
        self.runtime = runtime;
        self
    }

    /// Sets the shard-RNG seed (see [`ClusterConfig::seed`]).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the enforcement mode.
    pub fn with_enforcement(mut self, e: Enforcement) -> Self {
        self.enforcement = e;
        self
    }

    /// Sets the distributed-session shape (see [`ClusterConfig::dist`]).
    pub fn with_dist(mut self, dist: DistConfig) -> Self {
        self.dist = dist;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> MrResult<()> {
        if self.machines == 0 {
            return Err(MrError::BadConfig(
                "cluster needs at least one machine".into(),
            ));
        }
        if self.capacity == 0 {
            return Err(MrError::BadConfig("capacity must be positive".into()));
        }
        if self.tree_fanout < 2 {
            return Err(MrError::BadConfig("tree fan-out must be at least 2".into()));
        }
        if self.central >= self.machines {
            return Err(MrError::BadConfig(format!(
                "central machine {} out of range (M = {})",
                self.central, self.machines
            )));
        }
        Ok(())
    }
}

/// Depth of a fan-out-`t` tree over `machines` nodes: the number of hops for
/// a broadcast from the root to reach everyone. 0 when there is one machine.
pub fn tree_depth(machines: usize, fanout: usize) -> usize {
    debug_assert!(fanout >= 2);
    let mut depth = 0;
    let mut reach = 1usize;
    while reach < machines {
        reach = reach.saturating_mul(fanout + 1).min(machines);
        // Each hop, every machine that already has the value sends to
        // `fanout` new machines, so coverage multiplies by (fanout + 1).
        depth += 1;
    }
    depth
}

/// The simulated cluster. `S` is the resident per-machine state.
pub struct Cluster<S> {
    cfg: ClusterConfig,
    shards: Vec<Shard<S>>,
    metrics: Metrics,
    central_extra: usize,
    sched: Scheduler,
    router: RouterKind,
    /// Pooled routing buffers, reused across exchange supersteps.
    scratch: RouterScratch,
    /// Live master/worker session when the runtime is [`RuntimeKind::Dist`].
    dist: Option<DistSession>,
}

impl<S: MachineState> Cluster<S> {
    /// Creates a cluster with one state per machine, executing supersteps
    /// on the executor selected by [`ClusterConfig::threads`] under the
    /// runtime selected by [`ClusterConfig::runtime`].
    pub fn new(cfg: ClusterConfig, states: Vec<S>) -> MrResult<Self> {
        let exec = executor::executor_for(cfg.threads);
        Cluster::with_executor(cfg, states, exec)
    }

    /// Creates a cluster running machine supersteps on an explicit
    /// [`Executor`] (overriding [`ClusterConfig::threads`]). Outputs and
    /// [`Metrics`] are bit-identical across executors and runtimes; only
    /// the wall-clock [`crate::metrics::SuperstepTiming`]s differ.
    pub fn with_executor(
        cfg: ClusterConfig,
        states: Vec<S>,
        exec: Arc<dyn Executor>,
    ) -> MrResult<Self> {
        cfg.validate()?;
        if states.len() != cfg.machines {
            return Err(MrError::BadConfig(format!(
                "{} states supplied for {} machines",
                states.len(),
                cfg.machines
            )));
        }
        let metrics = Metrics::new(cfg.machines, cfg.capacity);
        let sched = Scheduler::new(exec, cfg.runtime.schedule());
        let router = cfg.runtime.router();
        let shards = shards_from_states(states, cfg.seed);
        let dist = match cfg.runtime {
            RuntimeKind::Dist => Some(DistSession::launch(cfg.machines, cfg.seed, &cfg.dist)?),
            _ => None,
        };
        let mut cluster = Cluster {
            cfg,
            shards,
            metrics,
            central_extra: 0,
            sched,
            router,
            scratch: RouterScratch::default(),
            dist,
        };
        cluster.check_states()?;
        Ok(cluster)
    }

    /// The executor running this cluster's machine supersteps.
    pub fn executor(&self) -> &Arc<dyn Executor> {
        self.sched.executor()
    }

    /// The configuration this cluster runs under.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.cfg.machines
    }

    /// Communication rounds elapsed so far.
    pub fn rounds(&self) -> usize {
        self.metrics.rounds
    }

    /// Metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Immutable view of a machine's state.
    pub fn state(&self, id: MachineId) -> &S {
        self.shards[id].state()
    }

    /// Immutable view of all shards (machine id order).
    pub fn shards(&self) -> &[Shard<S>] {
        &self.shards
    }

    /// Exclusive access to one shard — the seam for machine-local RNG
    /// draws ([`Shard::rng_mut`]) outside the metered passes. Mutating
    /// resident state here bypasses no budget for long: every primitive
    /// re-checks state budgets on its next pass.
    pub fn shard_mut(&mut self, id: MachineId) -> &mut Shard<S> {
        &mut self.shards[id]
    }

    /// Consumes the cluster, returning states and metrics.
    pub fn into_parts(self) -> (Vec<S>, Metrics) {
        (
            self.shards.into_iter().map(Shard::into_state).collect(),
            self.metrics,
        )
    }

    /// Constructs the paper's `fail` error at the current round.
    pub fn fail(&self, reason: impl Into<String>) -> MrError {
        MrError::AlgorithmFailed {
            round: self.metrics.rounds,
            reason: reason.into(),
        }
    }

    /// Charges `words` of resident driver-held state to the central machine
    /// (e.g. the local-ratio stack). Replaces any previous charge.
    pub fn charge_central(&mut self, words: usize) -> MrResult<()> {
        self.central_extra = words;
        let used = self.shards[self.cfg.central].words() + words;
        self.metrics.peak_central_words = self.metrics.peak_central_words.max(used);
        self.budget(self.cfg.central, CapacityKind::CentralGather, used)
    }

    fn budget(&mut self, machine: MachineId, kind: CapacityKind, used: usize) -> MrResult<()> {
        if used <= self.cfg.capacity {
            return Ok(());
        }
        match self.cfg.enforcement {
            Enforcement::Strict => Err(MrError::CapacityExceeded {
                round: self.metrics.rounds,
                machine,
                kind,
                used,
                capacity: self.cfg.capacity,
            }),
            Enforcement::Record => {
                self.metrics.violations.push(Violation {
                    round: self.metrics.rounds,
                    machine,
                    kind,
                    used,
                    capacity: self.cfg.capacity,
                });
                Ok(())
            }
        }
    }

    /// Drives the dist control plane (when active) through the barrier of
    /// the superstep just counted: every primitive passes through here, so
    /// the open/ack round-trip doubles as the worker heartbeat — and the
    /// place where a dead worker is detected and recovered. Refreshes the
    /// transport summary in [`Metrics::dist`] afterwards.
    fn dist_sync(&mut self) -> MrResult<()> {
        if let Some(session) = self.dist.as_mut() {
            session.open(self.metrics.supersteps)?;
            self.metrics.dist = Some(session.summary());
        }
        Ok(())
    }

    fn check_states(&mut self) -> MrResult<()> {
        let sizes: Vec<usize> = self.sched.map_ref(&self.shards, |_, shard| shard.words());
        let peak = sizes.iter().copied().max().unwrap_or(0);
        self.metrics.peak_machine_words = self.metrics.peak_machine_words.max(peak);
        let central_used = sizes[self.cfg.central] + self.central_extra;
        self.metrics.peak_central_words = self.metrics.peak_central_words.max(central_used);
        for (id, used) in sizes.into_iter().enumerate() {
            self.budget(id, CapacityKind::State, used)?;
        }
        Ok(())
    }

    /// Machine-local computation on every machine in parallel. Costs no
    /// round (local work fuses with the surrounding communication rounds in
    /// the MRC model); state budgets are re-checked afterwards.
    pub fn local<F>(&mut self, f: F) -> MrResult<()>
    where
        F: Fn(MachineId, &mut S) + Sync,
    {
        self.metrics.supersteps += 1;
        self.dist_sync()?;
        let pass = self
            .sched
            .timed_mut(&mut self.shards, |id, shard| f(id, shard.state_mut()));
        self.metrics
            .record_timing(pass.wall_nanos, &pass.task_nanos);
        self.check_states()
    }

    /// One round of point-to-point communication. `produce` runs on every
    /// machine and stages messages; `consume` runs on every machine with the
    /// [`Inbox`] of messages addressed to it (ordered by sender id, then
    /// send order). Delivery goes through the configured routing plane
    /// ([`ClusterConfig::runtime`]) — for [`RuntimeKind::Dist`], the
    /// master/worker shuffle over real transport; the inboxes are
    /// identical either way. Outbox columns and inbox arenas are pooled
    /// ([`RouterScratch`]), so steady-state exchanges reuse the previous
    /// superstep's buffers instead of allocating.
    pub fn exchange<M, P, C>(&mut self, produce: P, consume: C) -> MrResult<()>
    where
        M: WordSized + Send + Wire + 'static,
        P: Fn(MachineId, &mut S, &mut Outbox<M>) + Sync,
        C: Fn(MachineId, &mut S, Inbox<M>) + Sync,
    {
        self.metrics.supersteps += 1;
        self.dist_sync()?;
        let machines = self.cfg.machines;
        // Meter outgoing volume per machine while producing. Machines run
        // concurrently on the scheduler; results come back in machine-id
        // order regardless of schedule. Each machine stages into pooled
        // column buffers recycled from an earlier superstep.
        let boxes: Vec<Outbox<M>> = (0..machines)
            .map(|_| {
                let (msgs, dsts) = self.scratch.take_columns::<M>();
                Outbox::with_buffers(machines, msgs, dsts)
            })
            .collect();
        let mut staging: Vec<(&mut Shard<S>, Outbox<M>)> =
            self.shards.iter_mut().zip(boxes).collect();
        let pass = self.sched.timed_mut(&mut staging, |id, (shard, out)| {
            produce(id, shard.state_mut(), out);
            out.staged_words()
        });
        let out_words: Vec<usize> = pass.results;
        let outboxes: Vec<Outbox<M>> = staging.into_iter().map(|(_, out)| out).collect();
        self.metrics
            .record_timing(pass.wall_nanos, &pass.task_nanos);

        // Deliver: stable order (sender id, then send order within sender),
        // identical across routing planes — including the dist shuffle,
        // whose workers bucket the serialized batches in arrival order.
        let delivery = match self.dist.as_mut() {
            Some(session) => {
                let d = session.exchange(self.metrics.supersteps, outboxes, &mut self.scratch)?;
                self.metrics.dist = Some(session.summary());
                d
            }
            None => router::route(
                self.router,
                &self.sched,
                machines,
                outboxes,
                &mut self.scratch,
            ),
        };

        let max_out = out_words.iter().copied().max().unwrap_or(0);
        let max_in = delivery.in_words().iter().copied().max().unwrap_or(0);
        let total: usize = out_words.iter().sum();
        self.metrics
            .record_round(RoundKind::Exchange, max_out, max_in, total);

        let mut budget_err = None;
        for (id, used) in out_words.into_iter().enumerate() {
            if let Err(e) = self.budget(id, CapacityKind::Outbox, used) {
                budget_err = Some(e);
                break;
            }
        }
        if budget_err.is_none() {
            for (id, used) in delivery.in_words().iter().copied().enumerate() {
                if let Err(e) = self.budget(id, CapacityKind::Inbox, used) {
                    budget_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = budget_err {
            // A budget violation skips the consume pass but must still
            // return the delivery's pooled buffers — the leak class where
            // an early `?` exit dropped taken scratch on the floor.
            // SAFETY: the inboxes are dropped before the buffers recycle.
            let (inboxes, buffers) = unsafe { delivery.into_inboxes() };
            drop(inboxes);
            buffers.recycle(&mut self.scratch);
            return Err(e);
        }

        // Consume concurrently: each machine owns its shard and its inbox
        // (delivery order above was fixed in sender-id order, so neither
        // the schedule nor the routing plane can leak into observables).
        // SAFETY: `buffers` (the arena backing flat inboxes) lives until
        // after the pass below has dropped every inbox.
        let (inboxes, buffers) = unsafe { delivery.into_inboxes() };
        let mut pairs: Vec<(&mut Shard<S>, Inbox<M>)> =
            self.shards.iter_mut().zip(inboxes).collect();
        let pass = self.sched.timed_mut(&mut pairs, |id, (shard, inbox)| {
            consume(id, shard.state_mut(), std::mem::take(inbox));
        });
        drop(pairs);
        buffers.recycle(&mut self.scratch);
        self.metrics
            .record_timing(pass.wall_nanos, &pass.task_nanos);
        self.check_states()
    }

    /// One round of point-to-point **variable-size** messages: each
    /// message is a `Copy` head plus a payload of `Copy` elements, staged
    /// flat in a [`PayloadOutbox`] (whole slices via
    /// [`PayloadOutbox::send`], or element-by-element through
    /// [`PayloadOutbox::push_payload`] writer handles) and read back from
    /// a [`PayloadInbox`] as zero-copy `(head, &[T])` slices. Metering,
    /// delivery order and budgets are identical to [`Cluster::exchange`]
    /// with `(head, Vec<T>)` tuple messages — a payload message costs
    /// `head.words() + 1 + Σ element words` — but steady-state supersteps
    /// perform no per-message allocation on any layer: staging, routing
    /// ([`RouterKind::Columnar`]'s two-axis counting sort), the dist wire,
    /// and consumption all run through pooled flat buffers.
    pub fn exchange_payload<H, T, P, C>(&mut self, produce: P, consume: C) -> MrResult<()>
    where
        H: Copy + WordSized + Send + Wire + 'static,
        T: Copy + WordSized + Send + Wire + 'static,
        P: Fn(MachineId, &mut S, &mut PayloadOutbox<H, T>) + Sync,
        C: Fn(MachineId, &mut S, PayloadInbox<H, T>) + Sync,
    {
        self.metrics.supersteps += 1;
        self.dist_sync()?;
        let machines = self.cfg.machines;
        #[cfg(debug_assertions)]
        let pooled_before = self.scratch.pooled_buffers();
        let boxes: Vec<PayloadOutbox<H, T>> = (0..machines)
            .map(|_| {
                let (heads, dsts) = self.scratch.take_columns::<H>();
                let lens = self.scratch.take_usizes_empty();
                let elems = self.scratch.take_arena::<T>();
                PayloadOutbox::with_buffers(machines, heads, dsts, lens, elems)
            })
            .collect();
        let mut staging: Vec<(&mut Shard<S>, PayloadOutbox<H, T>)> =
            self.shards.iter_mut().zip(boxes).collect();
        let pass = self.sched.timed_mut(&mut staging, |id, (shard, out)| {
            produce(id, shard.state_mut(), out);
            out.staged_words()
        });
        let out_words: Vec<usize> = pass.results;
        let outboxes: Vec<PayloadOutbox<H, T>> = staging.into_iter().map(|(_, out)| out).collect();
        self.metrics
            .record_timing(pass.wall_nanos, &pass.task_nanos);

        let delivery = match self.dist.as_mut() {
            Some(session) => {
                let d = session.exchange_payload(
                    self.metrics.supersteps,
                    outboxes,
                    &mut self.scratch,
                )?;
                self.metrics.dist = Some(session.summary());
                d
            }
            None => payload::route_payload(
                self.router,
                &self.sched,
                machines,
                outboxes,
                &mut self.scratch,
            ),
        };

        let max_out = out_words.iter().copied().max().unwrap_or(0);
        let max_in = delivery.in_words().iter().copied().max().unwrap_or(0);
        let total: usize = out_words.iter().sum();
        self.metrics
            .record_round(RoundKind::Exchange, max_out, max_in, total);

        let mut budget_err = None;
        for (id, used) in out_words.into_iter().enumerate() {
            if let Err(e) = self.budget(id, CapacityKind::Outbox, used) {
                budget_err = Some(e);
                break;
            }
        }
        if budget_err.is_none() {
            for (id, used) in delivery.in_words().iter().copied().enumerate() {
                if let Err(e) = self.budget(id, CapacityKind::Inbox, used) {
                    budget_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = budget_err {
            // SAFETY: the inboxes are dropped before the buffers recycle.
            let (inboxes, buffers) = unsafe { delivery.into_inboxes() };
            drop(inboxes);
            buffers.recycle(&mut self.scratch);
            return Err(e);
        }

        // SAFETY: `buffers` (the arenas backing flat inboxes) lives until
        // after the pass below has dropped every inbox.
        let (inboxes, buffers) = unsafe { delivery.into_inboxes() };
        let mut pairs: Vec<(&mut Shard<S>, PayloadInbox<H, T>)> =
            self.shards.iter_mut().zip(inboxes).collect();
        let pass = self.sched.timed_mut(&mut pairs, |id, (shard, inbox)| {
            consume(id, shard.state_mut(), std::mem::take(inbox));
        });
        drop(pairs);
        buffers.recycle(&mut self.scratch);
        self.metrics
            .record_timing(pass.wall_nanos, &pass.task_nanos);
        // Every buffer an exchange takes must come back: the pool may
        // warm up (grow) but can never shrink across a superstep.
        #[cfg(debug_assertions)]
        debug_assert!(
            self.scratch.pooled_buffers() >= pooled_before,
            "router scratch leaked pooled buffers across a payload exchange"
        );
        self.check_states()
    }

    /// One round of all-machines-to-central. Returns the gathered messages
    /// (ordered by sender id) to the driver, which stands in for the central
    /// machine; the volume is budgeted against the central machine's memory
    /// on top of its resident state.
    pub fn gather<M, P>(&mut self, produce: P) -> MrResult<Vec<M>>
    where
        M: WordSized + Send,
        P: Fn(MachineId, &mut S) -> Vec<M> + Sync,
    {
        self.metrics.supersteps += 1;
        self.dist_sync()?;
        let central = self.cfg.central;
        let pass = self.sched.timed_mut(&mut self.shards, |id, shard| {
            let batch = produce(id, shard.state_mut());
            let words = batch.iter().map(WordSized::words).sum::<usize>();
            (batch, words)
        });
        self.metrics
            .record_timing(pass.wall_nanos, &pass.task_nanos);
        let (batches, out_words): (Vec<Vec<M>>, Vec<usize>) = pass.results.into_iter().unzip();
        let total: usize = out_words.iter().sum();
        let max_out = out_words.iter().copied().max().unwrap_or(0);
        self.metrics
            .record_round(RoundKind::Gather, max_out, total, total);

        for (id, used) in out_words.into_iter().enumerate() {
            self.budget(id, CapacityKind::Outbox, used)?;
        }
        let central_used = self.shards[central].words() + self.central_extra + total;
        self.metrics.peak_central_words = self.metrics.peak_central_words.max(central_used);
        self.budget(central, CapacityKind::CentralGather, central_used)?;

        Ok(batches.into_iter().flatten().collect())
    }

    /// One round of all-machines-to-central with **variable-size**
    /// messages: every machine stages `(head, payload)` pairs into a
    /// pooled flat [`PayloadSink`] (no `Vec` per message), and the driver
    /// receives one [`PayloadBatch`] — all messages flattened in machine
    /// order, payloads readable as `&[T]` slices. Metering and budgets
    /// are identical to [`Cluster::gather`] shipping `(head, Vec<T>)`
    /// tuples: a message costs `head.words() + 1 + Σ element words`.
    pub fn gather_payload<H, T, P>(&mut self, produce: P) -> MrResult<PayloadBatch<H, T>>
    where
        H: Copy + WordSized + Send + 'static,
        T: Copy + WordSized + Send + 'static,
        P: Fn(MachineId, &mut S, &mut PayloadSink<H, T>) + Sync,
    {
        self.metrics.supersteps += 1;
        self.dist_sync()?;
        let central = self.cfg.central;
        let machines = self.cfg.machines;
        #[cfg(debug_assertions)]
        let pooled_before = self.scratch.pooled_buffers();
        let sinks: Vec<PayloadSink<H, T>> = (0..machines)
            .map(|_| {
                let heads = self.scratch.take_arena::<H>();
                let lens = self.scratch.take_usizes_empty();
                let elems = self.scratch.take_arena::<T>();
                PayloadSink::with_buffers(heads, lens, elems)
            })
            .collect();
        let mut staging: Vec<(&mut Shard<S>, PayloadSink<H, T>)> =
            self.shards.iter_mut().zip(sinks).collect();
        let pass = self.sched.timed_mut(&mut staging, |id, (shard, sink)| {
            produce(id, shard.state_mut(), sink);
            sink.words()
        });
        let out_words: Vec<usize> = pass.results;
        let sinks: Vec<PayloadSink<H, T>> = staging.into_iter().map(|(_, sink)| sink).collect();
        self.metrics
            .record_timing(pass.wall_nanos, &pass.task_nanos);
        let total: usize = out_words.iter().sum();
        let max_out = out_words.iter().copied().max().unwrap_or(0);
        self.metrics
            .record_round(RoundKind::Gather, max_out, total, total);

        let mut budget_err = None;
        for (id, used) in out_words.into_iter().enumerate() {
            if let Err(e) = self.budget(id, CapacityKind::Outbox, used) {
                budget_err = Some(e);
                break;
            }
        }
        if budget_err.is_none() {
            let central_used = self.shards[central].words() + self.central_extra + total;
            self.metrics.peak_central_words = self.metrics.peak_central_words.max(central_used);
            if let Err(e) = self.budget(central, CapacityKind::CentralGather, central_used) {
                budget_err = Some(e);
            }
        }
        // Flatten in machine order; the sinks' pooled buffers go back
        // even when a budget violation aborts the gather.
        let mut batch = PayloadBatch::default();
        for mut sink in sinks {
            if budget_err.is_none() {
                batch.append_sink(&mut sink);
            }
            sink.recycle_into(&mut self.scratch);
        }
        #[cfg(debug_assertions)]
        debug_assert!(
            self.scratch.pooled_buffers() >= pooled_before,
            "router scratch leaked pooled buffers across a payload gather"
        );
        match budget_err {
            Some(e) => Err(e),
            None => Ok(batch),
        }
    }

    /// Metered broadcast of a `words`-word payload from the central machine
    /// to all machines through the fan-out tree. Returns the number of
    /// rounds charged. The driver retains the actual value and may use it in
    /// subsequent closures; this call accounts for its movement.
    pub fn broadcast_words(&mut self, words: usize) -> MrResult<usize> {
        self.metrics.supersteps += 1;
        self.dist_sync()?;
        let depth = tree_depth(self.cfg.machines, self.cfg.tree_fanout);
        let hop_out = words.saturating_mul(self.cfg.tree_fanout);
        for _ in 0..depth {
            self.metrics
                .record_round(RoundKind::Broadcast, hop_out, words, hop_out);
            self.budget(self.cfg.central, CapacityKind::BroadcastHop, hop_out)?;
        }
        self.metrics.total_message_words = self
            .metrics
            .total_message_words
            // record_round already added hop volumes; adjust to the true
            // total of `words * (M - 1)` delivered across the whole tree.
            .saturating_sub(depth * hop_out)
            + words * self.cfg.machines.saturating_sub(1);
        Ok(depth)
    }

    /// Metered broadcast of `value` (see [`Cluster::broadcast_words`]).
    pub fn broadcast<T: WordSized>(&mut self, value: &T) -> MrResult<usize> {
        self.broadcast_words(value.words())
    }

    /// Aggregates one value per machine into a single value delivered to the
    /// central machine (and returned to the driver), through the reverse
    /// fan-out tree. `extract` runs in parallel; `combine` must be
    /// associative and is applied in machine-id order, so non-commutative
    /// folds are still deterministic.
    pub fn aggregate<T, P, C>(&mut self, extract: P, combine: C) -> MrResult<T>
    where
        T: WordSized + Send,
        P: Fn(MachineId, &S) -> T + Sync,
        C: Fn(T, T) -> T,
    {
        self.metrics.supersteps += 1;
        self.dist_sync()?;
        let pass = self
            .sched
            .timed_ref(&self.shards, |id, shard| extract(id, shard.state()));
        self.metrics
            .record_timing(pass.wall_nanos, &pass.task_nanos);
        let mut values: Vec<T> = pass.results;

        let max_words = values.iter().map(WordSized::words).max().unwrap_or(0);
        let total: usize = values.iter().map(WordSized::words).sum();
        let depth = tree_depth(self.cfg.machines, self.cfg.tree_fanout);
        // In each hop an internal node receives up to `fanout` child values.
        let hop_in = max_words.saturating_mul(self.cfg.tree_fanout);
        for _ in 0..depth {
            self.metrics
                .record_round(RoundKind::Aggregate, max_words, hop_in, hop_in);
            self.budget(self.cfg.central, CapacityKind::AggregateHop, hop_in)?;
        }
        self.metrics.total_message_words = self
            .metrics
            .total_message_words
            .saturating_sub(depth * hop_in)
            + total.saturating_sub(max_words);

        let mut acc: Option<T> = None;
        for v in values.drain(..) {
            acc = Some(match acc {
                None => v,
                Some(a) => combine(a, v),
            });
        }
        Ok(acc.expect("cluster has at least one machine"))
    }

    /// Convenience: sums a per-machine `usize` via [`Cluster::aggregate`].
    pub fn aggregate_sum<P>(&mut self, extract: P) -> MrResult<usize>
    where
        P: Fn(MachineId, &S) -> usize + Sync,
    {
        self.aggregate(extract, |a, b| a + b)
    }

    /// Convenience: maximum of a per-machine `f64` via [`Cluster::aggregate`].
    pub fn aggregate_max_f64<P>(&mut self, extract: P) -> MrResult<f64>
    where
        P: Fn(MachineId, &S) -> f64 + Sync,
    {
        self.aggregate(extract, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The behavioural suite of the cluster primitives lives in
    // `tests/cluster_api.rs` (it exercises only public API and covers
    // both runtimes); here we keep the facade-level pieces.

    #[test]
    fn tree_depth_examples() {
        assert_eq!(tree_depth(1, 2), 0);
        assert_eq!(tree_depth(2, 2), 1);
        assert_eq!(tree_depth(3, 2), 1);
        assert_eq!(tree_depth(4, 2), 2);
        assert_eq!(tree_depth(9, 2), 2);
        assert_eq!(tree_depth(10, 2), 3);
        assert_eq!(tree_depth(100, 99), 1);
        // fanout 9: coverage 1 -> 10 -> 100 -> 1000
        assert_eq!(tree_depth(100, 9), 2);
        assert_eq!(tree_depth(101, 9), 3);
        assert_eq!(tree_depth(1000, 9), 3);
    }

    #[test]
    fn config_validation() {
        assert!(ClusterConfig::new(0, 10).validate().is_err());
        assert!(ClusterConfig::new(2, 0).validate().is_err());
        let mut cfg = ClusterConfig::new(2, 10);
        cfg.central = 5;
        assert!(cfg.validate().is_err());
        assert!(ClusterConfig::new(2, 10).validate().is_ok());
    }

    #[test]
    fn config_builders_set_runtime_and_seed() {
        let cfg = ClusterConfig::new(4, 100)
            .with_runtime(RuntimeKind::Shard)
            .with_seed(7)
            .with_threads(3);
        assert_eq!(cfg.runtime, RuntimeKind::Shard);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.threads, 3);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn wrong_state_count_rejected() {
        let cfg = ClusterConfig::new(3, 10);
        let states = vec![vec![0u64]];
        assert!(Cluster::new(cfg, states).is_err());
    }
}
