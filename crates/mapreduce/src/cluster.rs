//! The MPC/MapReduce cluster simulator.
//!
//! A [`Cluster`] owns one state value per machine and exposes the
//! communication primitives the paper's algorithms are built from:
//!
//! * [`Cluster::local`] — machine-local computation (fused with the adjacent
//!   communication round; costs no round of its own),
//! * [`Cluster::exchange`] — one round of arbitrary point-to-point messages,
//! * [`Cluster::gather`] — one round of all-machines-to-one,
//! * [`Cluster::broadcast`] / [`Cluster::broadcast_words`] — central machine
//!   to everyone through a fan-out-`t` tree (`⌈log_t M⌉` rounds, exactly the
//!   broadcast tree of Section 2.2 / 4.1 of the paper),
//! * [`Cluster::aggregate`] — the reverse tree, combining one value per
//!   machine into a single value delivered to the central machine.
//!
//! Every primitive meters words moved and enforces the per-machine word
//! budget. Driver control flow lives in ordinary Rust; any value a driver
//! reads from the cluster went through a metered `gather`/`aggregate`, and
//! any value it pushes into closures after a `broadcast` was metered there.
//! See DESIGN.md ("Simulator honesty model").

use std::sync::Arc;
use std::time::Instant;

use crate::error::{CapacityKind, MrError, MrResult};
use crate::executor::{self, Executor};
use crate::metrics::{Metrics, RoundKind, Violation};
use crate::words::WordSized;

/// Identifier of a simulated machine: `0..machines`.
pub type MachineId = usize;

/// Resident per-machine state.
pub trait MachineState: Send + Sync {
    /// Words of simulated memory this state occupies.
    fn words(&self) -> usize;
}

impl<T: WordSized + Send + Sync> MachineState for T {
    fn words(&self) -> usize {
        WordSized::words(self)
    }
}

/// What to do when a word budget is exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Enforcement {
    /// Return [`MrError::CapacityExceeded`] immediately (the model's rule).
    #[default]
    Strict,
    /// Record a [`Violation`] in the metrics and continue. Useful for
    /// measuring how much memory an algorithm *would* need.
    Record,
}

/// Cluster shape and budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of machines, `M`.
    pub machines: usize,
    /// Memory budget per machine in words (the paper's `O(n^{1+µ})`).
    pub capacity: usize,
    /// Budget enforcement mode.
    pub enforcement: Enforcement,
    /// Fan-out of broadcast/aggregation trees (the paper's `n^µ`).
    pub tree_fanout: usize,
    /// The designated central machine.
    pub central: MachineId,
    /// OS threads for machine supersteps: `0` or `1` selects the
    /// sequential executor, `t > 1` a shared `t`-thread pool (see
    /// [`crate::executor`]). Outputs and metrics are bit-identical either
    /// way; only wall-clock changes.
    pub threads: usize,
}

impl ClusterConfig {
    /// A strict cluster with `machines` machines of `capacity` words and
    /// tree fan-out chosen so a broadcast takes one hop when it fits. The
    /// thread count defaults to the `MRLR_THREADS` environment variable
    /// ([`executor::default_threads`]).
    pub fn new(machines: usize, capacity: usize) -> Self {
        ClusterConfig {
            machines,
            capacity,
            enforcement: Enforcement::Strict,
            tree_fanout: machines.max(2),
            central: 0,
            threads: executor::default_threads(),
        }
    }

    /// Sets the broadcast/aggregation tree fan-out (the paper's `n^µ`).
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.tree_fanout = fanout.max(2);
        self
    }

    /// Sets the executor thread count (see [`ClusterConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the enforcement mode.
    pub fn with_enforcement(mut self, e: Enforcement) -> Self {
        self.enforcement = e;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> MrResult<()> {
        if self.machines == 0 {
            return Err(MrError::BadConfig(
                "cluster needs at least one machine".into(),
            ));
        }
        if self.capacity == 0 {
            return Err(MrError::BadConfig("capacity must be positive".into()));
        }
        if self.tree_fanout < 2 {
            return Err(MrError::BadConfig("tree fan-out must be at least 2".into()));
        }
        if self.central >= self.machines {
            return Err(MrError::BadConfig(format!(
                "central machine {} out of range (M = {})",
                self.central, self.machines
            )));
        }
        Ok(())
    }
}

/// Depth of a fan-out-`t` tree over `machines` nodes: the number of hops for
/// a broadcast from the root to reach everyone. 0 when there is one machine.
pub fn tree_depth(machines: usize, fanout: usize) -> usize {
    debug_assert!(fanout >= 2);
    let mut depth = 0;
    let mut reach = 1usize;
    while reach < machines {
        reach = reach.saturating_mul(fanout + 1).min(machines);
        // Each hop, every machine that already has the value sends to
        // `fanout` new machines, so coverage multiplies by (fanout + 1).
        depth += 1;
    }
    depth
}

/// Outgoing messages staged by one machine during a superstep.
#[derive(Debug)]
pub struct Outbox<M> {
    machines: usize,
    msgs: Vec<(MachineId, M)>,
}

impl<M> Outbox<M> {
    fn new(machines: usize) -> Self {
        Outbox {
            machines,
            msgs: Vec::new(),
        }
    }

    /// Stages `msg` for delivery to `dst` at the start of the next round.
    pub fn send(&mut self, dst: MachineId, msg: M) {
        assert!(dst < self.machines, "destination {dst} out of range");
        self.msgs.push((dst, msg));
    }

    /// Number of staged messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True if nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

/// The simulated cluster. `S` is the resident per-machine state.
pub struct Cluster<S> {
    cfg: ClusterConfig,
    states: Vec<S>,
    metrics: Metrics,
    central_extra: usize,
    exec: Arc<dyn Executor>,
}

impl<S: MachineState> Cluster<S> {
    /// Creates a cluster with one state per machine, executing supersteps
    /// on the executor selected by [`ClusterConfig::threads`].
    pub fn new(cfg: ClusterConfig, states: Vec<S>) -> MrResult<Self> {
        let exec = executor::executor_for(cfg.threads);
        Cluster::with_executor(cfg, states, exec)
    }

    /// Creates a cluster running machine supersteps on an explicit
    /// [`Executor`] (overriding [`ClusterConfig::threads`]). Outputs and
    /// [`Metrics`] are bit-identical across executors; only the
    /// wall-clock [`crate::metrics::SuperstepTiming`]s differ.
    pub fn with_executor(
        cfg: ClusterConfig,
        states: Vec<S>,
        exec: Arc<dyn Executor>,
    ) -> MrResult<Self> {
        cfg.validate()?;
        if states.len() != cfg.machines {
            return Err(MrError::BadConfig(format!(
                "{} states supplied for {} machines",
                states.len(),
                cfg.machines
            )));
        }
        let metrics = Metrics::new(cfg.machines, cfg.capacity);
        let mut cluster = Cluster {
            cfg,
            states,
            metrics,
            central_extra: 0,
            exec,
        };
        cluster.check_states()?;
        Ok(cluster)
    }

    /// The executor running this cluster's machine supersteps.
    pub fn executor(&self) -> &Arc<dyn Executor> {
        &self.exec
    }

    /// The configuration this cluster runs under.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.cfg.machines
    }

    /// Communication rounds elapsed so far.
    pub fn rounds(&self) -> usize {
        self.metrics.rounds
    }

    /// Metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Immutable view of a machine's state.
    pub fn state(&self, id: MachineId) -> &S {
        &self.states[id]
    }

    /// Immutable view of all machine states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Consumes the cluster, returning states and metrics.
    pub fn into_parts(self) -> (Vec<S>, Metrics) {
        (self.states, self.metrics)
    }

    /// Constructs the paper's `fail` error at the current round.
    pub fn fail(&self, reason: impl Into<String>) -> MrError {
        MrError::AlgorithmFailed {
            round: self.metrics.rounds,
            reason: reason.into(),
        }
    }

    /// Charges `words` of resident driver-held state to the central machine
    /// (e.g. the local-ratio stack). Replaces any previous charge.
    pub fn charge_central(&mut self, words: usize) -> MrResult<()> {
        self.central_extra = words;
        let used = self.states[self.cfg.central].words() + words;
        self.metrics.peak_central_words = self.metrics.peak_central_words.max(used);
        self.budget(self.cfg.central, CapacityKind::CentralGather, used)
    }

    fn budget(&mut self, machine: MachineId, kind: CapacityKind, used: usize) -> MrResult<()> {
        if used <= self.cfg.capacity {
            return Ok(());
        }
        match self.cfg.enforcement {
            Enforcement::Strict => Err(MrError::CapacityExceeded {
                round: self.metrics.rounds,
                machine,
                kind,
                used,
                capacity: self.cfg.capacity,
            }),
            Enforcement::Record => {
                self.metrics.violations.push(Violation {
                    round: self.metrics.rounds,
                    machine,
                    kind,
                    used,
                    capacity: self.cfg.capacity,
                });
                Ok(())
            }
        }
    }

    fn check_states(&mut self) -> MrResult<()> {
        let sizes: Vec<usize> = executor::map_slice(&*self.exec, &self.states, |_, s| s.words());
        let peak = sizes.iter().copied().max().unwrap_or(0);
        self.metrics.peak_machine_words = self.metrics.peak_machine_words.max(peak);
        let central_used = sizes[self.cfg.central] + self.central_extra;
        self.metrics.peak_central_words = self.metrics.peak_central_words.max(central_used);
        for (id, used) in sizes.into_iter().enumerate() {
            self.budget(id, CapacityKind::State, used)?;
        }
        Ok(())
    }

    /// Machine-local computation on every machine in parallel. Costs no
    /// round (local work fuses with the surrounding communication rounds in
    /// the MRC model); state budgets are re-checked afterwards.
    pub fn local<F>(&mut self, f: F) -> MrResult<()>
    where
        F: Fn(MachineId, &mut S) + Sync,
    {
        self.metrics.supersteps += 1;
        let pass = Instant::now();
        let durs = executor::map_slice_mut(&*self.exec, &mut self.states, |id, s| {
            let t = Instant::now();
            f(id, s);
            t.elapsed().as_nanos() as u64
        });
        self.metrics
            .record_timing(pass.elapsed().as_nanos() as u64, &durs);
        self.check_states()
    }

    /// One round of point-to-point communication. `produce` runs on every
    /// machine and stages messages; `consume` runs on every machine with the
    /// messages addressed to it (ordered by sender id, then send order).
    pub fn exchange<M, P, C>(&mut self, produce: P, consume: C) -> MrResult<()>
    where
        M: WordSized + Send,
        P: Fn(MachineId, &mut S, &mut Outbox<M>) + Sync,
        C: Fn(MachineId, &mut S, Vec<M>) + Sync,
    {
        self.metrics.supersteps += 1;
        let machines = self.cfg.machines;
        // Meter outgoing volume per machine while producing. Machines run
        // concurrently on the executor; results come back in machine-id
        // order regardless of schedule.
        let pass = Instant::now();
        let produced = executor::map_slice_mut(&*self.exec, &mut self.states, |id, s| {
            let t = Instant::now();
            let mut out = Outbox::new(machines);
            produce(id, s, &mut out);
            let words = out.msgs.iter().map(|(_, m)| m.words()).sum::<usize>();
            (out, words, t.elapsed().as_nanos() as u64)
        });
        let produce_wall = pass.elapsed().as_nanos() as u64;
        let produce_durs: Vec<u64> = produced.iter().map(|&(_, _, d)| d).collect();
        self.metrics.record_timing(produce_wall, &produce_durs);
        let (outboxes, out_words): (Vec<Outbox<M>>, Vec<usize>) = produced
            .into_iter()
            .map(|(out, words, _)| (out, words))
            .unzip();

        // Deliver: stable order (sender id, then send order within sender).
        let mut inboxes: Vec<Vec<M>> = (0..machines).map(|_| Vec::new()).collect();
        let mut in_words = vec![0usize; machines];
        for outbox in outboxes {
            for (dst, msg) in outbox.msgs {
                in_words[dst] += msg.words();
                inboxes[dst].push(msg);
            }
        }

        let max_out = out_words.iter().copied().max().unwrap_or(0);
        let max_in = in_words.iter().copied().max().unwrap_or(0);
        let total: usize = out_words.iter().sum();
        self.metrics
            .record_round(RoundKind::Exchange, max_out, max_in, total);

        for (id, used) in out_words.into_iter().enumerate() {
            self.budget(id, CapacityKind::Outbox, used)?;
        }
        for (id, used) in in_words.into_iter().enumerate() {
            self.budget(id, CapacityKind::Inbox, used)?;
        }

        // Consume concurrently: each machine owns its state and its inbox
        // (delivery order above was fixed in sender-id order, so the
        // executor schedule cannot leak into observables).
        let pass = Instant::now();
        let mut pairs: Vec<(&mut S, Vec<M>)> = self.states.iter_mut().zip(inboxes).collect();
        let consume_durs = executor::map_slice_mut(&*self.exec, &mut pairs, |id, (s, inbox)| {
            let t = Instant::now();
            consume(id, s, std::mem::take(inbox));
            t.elapsed().as_nanos() as u64
        });
        drop(pairs);
        self.metrics
            .record_timing(pass.elapsed().as_nanos() as u64, &consume_durs);
        self.check_states()
    }

    /// One round of all-machines-to-central. Returns the gathered messages
    /// (ordered by sender id) to the driver, which stands in for the central
    /// machine; the volume is budgeted against the central machine's memory
    /// on top of its resident state.
    pub fn gather<M, P>(&mut self, produce: P) -> MrResult<Vec<M>>
    where
        M: WordSized + Send,
        P: Fn(MachineId, &mut S) -> Vec<M> + Sync,
    {
        self.metrics.supersteps += 1;
        let central = self.cfg.central;
        let pass = Instant::now();
        let produced = executor::map_slice_mut(&*self.exec, &mut self.states, |id, s| {
            let t = Instant::now();
            let batch = produce(id, s);
            let words = batch.iter().map(WordSized::words).sum::<usize>();
            (batch, words, t.elapsed().as_nanos() as u64)
        });
        let wall = pass.elapsed().as_nanos() as u64;
        let durs: Vec<u64> = produced.iter().map(|&(_, _, d)| d).collect();
        self.metrics.record_timing(wall, &durs);
        let (batches, out_words): (Vec<Vec<M>>, Vec<usize>) = produced
            .into_iter()
            .map(|(batch, words, _)| (batch, words))
            .unzip();
        let total: usize = out_words.iter().sum();
        let max_out = out_words.iter().copied().max().unwrap_or(0);
        self.metrics
            .record_round(RoundKind::Gather, max_out, total, total);

        for (id, used) in out_words.into_iter().enumerate() {
            self.budget(id, CapacityKind::Outbox, used)?;
        }
        let central_used = self.states[central].words() + self.central_extra + total;
        self.metrics.peak_central_words = self.metrics.peak_central_words.max(central_used);
        self.budget(central, CapacityKind::CentralGather, central_used)?;

        Ok(batches.into_iter().flatten().collect())
    }

    /// Metered broadcast of a `words`-word payload from the central machine
    /// to all machines through the fan-out tree. Returns the number of
    /// rounds charged. The driver retains the actual value and may use it in
    /// subsequent closures; this call accounts for its movement.
    pub fn broadcast_words(&mut self, words: usize) -> MrResult<usize> {
        self.metrics.supersteps += 1;
        let depth = tree_depth(self.cfg.machines, self.cfg.tree_fanout);
        let hop_out = words.saturating_mul(self.cfg.tree_fanout);
        for _ in 0..depth {
            self.metrics
                .record_round(RoundKind::Broadcast, hop_out, words, hop_out);
            self.budget(self.cfg.central, CapacityKind::BroadcastHop, hop_out)?;
        }
        self.metrics.total_message_words = self
            .metrics
            .total_message_words
            // record_round already added hop volumes; adjust to the true
            // total of `words * (M - 1)` delivered across the whole tree.
            .saturating_sub(depth * hop_out)
            + words * self.cfg.machines.saturating_sub(1);
        Ok(depth)
    }

    /// Metered broadcast of `value` (see [`Cluster::broadcast_words`]).
    pub fn broadcast<T: WordSized>(&mut self, value: &T) -> MrResult<usize> {
        self.broadcast_words(value.words())
    }

    /// Aggregates one value per machine into a single value delivered to the
    /// central machine (and returned to the driver), through the reverse
    /// fan-out tree. `extract` runs in parallel; `combine` must be
    /// associative and is applied in machine-id order, so non-commutative
    /// folds are still deterministic.
    pub fn aggregate<T, P, C>(&mut self, extract: P, combine: C) -> MrResult<T>
    where
        T: WordSized + Send,
        P: Fn(MachineId, &S) -> T + Sync,
        C: Fn(T, T) -> T,
    {
        self.metrics.supersteps += 1;
        let pass = Instant::now();
        let extracted = executor::map_slice(&*self.exec, &self.states, |id, s| {
            let t = Instant::now();
            let v = extract(id, s);
            (v, t.elapsed().as_nanos() as u64)
        });
        let wall = pass.elapsed().as_nanos() as u64;
        let durs: Vec<u64> = extracted.iter().map(|&(_, d)| d).collect();
        self.metrics.record_timing(wall, &durs);
        let mut values: Vec<T> = extracted.into_iter().map(|(v, _)| v).collect();

        let max_words = values.iter().map(WordSized::words).max().unwrap_or(0);
        let total: usize = values.iter().map(WordSized::words).sum();
        let depth = tree_depth(self.cfg.machines, self.cfg.tree_fanout);
        // In each hop an internal node receives up to `fanout` child values.
        let hop_in = max_words.saturating_mul(self.cfg.tree_fanout);
        for _ in 0..depth {
            self.metrics
                .record_round(RoundKind::Aggregate, max_words, hop_in, hop_in);
            self.budget(self.cfg.central, CapacityKind::AggregateHop, hop_in)?;
        }
        self.metrics.total_message_words = self
            .metrics
            .total_message_words
            .saturating_sub(depth * hop_in)
            + total.saturating_sub(max_words);

        let mut acc: Option<T> = None;
        for v in values.drain(..) {
            acc = Some(match acc {
                None => v,
                Some(a) => combine(a, v),
            });
        }
        Ok(acc.expect("cluster has at least one machine"))
    }

    /// Convenience: sums a per-machine `usize` via [`Cluster::aggregate`].
    pub fn aggregate_sum<P>(&mut self, extract: P) -> MrResult<usize>
    where
        P: Fn(MachineId, &S) -> usize + Sync,
    {
        self.aggregate(extract, |a, b| a + b)
    }

    /// Convenience: maximum of a per-machine `f64` via [`Cluster::aggregate`].
    pub fn aggregate_max_f64<P>(&mut self, extract: P) -> MrResult<f64>
    where
        P: Fn(MachineId, &S) -> f64 + Sync,
    {
        self.aggregate(extract, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct VecState(Vec<u64>);
    impl MachineState for VecState {
        fn words(&self) -> usize {
            self.0.len()
        }
    }

    fn cluster(machines: usize, cap: usize) -> Cluster<VecState> {
        let states = (0..machines).map(|i| VecState(vec![i as u64])).collect();
        Cluster::new(ClusterConfig::new(machines, cap), states).unwrap()
    }

    #[test]
    fn tree_depth_examples() {
        assert_eq!(tree_depth(1, 2), 0);
        assert_eq!(tree_depth(2, 2), 1);
        assert_eq!(tree_depth(3, 2), 1);
        assert_eq!(tree_depth(4, 2), 2);
        assert_eq!(tree_depth(9, 2), 2);
        assert_eq!(tree_depth(10, 2), 3);
        assert_eq!(tree_depth(100, 99), 1);
        // fanout 9: coverage 1 -> 10 -> 100 -> 1000
        assert_eq!(tree_depth(100, 9), 2);
        assert_eq!(tree_depth(101, 9), 3);
        assert_eq!(tree_depth(1000, 9), 3);
    }

    #[test]
    fn local_costs_no_round() {
        let mut c = cluster(4, 100);
        c.local(|id, s| s.0.push(id as u64)).unwrap();
        assert_eq!(c.rounds(), 0);
        assert_eq!(c.state(2).0, vec![2, 2]);
    }

    #[test]
    fn exchange_delivers_in_sender_order() {
        let mut c = cluster(3, 100);
        c.exchange::<(u64, u64), _, _>(
            |id, _s, out| {
                // everyone sends (id, id*10) to machine 0
                out.send(0, (id as u64, id as u64 * 10));
            },
            |id, s, inbox| {
                if id == 0 {
                    for (src, val) in inbox {
                        s.0.push(src);
                        s.0.push(val);
                    }
                }
            },
        )
        .unwrap();
        assert_eq!(c.rounds(), 1);
        assert_eq!(c.state(0).0, vec![0, 0, 0, 1, 10, 2, 20]);
    }

    #[test]
    fn exchange_meters_words() {
        let mut c = cluster(2, 100);
        c.exchange::<u64, _, _>(
            |id, _s, out| {
                if id == 1 {
                    for _ in 0..5 {
                        out.send(0, 7);
                    }
                }
            },
            |_, _, _| {},
        )
        .unwrap();
        let m = c.metrics();
        assert_eq!(m.total_message_words, 5);
        assert_eq!(m.peak_out_words, 5);
        assert_eq!(m.peak_in_words, 5);
    }

    #[test]
    fn outbox_capacity_enforced() {
        let mut c = cluster(2, 4);
        let err = c
            .exchange::<u64, _, _>(
                |id, _s, out| {
                    if id == 0 {
                        for _ in 0..10 {
                            out.send(1, 1);
                        }
                    }
                },
                |_, _, _| {},
            )
            .unwrap_err();
        match err {
            MrError::CapacityExceeded { kind, used, .. } => {
                assert_eq!(kind, CapacityKind::Outbox);
                assert_eq!(used, 10);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn state_capacity_enforced_after_local() {
        let mut c = cluster(2, 3);
        let err = c
            .local(|_, s| s.0.extend_from_slice(&[1, 2, 3, 4]))
            .unwrap_err();
        assert!(matches!(
            err,
            MrError::CapacityExceeded {
                kind: CapacityKind::State,
                ..
            }
        ));
    }

    #[test]
    fn record_mode_logs_instead_of_failing() {
        let cfg = ClusterConfig::new(2, 3).with_enforcement(Enforcement::Record);
        let states = (0..2).map(|i| VecState(vec![i as u64])).collect();
        let mut c = Cluster::new(cfg, states).unwrap();
        c.local(|_, s| s.0.extend_from_slice(&[1, 2, 3, 4]))
            .unwrap();
        assert!(!c.metrics().violations.is_empty());
        assert!(c.metrics().peak_machine_words >= 5);
    }

    #[test]
    fn gather_returns_in_machine_order() {
        let mut c = cluster(4, 100);
        let got = c.gather(|id, _s| vec![id as u64, 100 + id as u64]).unwrap();
        assert_eq!(got, vec![0, 100, 1, 101, 2, 102, 3, 103]);
        assert_eq!(c.rounds(), 1);
        assert!(c.metrics().peak_central_words >= 8);
    }

    #[test]
    fn gather_overflow_detected() {
        let mut c = cluster(4, 5);
        let err = c.gather(|_, _| vec![0u64, 0, 0]).unwrap_err();
        assert!(matches!(
            err,
            MrError::CapacityExceeded {
                kind: CapacityKind::CentralGather,
                ..
            }
        ));
    }

    #[test]
    fn broadcast_counts_tree_rounds() {
        let cfg = ClusterConfig::new(100, 1000).with_fanout(9);
        let states = (0..100).map(|i| VecState(vec![i as u64])).collect();
        let mut c = Cluster::new(cfg, states).unwrap();
        let rounds = c.broadcast_words(10).unwrap();
        // coverage: 1 -> 10 -> 100, two hops
        assert_eq!(rounds, 2);
        assert_eq!(c.rounds(), 2);
        assert_eq!(c.metrics().total_message_words, 10 * 99);
    }

    #[test]
    fn broadcast_hop_capacity() {
        let cfg = ClusterConfig::new(100, 50).with_fanout(9);
        let states = (0..100).map(|_| VecState(vec![])).collect();
        let mut c = Cluster::new(cfg, states).unwrap();
        // 10 words * fanout 9 = 90 > 50
        let err = c.broadcast_words(10).unwrap_err();
        assert!(matches!(
            err,
            MrError::CapacityExceeded {
                kind: CapacityKind::BroadcastHop,
                ..
            }
        ));
    }

    #[test]
    fn aggregate_combines_deterministically() {
        let mut c = cluster(8, 100);
        let total = c.aggregate_sum(|id, _| id).unwrap();
        assert_eq!(total, 28);
        // one value per machine, tree fanout = machines => 1 hop
        assert_eq!(c.rounds(), 1);
        // Non-commutative combine is applied in machine order.
        let concat = c
            .aggregate(
                |id, _| vec![id as u64],
                |mut a, b| {
                    a.extend(b);
                    a
                },
            )
            .unwrap();
        assert_eq!(concat, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn charge_central_is_budgeted() {
        let mut c = cluster(2, 10);
        c.charge_central(5).unwrap();
        assert!(c.charge_central(50).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(ClusterConfig::new(0, 10).validate().is_err());
        assert!(ClusterConfig::new(2, 0).validate().is_err());
        let mut cfg = ClusterConfig::new(2, 10);
        cfg.central = 5;
        assert!(cfg.validate().is_err());
        assert!(ClusterConfig::new(2, 10).validate().is_ok());
    }

    #[test]
    fn wrong_state_count_rejected() {
        let cfg = ClusterConfig::new(3, 10);
        let states = vec![VecState(vec![])];
        assert!(Cluster::new(cfg, states).is_err());
    }

    #[test]
    fn single_machine_broadcast_free() {
        let mut c = cluster(1, 100);
        assert_eq!(c.broadcast_words(5).unwrap(), 0);
        assert_eq!(c.rounds(), 0);
    }

    #[test]
    fn supersteps_record_wall_clock_timings() {
        let mut c = cluster(4, 1000);
        c.local(|_, s| s.0.push(1)).unwrap();
        c.exchange::<u64, _, _>(|id, _, out| out.send(0, id as u64), |_, _, _| {})
            .unwrap();
        // local = 1 pass, exchange = produce + consume = 2 passes.
        assert_eq!(c.metrics().superstep_timings.len(), 3);
        for t in &c.metrics().superstep_timings {
            assert_eq!(t.tasks, 4);
            assert!(t.wall_nanos > 0);
        }
        assert!(c.metrics().total_wall_nanos() > 0);
    }

    /// The executor contract end-to-end: a mixed workload (local, skewed
    /// exchange, gather, broadcast, aggregate) is bit-identical — states
    /// and `Metrics` — across the sequential executor and thread pools of
    /// several sizes.
    #[test]
    fn threaded_run_is_bit_identical_to_sequential() {
        use crate::executor::{SeqExecutor, ThreadPoolExecutor};

        fn workload(exec: Arc<dyn Executor>) -> (Vec<Vec<u64>>, Metrics) {
            let machines = 16;
            let states: Vec<VecState> = (0..machines).map(|i| VecState(vec![i as u64])).collect();
            let mut c = Cluster::with_executor(ClusterConfig::new(machines, 100_000), states, exec)
                .unwrap();
            // Skewed local work: machine i does O(i^2) pushes/pops.
            c.local(|id, s| {
                for k in 0..(id * id) as u64 {
                    s.0.push(k);
                }
                s.0.truncate(id + 1);
            })
            .unwrap();
            // All-to-all exchange with value-dependent destinations.
            c.exchange::<(u64, u64), _, _>(
                |id, s, out| {
                    for (j, &v) in s.0.iter().enumerate() {
                        out.send((id + j) % machines, (id as u64, v));
                    }
                },
                |_, s, inbox| {
                    for (src, v) in inbox {
                        s.0.push(src * 1000 + v);
                    }
                },
            )
            .unwrap();
            let gathered = c.gather(|id, s| vec![id as u64, s.0.len() as u64]).unwrap();
            c.broadcast_words(gathered.len()).unwrap();
            let sum = c.aggregate_sum(|_, s| s.0.len()).unwrap();
            c.local(move |_, s| s.0.push(sum as u64)).unwrap();
            let (states, metrics) = c.into_parts();
            (states.into_iter().map(|s| s.0).collect(), metrics)
        }

        let (seq_states, seq_metrics) = workload(Arc::new(SeqExecutor));
        for threads in [1usize, 2, 8] {
            let (states, metrics) = workload(Arc::new(ThreadPoolExecutor::new(threads)));
            assert_eq!(states, seq_states, "states diverged at {threads} threads");
            assert_eq!(
                metrics, seq_metrics,
                "metrics diverged at {threads} threads"
            );
        }
    }
}
