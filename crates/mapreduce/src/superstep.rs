//! Superstep scheduling: how per-machine tasks are laid onto OS threads.
//!
//! One superstep of the MRC/MPC model runs the same computation on every
//! machine (the paper's "map" / "reduce" halves of a round). The
//! [`Scheduler`] decides *which OS thread executes which shard's task*,
//! on top of the raw [`Executor`] seam:
//!
//! * [`SchedulePolicy::Dynamic`] — tasks claim shard indices from the
//!   executor's shared counter (the work-conserving schedule the classic
//!   runtime uses; good when per-shard work is skewed).
//! * [`SchedulePolicy::Static`] — shards are partitioned into
//!   `threads` contiguous blocks up front ([`StaticAssignment`]) and each
//!   block is executed by exactly one worker, with **no work stealing**.
//!   This is the schedule of a real sharded deployment, where shard state
//!   is pinned to its worker and cannot migrate mid-superstep.
//!
//! Either way every ordered observable is reconstructed in shard-id
//! order, so a run is bit-identical across policies, executors and
//! thread counts; only host wall-clock differs. [`RuntimeKind`] bundles a
//! schedule with a routing plane ([`crate::router::RouterKind`]) into the
//! cluster runtimes (`Classic` / `Shard` / `Dist`), selectable per run
//! via [`crate::cluster::ClusterConfig::runtime`] or process-wide via the
//! `MRLR_BACKEND` environment variable.

use std::ops::Range;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::executor::{Executor, RawSlots};
use crate::router::RouterKind;

/// How shard tasks are assigned to executor threads within one superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Threads claim shard indices dynamically from a shared counter
    /// (work-conserving; the classic runtime).
    #[default]
    Dynamic,
    /// Work-stealing-free static shard→thread assignment: contiguous
    /// blocks of shards, one block per thread ([`StaticAssignment`]).
    Static,
}

/// Which cluster runtime executes the supersteps: a (schedule, router)
/// pair, plus — for [`RuntimeKind::Dist`] — a transport. All runtimes
/// are **bit-identical** in every model-level observable — solutions,
/// message delivery, [`crate::metrics::Metrics`] — so the choice is an
/// execution-substrate knob exactly like the thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeKind {
    /// Dynamic scheduling + sequential global message merge (the
    /// pre-shard engine, kept as the reference path).
    #[default]
    Classic,
    /// Static shard→thread assignment + columnar counting-sort routing
    /// ([`RouterKind::Columnar`]) with pooled
    /// [`RouterScratch`](crate::router::RouterScratch) buffers — the
    /// engine behind `Backend::Shard`.
    Shard,
    /// The distributed master/worker engine ([`crate::dist`]): static
    /// shard→worker blocks, exchanges shuffled through a real transport
    /// with barrier heartbeats and fault recovery — the engine behind
    /// `Backend::Dist`.
    Dist,
}

impl RuntimeKind {
    /// The schedule this runtime uses.
    pub fn schedule(self) -> SchedulePolicy {
        match self {
            RuntimeKind::Classic => SchedulePolicy::Dynamic,
            RuntimeKind::Shard | RuntimeKind::Dist => SchedulePolicy::Static,
        }
    }

    /// The routing plane this runtime uses (for `Dist` the plane that
    /// backs any exchange the transport does not carry).
    pub fn router(self) -> RouterKind {
        match self {
            RuntimeKind::Classic => RouterKind::Merge,
            RuntimeKind::Shard | RuntimeKind::Dist => RouterKind::Columnar,
        }
    }

    /// Short name for traces and bench labels
    /// (`"classic"` / `"shard"` / `"dist"`).
    pub fn name(self) -> &'static str {
        match self {
            RuntimeKind::Classic => "classic",
            RuntimeKind::Shard => "shard",
            RuntimeKind::Dist => "dist",
        }
    }
}

/// The process-wide default runtime: `MRLR_BACKEND=shard` selects the
/// sharded runtime, `MRLR_BACKEND=dist` the distributed one, anything
/// else (including unset or `mr`) the classic one. Read once and cached,
/// like [`crate::executor::default_threads`]. The CI
/// matrix runs the whole suite under all values — legal because the
/// runtimes are bit-identical.
pub fn default_runtime() -> RuntimeKind {
    static DEFAULT: OnceLock<RuntimeKind> = OnceLock::new();
    *DEFAULT.get_or_init(
        || match std::env::var("MRLR_BACKEND").ok().as_deref().map(str::trim) {
            Some("shard") => RuntimeKind::Shard,
            Some("dist") => RuntimeKind::Dist,
            _ => RuntimeKind::Classic,
        },
    )
}

/// Balanced contiguous partition of `count` shards over `workers`
/// threads: worker `w` owns [`StaticAssignment::chunk`]`(w)`, fixed for
/// the whole superstep (no stealing). The first `count % workers` chunks
/// are one shard larger, so block sizes differ by at most 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticAssignment {
    count: usize,
    workers: usize,
}

impl StaticAssignment {
    /// An assignment of `count` shards to at most `workers` threads
    /// (clamped so no worker owns an empty chunk unless `count == 0`).
    pub fn new(count: usize, workers: usize) -> Self {
        StaticAssignment {
            count,
            workers: workers.max(1).min(count.max(1)),
        }
    }

    /// Number of non-empty chunks.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shard range owned by worker `w`.
    pub fn chunk(&self, w: usize) -> Range<usize> {
        debug_assert!(w < self.workers);
        let base = self.count / self.workers;
        let extra = self.count % self.workers;
        let lo = w * base + w.min(extra);
        let hi = lo + base + usize::from(w < extra);
        lo..hi
    }
}

/// One timed executor pass over all shards: per-index results in shard-id
/// order plus the host wall-clock observations the cluster feeds into
/// [`crate::metrics::Metrics::record_timing`].
pub struct Pass<R> {
    /// Per-shard results, in shard-id order regardless of schedule.
    pub results: Vec<R>,
    /// Wall-clock nanoseconds for the whole pass.
    pub wall_nanos: u64,
    /// Nanoseconds spent in each shard's task, in shard-id order.
    pub task_nanos: Vec<u64>,
}

/// An [`Executor`] plus a [`SchedulePolicy`]: everything the cluster
/// facade needs to run one superstep's worth of shard tasks.
pub struct Scheduler {
    exec: Arc<dyn Executor>,
    policy: SchedulePolicy,
}

impl Scheduler {
    /// A scheduler running `policy` on `exec`.
    pub fn new(exec: Arc<dyn Executor>, policy: SchedulePolicy) -> Self {
        Scheduler { exec, policy }
    }

    /// The underlying executor.
    pub fn executor(&self) -> &Arc<dyn Executor> {
        &self.exec
    }

    /// The schedule in force.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// OS threads available to a pass.
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Runs `task(i)` for every `i in 0..count` under the policy:
    /// dynamically claimed indices, or one contiguous
    /// [`StaticAssignment`] chunk per executor task.
    fn run(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        match self.policy {
            SchedulePolicy::Dynamic => self.exec.run(count, task),
            SchedulePolicy::Static => {
                let assignment = StaticAssignment::new(count, self.exec.threads());
                if count == 0 {
                    return;
                }
                self.exec.run(assignment.workers(), &|w| {
                    for i in assignment.chunk(w) {
                        task(i);
                    }
                });
            }
        }
    }

    /// Runs `f(i)` for every index and returns the results **in index
    /// order** regardless of schedule.
    pub(crate) fn map_count<R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut out: Vec<Option<R>> = (0..count).map(|_| None).collect();
        let slots = RawSlots::new(out.as_mut_ptr());
        self.run(count, &|i| {
            // SAFETY: each index is claimed exactly once (dynamic counter
            // or disjoint static chunks), so each slot is written exactly
            // once with no aliasing.
            unsafe { *slots.slot(i) = Some(f(i)) };
        });
        out.into_iter()
            .map(|s| s.expect("scheduler ran every index"))
            .collect()
    }

    /// Index-ordered map over shared references.
    pub fn map_ref<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_count(items.len(), |i| f(i, &items[i]))
    }

    /// Index-ordered map with exclusive access to each item.
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let states = RawSlots::new(items.as_mut_ptr());
        // SAFETY: disjoint indices give exclusive access to `items[i]`.
        self.map_count(items.len(), |i| f(i, unsafe { &mut *states.slot(i) }))
    }

    /// [`Scheduler::map_mut`] with per-task and whole-pass wall-clock
    /// observation — the shape of every metered cluster superstep.
    pub fn timed_mut<T, R, F>(&self, items: &mut [T], f: F) -> Pass<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let pass = Instant::now();
        let timed = self.map_mut(items, |i, t| {
            let t0 = Instant::now();
            let r = f(i, t);
            (r, t0.elapsed().as_nanos() as u64)
        });
        let wall_nanos = pass.elapsed().as_nanos() as u64;
        let (results, task_nanos) = timed.into_iter().unzip();
        Pass {
            results,
            wall_nanos,
            task_nanos,
        }
    }

    /// [`Scheduler::map_ref`] with timing (read-only passes such as
    /// `aggregate` extraction).
    pub fn timed_ref<T, R, F>(&self, items: &[T], f: F) -> Pass<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let pass = Instant::now();
        let timed = self.map_ref(items, |i, t| {
            let t0 = Instant::now();
            let r = f(i, t);
            (r, t0.elapsed().as_nanos() as u64)
        });
        let wall_nanos = pass.elapsed().as_nanos() as u64;
        let (results, task_nanos) = timed.into_iter().unzip();
        Pass {
            results,
            wall_nanos,
            task_nanos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{SeqExecutor, ThreadPoolExecutor};

    #[test]
    fn static_assignment_is_a_balanced_partition() {
        for (count, workers) in [(10usize, 3usize), (7, 7), (100, 8), (3, 9), (0, 4), (1, 1)] {
            let a = StaticAssignment::new(count, workers);
            let mut covered = Vec::new();
            let mut sizes = Vec::new();
            for w in 0..a.workers() {
                let chunk = a.chunk(w);
                sizes.push(chunk.len());
                covered.extend(chunk);
            }
            assert_eq!(covered, (0..count).collect::<Vec<_>>(), "{count}/{workers}");
            if let (Some(&max), Some(&min)) = (sizes.iter().max(), sizes.iter().min()) {
                assert!(max - min <= 1, "unbalanced chunks {sizes:?}");
            }
        }
    }

    #[test]
    fn policies_agree_bit_for_bit() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1usize, 2, 4] {
            for policy in [SchedulePolicy::Dynamic, SchedulePolicy::Static] {
                let sched = Scheduler::new(Arc::new(ThreadPoolExecutor::new(threads)), policy);
                assert_eq!(sched.map_ref(&items, |_, &x| x * x), expected);
                let mut mutable = items.clone();
                let lens = sched.map_mut(&mut mutable, |i, x| {
                    *x += i;
                    *x
                });
                assert_eq!(lens, items.iter().map(|&x| 2 * x).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn timed_passes_report_per_task_nanos() {
        let sched = Scheduler::new(Arc::new(SeqExecutor), SchedulePolicy::Static);
        let mut items = vec![0u64; 8];
        let pass = sched.timed_mut(&mut items, |i, x| {
            *x = i as u64;
            i
        });
        assert_eq!(pass.results, (0..8).collect::<Vec<_>>());
        assert_eq!(pass.task_nanos.len(), 8);
        assert!(pass.wall_nanos > 0);
        let ro = sched.timed_ref(&items, |_, &x| x);
        assert_eq!(ro.results, (0..8u64).collect::<Vec<_>>());
    }

    #[test]
    fn runtime_kinds_pick_their_layers() {
        assert_eq!(RuntimeKind::Classic.schedule(), SchedulePolicy::Dynamic);
        assert_eq!(RuntimeKind::Classic.router(), RouterKind::Merge);
        assert_eq!(RuntimeKind::Shard.schedule(), SchedulePolicy::Static);
        assert_eq!(RuntimeKind::Shard.router(), RouterKind::Columnar);
        assert_eq!(RuntimeKind::Shard.name(), "shard");
        assert_eq!(RuntimeKind::Dist.schedule(), SchedulePolicy::Static);
        assert_eq!(RuntimeKind::Dist.router(), RouterKind::Columnar);
        assert_eq!(RuntimeKind::Dist.name(), "dist");
    }

    #[test]
    fn empty_and_degenerate_counts() {
        let sched = Scheduler::new(Arc::new(ThreadPoolExecutor::new(4)), SchedulePolicy::Static);
        let empty: Vec<usize> = sched.map_count(0, |_| unreachable!("no tasks"));
        assert!(empty.is_empty());
        assert_eq!(sched.map_count(1, |i| i), vec![0]);
    }
}
