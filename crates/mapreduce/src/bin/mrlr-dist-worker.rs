//! Standalone dist worker binary: connects to the rendezvous socket named
//! by `MRLR_DIST_SOCKET` and serves the shuffle-region protocol until
//! shutdown. The `mrlr` CLI embeds the same entry point (it re-enters as
//! a worker when the variable is set); this dedicated binary exists so
//! process-mode tests can point `MRLR_DIST_WORKER_BIN` at a known-good
//! worker without re-executing a test harness.

fn main() {
    std::process::exit(mrlr_mapreduce::dist::worker::worker_main());
}
