//! The variable-size payload plane: flat `(head, &[T])` messages.
//!
//! PR 7's columnar router made the *fixed-size* message path
//! allocation-free, but a driver that ships a list per message — a
//! neighbour list, a forwarding set — still paid one `Vec` per message
//! at every layer: the produce closure allocated it, the router moved
//! it, the dist wire re-encoded it, and the consume pass dropped it.
//! This module removes that class entirely by storing variable-size
//! payloads **struct-of-arrays**:
//!
//! * [`PayloadOutbox`] stages messages as four flat columns — heads,
//!   destinations, payload lengths, and one flat element arena — either
//!   whole-slice ([`PayloadOutbox::send`]) or element-by-element through
//!   a [`PayloadWriter`] handle ([`PayloadOutbox::push_payload`]), so a
//!   produce closure never materializes a `Vec` per message.
//! * `route_payload` delivers with the same stable counting sort as the
//!   fixed-size plane, except the prefix sums run over *two* axes
//!   (message slots and element slots): each message lands as an
//!   `(offset, len)` span in one pooled element arena, and element data
//!   is moved exactly once, by block `copy_nonoverlapping` — never
//!   touched twice.
//! * [`PayloadInbox`] reads messages back as `(head, &[T])` with the
//!   payload **borrowed zero-copy from the arena**, in the same
//!   `(sender id, send order)` order every other plane guarantees.
//!
//! All buffers cycle through the cluster's [`RouterScratch`] exactly
//! like the fixed-size path: heads and element arenas share the
//! per-type pools, length/span columns share the `usize`/range pools,
//! so steady-state supersteps allocate nothing. [`RouterKind::Merge`]
//! remains the implementation-independent reference: its payload
//! delivery builds genuinely nested `Vec<(H, Vec<T>)>` inboxes with no
//! arena or counting sort, and the equivalence tests compare the two.
//!
//! Head and element types are `Copy`: that is what lets the scatter be
//! a raw block copy, the inbox a borrowing view, and the arenas
//! recyclable without drop bookkeeping. Every message type the registry
//! drivers ship (vertex ids, scalar tuples) already is.

use crate::executor::RawSlots;
use crate::router::{RouterKind, RouterScratch};
use crate::shard::MachineId;
use crate::superstep::Scheduler;
use crate::words::WordSized;

/// Outgoing variable-size messages staged by one machine: flat columns
/// `heads`/`dsts`/`lens` plus one flat element arena, so staging `k`
/// messages performs zero per-message allocations once the pooled
/// columns have warmed up. Staged word volume is tracked incrementally
/// (a message costs `head.words() + 1 + Σ element words` — identical to
/// the `(head, Vec<T>)` tuple it replaces).
#[derive(Debug)]
pub struct PayloadOutbox<H, T> {
    machines: usize,
    pub(crate) heads: Vec<H>,
    pub(crate) dsts: Vec<MachineId>,
    pub(crate) lens: Vec<usize>,
    pub(crate) elems: Vec<T>,
    staged_words: usize,
}

impl<H: Copy, T: Copy> PayloadOutbox<H, T> {
    /// An empty outbox addressing `machines` destinations (tests stage
    /// outboxes directly; the cluster always supplies pooled buffers).
    #[cfg(test)]
    pub(crate) fn new(machines: usize) -> Self {
        PayloadOutbox::with_buffers(machines, Vec::new(), Vec::new(), Vec::new(), Vec::new())
    }

    /// An empty outbox reusing pooled column buffers.
    pub(crate) fn with_buffers(
        machines: usize,
        heads: Vec<H>,
        dsts: Vec<MachineId>,
        lens: Vec<usize>,
        elems: Vec<T>,
    ) -> Self {
        debug_assert!(heads.is_empty() && dsts.is_empty() && lens.is_empty() && elems.is_empty());
        PayloadOutbox {
            machines,
            heads,
            dsts,
            lens,
            elems,
            staged_words: 0,
        }
    }

    /// Stages one message whose payload is already a slice.
    pub fn send(&mut self, dst: MachineId, head: H, payload: &[T])
    where
        H: WordSized,
        T: WordSized,
    {
        assert!(dst < self.machines, "destination {dst} out of range");
        let mut words = head.words() + 1;
        for e in payload {
            words += e.words();
        }
        self.staged_words += words;
        self.heads.push(head);
        self.dsts.push(dst);
        self.lens.push(payload.len());
        self.elems.extend_from_slice(payload);
    }

    /// Begins one message and returns a writer that appends payload
    /// elements straight into the flat arena — the zero-alloc way to
    /// build a payload by filtering or transforming a source in place.
    /// The message is finalized (its length recorded) when the writer
    /// drops.
    pub fn push_payload(&mut self, dst: MachineId, head: H) -> PayloadWriter<'_, H, T>
    where
        H: WordSized,
        T: WordSized,
    {
        assert!(dst < self.machines, "destination {dst} out of range");
        self.staged_words += head.words() + 1;
        self.heads.push(head);
        self.dsts.push(dst);
        let start = self.elems.len();
        PayloadWriter {
            outbox: self,
            start,
        }
    }

    /// Number of staged messages.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// True if nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Total staged payload elements across all messages.
    pub fn total_elems(&self) -> usize {
        self.elems.len()
    }

    /// Total staged words (the sender's metered outgoing volume).
    pub(crate) fn staged_words(&self) -> usize {
        self.staged_words
    }

    /// Empties the columns in place (capacity intact).
    fn clear(&mut self) {
        self.heads.clear();
        self.dsts.clear();
        self.lens.clear();
        self.elems.clear();
        self.staged_words = 0;
    }

    /// Consumes the outbox, returning every (emptied) buffer to the
    /// pool.
    pub(crate) fn recycle_into(mut self, scratch: &mut RouterScratch)
    where
        H: Send + 'static,
        T: Send + 'static,
    {
        self.clear();
        scratch.put_columns::<H>((self.heads, self.dsts));
        scratch.put_usizes(self.lens);
        scratch.put_arena(self.elems);
    }
}

/// In-progress message on a [`PayloadOutbox`]: push elements, drop to
/// finalize. See [`PayloadOutbox::push_payload`].
pub struct PayloadWriter<'o, H, T> {
    outbox: &'o mut PayloadOutbox<H, T>,
    start: usize,
}

impl<H, T: Copy + WordSized> PayloadWriter<'_, H, T> {
    /// Appends one payload element to the message being built.
    pub fn push(&mut self, elem: T) {
        self.outbox.staged_words += elem.words();
        self.outbox.elems.push(elem);
    }
}

impl<H, T> Drop for PayloadWriter<'_, H, T> {
    fn drop(&mut self) {
        self.outbox.lens.push(self.outbox.elems.len() - self.start);
    }
}

/// Delivered variable-size messages for one exchange round. The merge
/// plane (and a dist fallback) holds genuinely nested per-destination
/// buffers; the columnar plane and the dist fast path hold flat arenas
/// with per-message spans and per-destination ranges. Both read back
/// identically through [`PayloadInbox`] views.
pub(crate) struct PayloadDelivery<H, T> {
    repr: PayloadRepr<H, T>,
    in_words: Vec<usize>,
}

enum PayloadRepr<H, T> {
    /// One owned `(head, payload)` buffer per destination.
    Nested(Vec<Vec<(H, Vec<T>)>>),
    /// Flat columns: destination `d` owns messages
    /// `ranges[d].0 .. ranges[d].0 + ranges[d].1`; message `i` owns
    /// elements `elems[spans[i].0 ..][.. spans[i].1]`.
    Flat {
        heads: Vec<H>,
        spans: Vec<(usize, usize)>,
        elems: Vec<T>,
        ranges: Vec<(usize, usize)>,
    },
}

impl<H: Copy, T: Copy> PayloadDelivery<H, T> {
    /// Wraps per-destination nested buffers produced outside the router.
    pub(crate) fn from_nested(inboxes: Vec<Vec<(H, Vec<T>)>>, in_words: Vec<usize>) -> Self {
        debug_assert_eq!(inboxes.len(), in_words.len());
        PayloadDelivery {
            repr: PayloadRepr::Nested(inboxes),
            in_words,
        }
    }

    /// Wraps flat columns built outside the router (the dist shuffle
    /// decodes wire payloads straight into these arenas).
    pub(crate) fn from_flat(
        heads: Vec<H>,
        spans: Vec<(usize, usize)>,
        elems: Vec<T>,
        ranges: Vec<(usize, usize)>,
        in_words: Vec<usize>,
    ) -> Self {
        debug_assert_eq!(heads.len(), spans.len());
        debug_assert_eq!(ranges.len(), in_words.len());
        PayloadDelivery {
            repr: PayloadRepr::Flat {
                heads,
                spans,
                elems,
                ranges,
            },
            in_words,
        }
    }

    /// Words received per destination.
    pub(crate) fn in_words(&self) -> &[usize] {
        &self.in_words
    }

    /// Splits the delivery into one [`PayloadInbox`] per destination
    /// plus the buffers backing them.
    ///
    /// # Safety
    ///
    /// For a flat delivery the inboxes borrow straight out of the
    /// returned [`PayloadDeliveryBuffers`]' arenas; the caller must keep
    /// the buffers alive until every inbox has been dropped (and only
    /// then recycle them).
    pub(crate) unsafe fn into_inboxes(
        self,
    ) -> (Vec<PayloadInbox<H, T>>, PayloadDeliveryBuffers<H, T>) {
        match self.repr {
            PayloadRepr::Nested(inboxes) => {
                let views = inboxes.into_iter().map(PayloadInbox::owned).collect();
                (
                    views,
                    PayloadDeliveryBuffers {
                        heads: None,
                        spans: None,
                        elems: None,
                        ranges: None,
                        in_words: self.in_words,
                    },
                )
            }
            PayloadRepr::Flat {
                heads,
                spans,
                elems,
                ranges,
            } => {
                // Unlike the fixed-size arena (whose elements move out
                // by value), payload inboxes only *read*: `Copy` heads
                // and elements stay in the arenas, which keep their
                // length until the recycle clears them.
                let views = ranges
                    .iter()
                    .map(|&(off, count)| unsafe {
                        PayloadInbox::raw(
                            heads.as_ptr().add(off),
                            spans.as_ptr().add(off),
                            elems.as_ptr(),
                            count,
                        )
                    })
                    .collect();
                (
                    views,
                    PayloadDeliveryBuffers {
                        heads: Some(heads),
                        spans: Some(spans),
                        elems: Some(elems),
                        ranges: Some(ranges),
                        in_words: self.in_words,
                    },
                )
            }
        }
    }

    /// Materializes every inbox as owned nested data — test-only view
    /// for comparing planes.
    #[cfg(test)]
    pub(crate) fn nested(&self) -> Vec<Vec<(H, Vec<T>)>> {
        match &self.repr {
            PayloadRepr::Nested(inboxes) => inboxes.clone(),
            PayloadRepr::Flat {
                heads,
                spans,
                elems,
                ranges,
            } => ranges
                .iter()
                .map(|&(off, count)| {
                    (off..off + count)
                        .map(|i| {
                            let (eoff, len) = spans[i];
                            (heads[i], elems[eoff..eoff + len].to_vec())
                        })
                        .collect()
                })
                .collect(),
        }
    }
}

/// The buffers backing a round's [`PayloadInbox`]es, held by the
/// cluster for the duration of the consume pass and then recycled.
pub(crate) struct PayloadDeliveryBuffers<H, T> {
    heads: Option<Vec<H>>,
    spans: Option<Vec<(usize, usize)>>,
    elems: Option<Vec<T>>,
    ranges: Option<Vec<(usize, usize)>>,
    in_words: Vec<usize>,
}

impl<H, T> PayloadDeliveryBuffers<H, T> {
    /// Returns the backing buffers to the pool. Call after the consume
    /// pass has dropped every [`PayloadInbox`].
    pub(crate) fn recycle(self, scratch: &mut RouterScratch)
    where
        H: Send + 'static,
        T: Send + 'static,
    {
        if let Some(mut heads) = self.heads {
            heads.clear();
            scratch.put_arena(heads);
        }
        if let Some(spans) = self.spans {
            scratch.put_ranges(spans);
        }
        if let Some(mut elems) = self.elems {
            elems.clear();
            scratch.put_arena(elems);
        }
        if let Some(ranges) = self.ranges {
            scratch.put_ranges(ranges);
        }
        scratch.put_usizes(self.in_words);
    }
}

/// The variable-size messages delivered to one machine in one exchange
/// round, in `(sender id, send order)` order. Read them with
/// [`PayloadInbox::next_msg`], which hands back each head by value and
/// its payload as a **zero-copy slice** borrowed from the delivery
/// arena (valid until the next call).
pub struct PayloadInbox<H, T> {
    repr: PayloadInboxRepr<H, T>,
}

enum PayloadInboxRepr<H, T> {
    /// Messages owned outright (merge plane, dist fallback). The
    /// current message is parked so its payload can be lent out.
    Owned {
        iter: std::vec::IntoIter<(H, Vec<T>)>,
        current: Option<(H, Vec<T>)>,
    },
    /// A borrowing view over the columnar plane's arenas: heads and
    /// spans advance per message, payload slices point into the shared
    /// element arena.
    Flat {
        heads: *const H,
        spans: *const (usize, usize),
        elems: *const T,
        remaining: usize,
    },
}

// SAFETY: a flat `PayloadInbox` only reads `Copy` data from arena
// ranges no other inbox touches (ranges are disjoint and the backing
// buffers outlive the consume pass per `into_inboxes`' contract).
unsafe impl<H: Send, T: Send> Send for PayloadInbox<H, T> {}

impl<H, T> Default for PayloadInbox<H, T> {
    fn default() -> Self {
        PayloadInbox::owned(Vec::new())
    }
}

impl<H, T> PayloadInbox<H, T> {
    pub(crate) fn owned(msgs: Vec<(H, Vec<T>)>) -> Self {
        PayloadInbox {
            repr: PayloadInboxRepr::Owned {
                iter: msgs.into_iter(),
                current: None,
            },
        }
    }

    /// # Safety
    ///
    /// `heads`/`spans` must point at `len` initialized slots, `elems` at
    /// an arena covering every span, all backed by allocations that
    /// outlive this inbox.
    pub(crate) unsafe fn raw(
        heads: *const H,
        spans: *const (usize, usize),
        elems: *const T,
        len: usize,
    ) -> Self {
        PayloadInbox {
            repr: PayloadInboxRepr::Flat {
                heads,
                spans,
                elems,
                remaining: len,
            },
        }
    }

    /// Messages not yet read.
    pub fn len(&self) -> usize {
        match &self.repr {
            PayloadInboxRepr::Owned { iter, .. } => iter.len(),
            PayloadInboxRepr::Flat { remaining, .. } => *remaining,
        }
    }

    /// True when every message has been read (or none arrived).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The next message in delivery order: its head by value and its
    /// payload as a slice valid until the next `next_msg` call.
    pub fn next_msg(&mut self) -> Option<(H, &[T])>
    where
        H: Copy,
    {
        match &mut self.repr {
            PayloadInboxRepr::Owned { iter, current } => {
                *current = iter.next();
                current.as_ref().map(|(h, v)| (*h, v.as_slice()))
            }
            PayloadInboxRepr::Flat {
                heads,
                spans,
                elems,
                remaining,
            } => {
                if *remaining == 0 {
                    return None;
                }
                // SAFETY: `remaining > 0` slots are in bounds per `raw`'s
                // contract; every span lies inside the element arena.
                unsafe {
                    let head = **heads;
                    let (off, len) = **spans;
                    *heads = heads.add(1);
                    *spans = spans.add(1);
                    *remaining -= 1;
                    Some((head, std::slice::from_raw_parts(elems.add(off), len)))
                }
            }
        }
    }

    /// Drains the remaining messages into owned nested data.
    pub fn into_nested(mut self) -> Vec<(H, Vec<T>)>
    where
        H: Copy,
        T: Copy,
    {
        let mut out = Vec::with_capacity(self.len());
        while let Some((head, payload)) = self.next_msg() {
            out.push((head, payload.to_vec()));
        }
        out
    }
}

/// Routes all staged payload outboxes to their destinations under
/// `kind`. Outboxes arrive in sender-id order; delivery order is
/// `(sender id, send order)` on every plane. Emptied outbox columns
/// (and, for the columnar plane, the counting scratch) are recycled
/// into `scratch`.
pub(crate) fn route_payload<H, T>(
    kind: RouterKind,
    sched: &Scheduler,
    machines: usize,
    outboxes: Vec<PayloadOutbox<H, T>>,
    scratch: &mut RouterScratch,
) -> PayloadDelivery<H, T>
where
    H: Copy + WordSized + Send + 'static,
    T: Copy + WordSized + Send + 'static,
{
    match kind {
        RouterKind::Merge => route_payload_merge(machines, outboxes, scratch),
        RouterKind::Columnar => route_payload_columnar(sched, machines, outboxes, scratch),
    }
}

/// The reference plane: a sequential pass appending `(head, Vec<T>)`
/// pairs into freshly allocated nested inboxes. Deliberately independent
/// of the flat machinery so the equivalence tests compare two genuinely
/// different implementations.
fn route_payload_merge<H, T>(
    machines: usize,
    outboxes: Vec<PayloadOutbox<H, T>>,
    scratch: &mut RouterScratch,
) -> PayloadDelivery<H, T>
where
    H: Copy + WordSized + Send + 'static,
    T: Copy + WordSized + Send + 'static,
{
    let mut inboxes: Vec<Vec<(H, Vec<T>)>> = (0..machines).map(|_| Vec::new()).collect();
    let mut in_words = scratch.take_usizes(machines);
    for outbox in outboxes {
        let mut off = 0usize;
        for i in 0..outbox.lens.len() {
            let dst = outbox.dsts[i];
            let len = outbox.lens[i];
            let payload = outbox.elems[off..off + len].to_vec();
            off += len;
            in_words[dst] += outbox.heads[i].words() + payload.words();
            inboxes[dst].push((outbox.heads[i], payload));
        }
        outbox.recycle_into(scratch);
    }
    PayloadDelivery::from_nested(inboxes, in_words)
}

/// The flat plane: a two-axis counting sort. One counting pass
/// accumulates per-destination message counts, element counts and word
/// volume; the prefix sums lay out both the message columns
/// (heads/spans) and the element arena; the stable scatter then writes
/// each head and span once and block-copies each payload once. Dense
/// rounds run the count and scatter passes concurrently over senders
/// (disjoint matrix rows / cursor blocks, as in the fixed-size plane).
fn route_payload_columnar<H, T>(
    sched: &Scheduler,
    machines: usize,
    mut outboxes: Vec<PayloadOutbox<H, T>>,
    scratch: &mut RouterScratch,
) -> PayloadDelivery<H, T>
where
    H: Copy + WordSized + Send + 'static,
    T: Copy + WordSized + Send + 'static,
{
    let senders = outboxes.len();
    let total_msgs: usize = outboxes.iter().map(PayloadOutbox::len).sum();
    let total_elems: usize = outboxes.iter().map(PayloadOutbox::total_elems).sum();
    let mut heads: Vec<H> = scratch.take_arena();
    heads.reserve(total_msgs);
    let mut elems: Vec<T> = scratch.take_arena();
    elems.reserve(total_elems);
    let mut spans = scratch.take_ranges(total_msgs);
    let mut ranges = scratch.take_ranges(machines);
    let mut in_words = scratch.take_usizes(machines);

    let parallel =
        sched.threads() > 1 && total_msgs.saturating_mul(4) >= senders.saturating_mul(machines);
    if parallel {
        // Stage 1: sender `s` fills row `s` of the message-count,
        // element-count and word matrices (disjoint rows — the pass
        // parallelizes over senders with no synchronization).
        let mut mcounts = scratch.take_usizes(senders * machines);
        let mut ecounts = scratch.take_usizes(senders * machines);
        let mut words = scratch.take_usizes(senders * machines);
        let mcount_rows = RawSlots::new(mcounts.as_mut_ptr());
        let ecount_rows = RawSlots::new(ecounts.as_mut_ptr());
        let word_rows = RawSlots::new(words.as_mut_ptr());
        sched.map_mut(&mut outboxes, |s, outbox| {
            // SAFETY: sender `s` writes only its own `machines`-wide
            // rows; rows are disjoint and the matrices outlive the pass.
            let (mrow, erow, wrow) = unsafe {
                (
                    std::slice::from_raw_parts_mut(mcount_rows.slot(s * machines), machines),
                    std::slice::from_raw_parts_mut(ecount_rows.slot(s * machines), machines),
                    std::slice::from_raw_parts_mut(word_rows.slot(s * machines), machines),
                )
            };
            let mut off = 0usize;
            for (i, &dst) in outbox.dsts.iter().enumerate() {
                let len = outbox.lens[i];
                mrow[dst] += 1;
                erow[dst] += len;
                let mut w = outbox.heads[i].words() + 1;
                for e in &outbox.elems[off..off + len] {
                    w += e.words();
                }
                wrow[dst] += w;
                off += len;
            }
        });
        // Column-major prefix sums over both axes: `mcounts[s][d]`
        // becomes the message slot where sender `s`'s block for `d`
        // starts, `ecounts[s][d]` the matching element-arena cursor.
        let mut moff = 0usize;
        let mut eoff = 0usize;
        for (d, range) in ranges.iter_mut().enumerate() {
            let mstart = moff;
            let mut dwords = 0usize;
            for s in 0..senders {
                let cell = s * machines + d;
                let mc = mcounts[cell];
                mcounts[cell] = moff;
                moff += mc;
                let ec = ecounts[cell];
                ecounts[cell] = eoff;
                eoff += ec;
                dwords += words[cell];
            }
            *range = (mstart, moff - mstart);
            in_words[d] = dwords;
        }
        debug_assert_eq!(moff, total_msgs);
        debug_assert_eq!(eoff, total_elems);
        // Stage 2: stable scatter, concurrent over senders — heads and
        // spans write to this sender's message slots, payloads
        // block-copy to this sender's element cursors; all blocks are
        // disjoint by construction of the prefix sums.
        let mcursor_rows = RawSlots::new(mcounts.as_mut_ptr());
        let ecursor_rows = RawSlots::new(ecounts.as_mut_ptr());
        let heads_base = RawSlots::new(heads.as_mut_ptr());
        let spans_base = RawSlots::new(spans.as_mut_ptr());
        let elems_base = RawSlots::new(elems.as_mut_ptr());
        sched.map_mut(&mut outboxes, |s, outbox| {
            let n = outbox.lens.len();
            let mut off = 0usize;
            // SAFETY: disjoint cursor blocks per the prefix sums; `Copy`
            // data is duplicated into the arenas, sources just clear.
            unsafe {
                let mcur =
                    std::slice::from_raw_parts_mut(mcursor_rows.slot(s * machines), machines);
                let ecur =
                    std::slice::from_raw_parts_mut(ecursor_rows.slot(s * machines), machines);
                for i in 0..n {
                    let dst = *outbox.dsts.get_unchecked(i);
                    let len = *outbox.lens.get_unchecked(i);
                    heads_base
                        .slot(mcur[dst])
                        .write(*outbox.heads.get_unchecked(i));
                    spans_base.slot(mcur[dst]).write((ecur[dst], len));
                    mcur[dst] += 1;
                    std::ptr::copy_nonoverlapping(
                        outbox.elems.as_ptr().add(off),
                        elems_base.slot(ecur[dst]),
                        len,
                    );
                    ecur[dst] += len;
                    off += len;
                }
            }
            outbox.clear();
        });
        // SAFETY: every slot in both arenas was written exactly once.
        unsafe {
            heads.set_len(total_msgs);
            elems.set_len(total_elems);
        }
        scratch.put_usizes(mcounts);
        scratch.put_usizes(ecounts);
        scratch.put_usizes(words);
    } else {
        // Sequential two-pass counting sort over both axes.
        let mut mcursors = scratch.take_usizes(machines);
        let mut ecursors = scratch.take_usizes(machines);
        for outbox in &outboxes {
            let mut off = 0usize;
            for (i, &dst) in outbox.dsts.iter().enumerate() {
                let len = outbox.lens[i];
                mcursors[dst] += 1;
                ecursors[dst] += len;
                let mut w = outbox.heads[i].words() + 1;
                for e in &outbox.elems[off..off + len] {
                    w += e.words();
                }
                in_words[dst] += w;
                off += len;
            }
        }
        let mut moff = 0usize;
        let mut eoff = 0usize;
        for (d, range) in ranges.iter_mut().enumerate() {
            let mc = mcursors[d];
            let ec = ecursors[d];
            *range = (moff, mc);
            mcursors[d] = moff;
            ecursors[d] = eoff;
            moff += mc;
            eoff += ec;
        }
        debug_assert_eq!(moff, total_msgs);
        debug_assert_eq!(eoff, total_elems);
        let heads_base = heads.as_mut_ptr();
        let elems_base = elems.as_mut_ptr();
        for outbox in &mut outboxes {
            let n = outbox.lens.len();
            let mut off = 0usize;
            // SAFETY: as in the parallel scatter — every slot is written
            // exactly once at its (sender, dst) block cursor.
            unsafe {
                for i in 0..n {
                    let dst = *outbox.dsts.get_unchecked(i);
                    let len = *outbox.lens.get_unchecked(i);
                    let mslot = mcursors[dst];
                    mcursors[dst] += 1;
                    let eslot = ecursors[dst];
                    ecursors[dst] += len;
                    heads_base.add(mslot).write(*outbox.heads.get_unchecked(i));
                    *spans.get_unchecked_mut(mslot) = (eslot, len);
                    std::ptr::copy_nonoverlapping(
                        outbox.elems.as_ptr().add(off),
                        elems_base.add(eslot),
                        len,
                    );
                    off += len;
                }
            }
            outbox.clear();
        }
        // SAFETY: every slot in both arenas was written exactly once.
        unsafe {
            heads.set_len(total_msgs);
            elems.set_len(total_elems);
        }
        scratch.put_usizes(mcursors);
        scratch.put_usizes(ecursors);
    }
    for outbox in outboxes {
        outbox.recycle_into(scratch);
    }
    PayloadDelivery::from_flat(heads, spans, elems, ranges, in_words)
}

/// Per-machine staging buffer for a payload gather: like a
/// [`PayloadOutbox`] without destinations (everything goes to the
/// central machine). Drivers fill it with [`PayloadSink::push_slice`]
/// or element-by-element via [`PayloadSink::begin`].
pub struct PayloadSink<H, T> {
    pub(crate) heads: Vec<H>,
    pub(crate) lens: Vec<usize>,
    pub(crate) elems: Vec<T>,
    words: usize,
}

impl<H: Copy, T: Copy> PayloadSink<H, T> {
    /// An empty sink reusing pooled buffers.
    pub(crate) fn with_buffers(heads: Vec<H>, lens: Vec<usize>, elems: Vec<T>) -> Self {
        debug_assert!(heads.is_empty() && lens.is_empty() && elems.is_empty());
        PayloadSink {
            heads,
            lens,
            elems,
            words: 0,
        }
    }

    /// Stages one message whose payload is already a slice.
    pub fn push_slice(&mut self, head: H, payload: &[T])
    where
        H: WordSized,
        T: WordSized,
    {
        let mut words = head.words() + 1;
        for e in payload {
            words += e.words();
        }
        self.words += words;
        self.heads.push(head);
        self.lens.push(payload.len());
        self.elems.extend_from_slice(payload);
    }

    /// Begins one message; push elements on the returned writer, which
    /// finalizes the message when dropped.
    pub fn begin(&mut self, head: H) -> PayloadSinkWriter<'_, H, T>
    where
        H: WordSized,
        T: WordSized,
    {
        self.words += head.words() + 1;
        self.heads.push(head);
        let start = self.elems.len();
        PayloadSinkWriter { sink: self, start }
    }

    /// Number of staged messages.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// True if nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Total staged words (this machine's metered outgoing volume).
    pub(crate) fn words(&self) -> usize {
        self.words
    }

    /// Consumes the sink, returning every (emptied) buffer to the pool.
    pub(crate) fn recycle_into(mut self, scratch: &mut RouterScratch)
    where
        H: Send + 'static,
        T: Send + 'static,
    {
        self.heads.clear();
        self.lens.clear();
        self.elems.clear();
        scratch.put_arena(self.heads);
        scratch.put_usizes(self.lens);
        scratch.put_arena(self.elems);
    }
}

/// In-progress message on a [`PayloadSink`]: push elements, drop to
/// finalize. See [`PayloadSink::begin`].
pub struct PayloadSinkWriter<'s, H, T> {
    sink: &'s mut PayloadSink<H, T>,
    start: usize,
}

impl<H, T: Copy + WordSized> PayloadSinkWriter<'_, H, T> {
    /// Appends one payload element to the message being built.
    pub fn push(&mut self, elem: T) {
        self.sink.words += elem.words();
        self.sink.elems.push(elem);
    }
}

impl<H, T> Drop for PayloadSinkWriter<'_, H, T> {
    fn drop(&mut self) {
        self.sink.lens.push(self.sink.elems.len() - self.start);
    }
}

/// The centrally gathered result of a payload gather: every machine's
/// staged messages flattened in machine order, stored flat
/// (heads/spans/element arena) and read back as `(head, &[T])`.
pub struct PayloadBatch<H, T> {
    heads: Vec<H>,
    spans: Vec<(usize, usize)>,
    elems: Vec<T>,
}

impl<H, T> Default for PayloadBatch<H, T> {
    fn default() -> Self {
        PayloadBatch {
            heads: Vec::new(),
            spans: Vec::new(),
            elems: Vec::new(),
        }
    }
}

impl<H: Copy, T: Copy> PayloadBatch<H, T> {
    /// Appends a machine's sink contents (already in that machine's send
    /// order), leaving the sink empty for recycling.
    pub(crate) fn append_sink(&mut self, sink: &mut PayloadSink<H, T>) {
        let mut off = self.elems.len();
        self.heads.extend_from_slice(&sink.heads);
        self.elems.extend_from_slice(&sink.elems);
        for &len in &sink.lens {
            self.spans.push((off, len));
            off += len;
        }
        sink.heads.clear();
        sink.lens.clear();
        sink.elems.clear();
        sink.words = 0;
    }

    /// Number of gathered messages.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// True when nothing was gathered.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// The `i`-th message's head.
    pub fn head(&self, i: usize) -> H {
        self.heads[i]
    }

    /// The `i`-th message's payload.
    pub fn payload(&self, i: usize) -> &[T] {
        let (off, len) = self.spans[i];
        &self.elems[off..off + len]
    }

    /// The `i`-th message.
    pub fn get(&self, i: usize) -> (H, &[T]) {
        (self.head(i), self.payload(i))
    }

    /// Iterates the messages in gathered (machine id, send) order.
    pub fn iter(&self) -> impl Iterator<Item = (H, &[T])> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ThreadPoolExecutor;
    use crate::rng::DetRng;
    use crate::superstep::SchedulePolicy;
    use std::sync::Arc;

    fn sched(threads: usize, policy: SchedulePolicy) -> Scheduler {
        Scheduler::new(Arc::new(ThreadPoolExecutor::new(threads)), policy)
    }

    fn fill_random(out: &mut PayloadOutbox<u64, u64>, s: usize, volume: usize, seed: u64) {
        let mut rng = DetRng::derive(seed, &[s as u64]);
        for k in 0..volume {
            let dst = rng.range(out.machines as u64) as usize;
            let len = rng.range(5) as usize; // includes empty payloads
            let head = (s * 1000 + k) as u64;
            if k % 2 == 0 {
                let payload: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
                out.send(dst, head, &payload);
            } else {
                let mut w = out.push_payload(dst, head);
                for _ in 0..len {
                    w.push(rng.next_u64());
                }
            }
        }
    }

    fn random_outboxes(machines: usize, volume: usize, seed: u64) -> Vec<PayloadOutbox<u64, u64>> {
        (0..machines)
            .map(|s| {
                let mut out = PayloadOutbox::new(machines);
                fill_random(&mut out, s, volume, seed);
                out
            })
            .collect()
    }

    /// Random variable-size traffic: both planes must deliver identical
    /// messages and word counts at every thread count, whether payloads
    /// were staged as slices or through writer handles.
    #[test]
    fn payload_planes_are_bit_identical() {
        for (machines, volume, seed) in [(1usize, 5usize, 1u64), (4, 40, 2), (9, 160, 3)] {
            let s1 = sched(1, SchedulePolicy::Dynamic);
            let mut scratch = RouterScratch::default();
            let reference = route_payload(
                RouterKind::Merge,
                &s1,
                machines,
                random_outboxes(machines, volume, seed),
                &mut scratch,
            );
            for threads in [1usize, 2, 4] {
                for policy in [SchedulePolicy::Dynamic, SchedulePolicy::Static] {
                    let s = sched(threads, policy);
                    let got = route_payload(
                        RouterKind::Columnar,
                        &s,
                        machines,
                        random_outboxes(machines, volume, seed),
                        &mut scratch,
                    );
                    assert_eq!(got.nested(), reference.nested(), "threads {threads}");
                    assert_eq!(got.in_words(), reference.in_words(), "threads {threads}");
                }
            }
        }
    }

    /// Buffer pooling across rounds must not perturb delivery.
    #[test]
    fn pooled_payload_scratch_is_invisible_across_rounds() {
        let machines = 6;
        let s4 = sched(4, SchedulePolicy::Static);
        let s1 = sched(1, SchedulePolicy::Dynamic);
        let mut scratch = RouterScratch::default();
        for round in 0..12u64 {
            let volume = [0usize, 3, 77, 5, 150][round as usize % 5];
            let mut fresh = RouterScratch::default();
            let want = route_payload(
                RouterKind::Merge,
                &s1,
                machines,
                random_outboxes(machines, volume, round),
                &mut fresh,
            );
            let got = route_payload(
                RouterKind::Columnar,
                &s4,
                machines,
                random_outboxes(machines, volume, round),
                &mut scratch,
            );
            assert_eq!(got.nested(), want.nested(), "round {round}");
            assert_eq!(got.in_words(), want.in_words(), "round {round}");
        }
    }

    /// Steady state: after the first columnar round warms the pool, a
    /// same-shape round must neither grow nor shrink it.
    #[test]
    fn pool_is_steady_state_stable() {
        let machines = 4;
        let s = sched(1, SchedulePolicy::Dynamic);
        let mut scratch = RouterScratch::default();
        // Stage from the pool, as the cluster does: otherwise every round
        // donates its freshly allocated outbox buffers and the pool grows
        // by construction rather than by leak.
        let run = |scratch: &mut RouterScratch| {
            let outboxes: Vec<PayloadOutbox<u64, u64>> = (0..machines)
                .map(|m| {
                    let (heads, dsts) = scratch.take_columns::<u64>();
                    let lens = scratch.take_usizes_empty();
                    let elems = scratch.take_arena::<u64>();
                    let mut out = PayloadOutbox::with_buffers(machines, heads, dsts, lens, elems);
                    fill_random(&mut out, m, 50, 7);
                    out
                })
                .collect();
            let d = route_payload(RouterKind::Columnar, &s, machines, outboxes, scratch);
            // SAFETY: buffers outlive the (unused) views.
            let (views, buffers) = unsafe { d.into_inboxes() };
            drop(views);
            buffers.recycle(scratch);
        };
        run(&mut scratch);
        let warm = scratch.pooled_buffers();
        assert!(warm > 0);
        for _ in 0..3 {
            run(&mut scratch);
            assert_eq!(scratch.pooled_buffers(), warm);
        }
    }

    #[test]
    #[allow(clippy::identity_op)] // `2 + 0` spells head+len + empty payload
    fn delivery_is_sender_then_send_order_with_zero_copy_views() {
        let s = sched(4, SchedulePolicy::Static);
        let mut scratch = RouterScratch::default();
        let mut outboxes: Vec<PayloadOutbox<u32, u64>> =
            (0..3).map(|_| PayloadOutbox::new(3)).collect();
        outboxes[2].send(0, 20, &[7, 8]);
        outboxes[2].send(0, 21, &[]);
        outboxes[0].send(0, 1, &[9]);
        outboxes[1].send(2, 12, &[1, 2, 3]);
        let d = route_payload(RouterKind::Columnar, &s, 3, outboxes, &mut scratch);
        assert_eq!(d.in_words(), &[(2 + 2) + (2 + 0) + (2 + 1), 0, 2 + 3]);
        // SAFETY: buffers outlive the views below.
        let (mut views, buffers) = unsafe { d.into_inboxes() };
        let mut first = views.remove(0);
        assert_eq!(first.len(), 3);
        assert_eq!(first.next_msg(), Some((1u32, &[9u64][..])));
        assert_eq!(first.next_msg(), Some((20, &[7, 8][..])));
        assert_eq!(first.next_msg(), Some((21, &[][..])));
        assert_eq!(first.next_msg(), None);
        assert!(views.remove(0).is_empty());
        assert_eq!(views.remove(0).into_nested(), vec![(12, vec![1, 2, 3])]);
        drop(first);
        buffers.recycle(&mut scratch);
        assert!(scratch.take_arena::<u64>().capacity() >= 6);
    }

    /// `in_words` folded into the delivery pass must match a recount of
    /// the nested view under the tuple definition it replaces.
    #[test]
    fn payload_in_words_matches_recomputation() {
        let machines = 5;
        let mut scratch = RouterScratch::default();
        for (kind, threads) in [(RouterKind::Merge, 1), (RouterKind::Columnar, 4)] {
            let s = sched(threads, SchedulePolicy::Dynamic);
            let d = route_payload(
                kind,
                &s,
                machines,
                random_outboxes(machines, 60, 99),
                &mut scratch,
            );
            let recomputed: Vec<usize> = d
                .nested()
                .iter()
                .map(|inbox| {
                    inbox
                        .iter()
                        .map(|(h, p)| h.words() + p.words())
                        .sum::<usize>()
                })
                .collect();
            assert_eq!(d.in_words(), &recomputed[..], "{kind:?}");
        }
    }

    /// Writer-handle staging must be indistinguishable from slice
    /// staging, including word accounting.
    #[test]
    fn writer_matches_slice_staging() {
        let mut a: PayloadOutbox<u64, u64> = PayloadOutbox::new(2);
        let mut b: PayloadOutbox<u64, u64> = PayloadOutbox::new(2);
        a.send(1, 5, &[10, 11, 12]);
        a.send(0, 6, &[]);
        {
            let mut w = b.push_payload(1, 5);
            w.push(10);
            w.push(11);
            w.push(12);
        }
        drop(b.push_payload(0, 6));
        assert_eq!(a.heads, b.heads);
        assert_eq!(a.dsts, b.dsts);
        assert_eq!(a.lens, b.lens);
        assert_eq!(a.elems, b.elems);
        assert_eq!(a.staged_words(), b.staged_words());
        assert_eq!(a.staged_words(), (1 + 1 + 3) + (1 + 1)); // heads + len words + elems
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn payload_outbox_rejects_bad_destination() {
        PayloadOutbox::<u64, u64>::new(2).send(2, 7, &[]);
    }

    #[test]
    fn sink_flattens_into_batch_in_machine_order() {
        let mut batch = PayloadBatch::default();
        let mut s0: PayloadSink<u32, u64> =
            PayloadSink::with_buffers(Vec::new(), Vec::new(), Vec::new());
        s0.push_slice(1, &[100]);
        {
            let mut w = s0.begin(2);
            w.push(200);
            w.push(201);
        }
        assert_eq!(s0.words(), (1 + 1 + 1) + (1 + 1 + 2));
        let mut s1: PayloadSink<u32, u64> =
            PayloadSink::with_buffers(Vec::new(), Vec::new(), Vec::new());
        s1.push_slice(3, &[]);
        batch.append_sink(&mut s0);
        batch.append_sink(&mut s1);
        assert!(s0.is_empty() && s1.is_empty());
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.get(0), (1, &[100u64][..]));
        assert_eq!(batch.get(1), (2, &[200, 201][..]));
        assert_eq!(batch.get(2), (3, &[][..]));
        assert_eq!(batch.iter().count(), 3);
    }
}
