//! Error types for the cluster simulator.

use std::fmt;

use crate::cluster::MachineId;

/// Which capacity budget a violation hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityKind {
    /// Resident machine state after a superstep.
    State,
    /// Total words received by a machine in one round.
    Inbox,
    /// Total words sent by a machine in one round.
    Outbox,
    /// Words forwarded by one machine in one hop of a broadcast tree.
    BroadcastHop,
    /// Words received by one machine in one hop of an aggregation tree.
    AggregateHop,
    /// Words gathered onto the central machine (input + resident state).
    CentralGather,
}

impl fmt::Display for CapacityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CapacityKind::State => "machine state",
            CapacityKind::Inbox => "inbox",
            CapacityKind::Outbox => "outbox",
            CapacityKind::BroadcastHop => "broadcast hop",
            CapacityKind::AggregateHop => "aggregate hop",
            CapacityKind::CentralGather => "central gather",
        };
        f.write_str(s)
    }
}

/// Errors produced by the simulator or by algorithms running on it.
#[derive(Debug, Clone, PartialEq)]
pub enum MrError {
    /// A machine exceeded its word budget.
    CapacityExceeded {
        /// Round at which the violation occurred.
        round: usize,
        /// Offending machine.
        machine: MachineId,
        /// Budget that was violated.
        kind: CapacityKind,
        /// Words used.
        used: usize,
        /// Words allowed.
        capacity: usize,
    },
    /// An algorithm executed one of the paper's explicit `fail` branches
    /// (e.g. Algorithm 1 line 6: `|U'| > 6η`). These occur with probability
    /// `exp(-poly(n))` under the intended parameters, but are reachable by
    /// adversarial configuration and must be surfaced, never masked.
    AlgorithmFailed {
        /// Round at which the algorithm failed.
        round: usize,
        /// Human-readable description of the failed guard.
        reason: String,
    },
    /// The cluster or algorithm was configured inconsistently.
    BadConfig(String),
    /// The problem instance admits no feasible solution
    /// (e.g. an element of a set-cover instance contained in no set).
    Infeasible(String),
    /// The distributed transport failed unrecoverably (a worker died more
    /// times than the retry budget allows, a region digest mismatched, or
    /// the protocol was violated).
    Dist(String),
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::CapacityExceeded {
                round,
                machine,
                kind,
                used,
                capacity,
            } => write!(
                f,
                "round {round}: machine {machine} exceeded {kind} capacity ({used} > {capacity} words)"
            ),
            MrError::AlgorithmFailed { round, reason } => {
                write!(f, "round {round}: algorithm failed: {reason}")
            }
            MrError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            MrError::Infeasible(msg) => write!(f, "infeasible instance: {msg}"),
            MrError::Dist(msg) => write!(f, "dist transport: {msg}"),
        }
    }
}

impl std::error::Error for MrError {}

/// Result alias used throughout the workspace.
pub type MrResult<T> = Result<T, MrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MrError::CapacityExceeded {
            round: 3,
            machine: 7,
            kind: CapacityKind::Inbox,
            used: 100,
            capacity: 50,
        };
        let s = e.to_string();
        assert!(s.contains("round 3"));
        assert!(s.contains("machine 7"));
        assert!(s.contains("inbox"));
        assert!(s.contains("100"));

        let e = MrError::AlgorithmFailed {
            round: 1,
            reason: "|U'| > 6eta".into(),
        };
        assert!(e.to_string().contains("|U'| > 6eta"));
    }
}
