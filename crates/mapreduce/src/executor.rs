//! The pluggable execution substrate behind the cluster's supersteps.
//!
//! An [`Executor`] runs one task per simulated machine, possibly on real
//! OS threads. The trait's only required operation, [`Executor::run`], is
//! an *unordered* index-parallel for-loop; every ordered observable is
//! reconstructed afterwards in machine-id order by the deterministic
//! helpers layered on top. The cluster's supersteps go through the
//! scheduling layer ([`crate::superstep::Scheduler`]), which adds the
//! dynamic-vs-static shard→thread policy; the direct helpers here —
//! [`map_slice`] / [`map_slice_mut`] (index-ordered maps),
//! [`for_each_mut`] (mutation without results) and [`fold_slice`]
//! (extract in parallel, combine sequentially in index order) — remain
//! the surface for external drivers that program against the executor
//! directly. Because each task touches only its own machine's state and
//! its own output slot, and all merges are index-ordered, a run is
//! **bit-identical** across executors and thread counts — the
//! determinism contract the equivalence suites assert.
//!
//! Two executors ship:
//!
//! * [`SeqExecutor`] — runs tasks inline in index order. Zero overhead;
//!   the reference schedule.
//! * [`ThreadPoolExecutor`] — a persistent pool built on [`std::thread`]
//!   and [`std::sync::mpsc`] channels (the build environment has no
//!   crates.io access, so rayon is not available; if it returns, a
//!   `RayonExecutor` is a ~10-line impl of the same trait). Workers pull
//!   indices from a shared atomic counter, so load balances across
//!   machines with skewed state sizes; the submitting thread participates
//!   in the work, so a 1-thread pool is simply the sequential schedule
//!   with an atomic counter in the loop.
//!
//! [`executor_for`] caches one pool per thread count for the whole
//! process, so batched solves ([`Registry::solve_batch`]-style harnesses)
//! amortize thread spawning across runs. The default thread count comes
//! from the `MRLR_THREADS` environment variable (unset or `1` = the
//! sequential executor).
//!
//! [`Registry::solve_batch`]: https://docs.rs/mrlr-core

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Index-parallel task runner for machine supersteps.
///
/// Implementations must run `task(i)` exactly once for every
/// `i in 0..count` and return only after all calls have completed. The
/// order and interleaving are unspecified — callers own determinism by
/// writing per-index outputs and merging in index order (see the module
/// helpers).
pub trait Executor: Send + Sync {
    /// Short human-readable name (`"seq"`, `"threads(4)"`, …) for traces
    /// and bench labels.
    fn name(&self) -> String;

    /// Number of OS threads that may run tasks concurrently (1 for the
    /// sequential executor).
    fn threads(&self) -> usize;

    /// Runs `task(i)` for every `i in 0..count`, returning when all are
    /// done.
    fn run(&self, count: usize, task: &(dyn Fn(usize) + Sync));
}

/// The reference executor: tasks run inline, in index order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqExecutor;

impl Executor for SeqExecutor {
    fn name(&self) -> String {
        "seq".into()
    }

    fn threads(&self) -> usize {
        1
    }

    fn run(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        for i in 0..count {
            task(i);
        }
    }
}

/// One submitted superstep: a lifetime-erased task plus completion state.
///
/// `run` blocks until `completed == count`, so the erased borrow outlives
/// every dereference — workers claim an index *before* calling the task
/// and can never claim one after the counter is exhausted.
struct Job {
    /// The task, with its lifetime erased. Only dereferenced by threads
    /// holding a claimed index, all of which complete before the
    /// submitting `run` call returns.
    task: *const (dyn Fn(usize) + Sync),
    count: usize,
    /// Next index to claim.
    next: AtomicUsize,
    /// Indices completed so far; the job is done at `count`.
    completed: AtomicUsize,
    /// First panic payload raised by a task, re-raised by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    signal: Condvar,
}

// SAFETY: the raw task pointer is only dereferenced while the submitting
// `ThreadPoolExecutor::run` frame is alive (it blocks on `done`), and the
// pointee is `Sync`, so shared cross-thread calls are safe.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs indices until the counter is exhausted. Returns
    /// whether this call completed the last index.
    fn work(&self) -> bool {
        let mut finished_last = false;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.count {
                break;
            }
            // SAFETY: the reference is formed only while holding claim
            // `i < count`, which implies the submitter is still blocked in
            // `run` (it cannot return before every claimed index
            // completes), so the erased borrow is alive. A worker that
            // dequeues the job late only ever sees an exhausted counter
            // and never touches the pointer.
            let task = unsafe { &*self.task };
            // A panicking task must still count as completed, or the
            // submitter would wait forever; the payload is re-raised on
            // the submitting thread once the job drains.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            let done_so_far = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
            finished_last = done_so_far == self.count;
        }
        finished_last
    }

    fn mark_done(&self) {
        let mut done = self.done.lock().unwrap();
        *done = true;
        self.signal.notify_all();
    }

    fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.signal.wait(done).unwrap();
        }
    }
}

/// A persistent worker pool on `std::thread` + mpsc channels.
///
/// `new(threads)` spawns `threads - 1` workers; the thread calling
/// [`Executor::run`] is the remaining participant. Concurrent `run` calls
/// from different threads are safe: each submission is an independent
/// `Job` queued to every worker, and completion is tracked per job.
pub struct ThreadPoolExecutor {
    threads: usize,
    senders: Mutex<Vec<Sender<PoolMsg>>>,
    handles: Vec<JoinHandle<()>>,
}

enum PoolMsg {
    Job(Arc<Job>),
    Shutdown,
}

impl ThreadPoolExecutor {
    /// A pool where up to `threads` OS threads (including the submitter)
    /// run tasks concurrently. `threads` is clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for w in 1..threads {
            let (tx, rx) = channel::<PoolMsg>();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mrlr-exec-{w}"))
                    .spawn(move || {
                        while let Ok(PoolMsg::Job(job)) = rx.recv() {
                            if job.work() {
                                job.mark_done();
                            }
                        }
                    })
                    .expect("spawning an executor worker thread"),
            );
        }
        ThreadPoolExecutor {
            threads,
            senders: Mutex::new(senders),
            handles,
        }
    }
}

impl Executor for ThreadPoolExecutor {
    fn name(&self) -> String {
        format!("threads({})", self.threads)
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn run(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        if count == 0 {
            return;
        }
        if self.threads == 1 || count == 1 {
            // Nothing to fan out; skip the queueing machinery.
            for i in 0..count {
                task(i);
            }
            return;
        }
        // SAFETY: `run` blocks on `job.wait()` below, so the borrow of
        // `task` outlives every dereference (see `Job`).
        let task_static: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&_, &'static (dyn Fn(usize) + Sync)>(task) };
        let job = Arc::new(Job {
            task: task_static,
            count,
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            signal: Condvar::new(),
        });
        {
            let senders = self.senders.lock().unwrap();
            for tx in senders.iter() {
                // A worker that exited (only possible at shutdown) is fine
                // to skip: the submitter and remaining workers drain the
                // job.
                let _ = tx.send(PoolMsg::Job(Arc::clone(&job)));
            }
        }
        // The submitting thread is a full participant.
        if job.work() {
            job.mark_done();
        }
        job.wait();
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPoolExecutor {
    fn drop(&mut self) {
        let senders = std::mem::take(&mut *self.senders.lock().unwrap());
        for tx in &senders {
            let _ = tx.send(PoolMsg::Shutdown);
        }
        drop(senders);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Pointer wrapper that lets disjoint-index tasks write into a shared
/// buffer. Soundness: every task touches only its own index. Access goes
/// through the method (not the field) so 2021-edition closures capture
/// the `Sync` wrapper rather than the raw pointer inside it. Shared with
/// the scheduler and router layers ([`crate::superstep`],
/// [`crate::router`]), which use the same disjoint-index discipline.
pub(crate) struct RawSlots<T>(*mut T);
unsafe impl<T: Send> Sync for RawSlots<T> {}

impl<T> RawSlots<T> {
    /// Wraps the base pointer of a buffer whose slots will be accessed
    /// by disjoint indices.
    pub(crate) fn new(base: *mut T) -> Self {
        RawSlots(base)
    }

    /// Pointer to slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds, and no two live accesses may alias.
    pub(crate) unsafe fn slot(&self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

/// Runs `f(i, &items[i])` on the executor and returns the results **in
/// index order** regardless of schedule.
pub fn map_slice<T, R, F>(exec: &dyn Executor, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    // `None`-initialized slots (not `MaybeUninit`): if a task panics,
    // unwinding drops the vector normally and every already-computed
    // result is freed rather than leaked.
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let slots = RawSlots(out.as_mut_ptr());
    exec.run(n, &|i| {
        // SAFETY: index `i` is claimed exactly once, so each slot is
        // written exactly once with no aliasing.
        unsafe { *slots.slot(i) = Some(f(i, &items[i])) };
    });
    out.into_iter()
        .map(|s| s.expect("executor ran every index"))
        .collect()
}

/// Runs `f(i, &mut items[i])` on the executor and returns the results **in
/// index order** regardless of schedule.
pub fn map_slice_mut<T, R, F>(exec: &dyn Executor, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let slots = RawSlots(out.as_mut_ptr());
    let states = RawSlots(items.as_mut_ptr());
    exec.run(n, &|i| {
        // SAFETY: disjoint indices — each task gets exclusive access to
        // `items[i]` and writes its own output slot exactly once.
        unsafe { *slots.slot(i) = Some(f(i, &mut *states.slot(i))) };
    });
    out.into_iter()
        .map(|s| s.expect("executor ran every index"))
        .collect()
}

/// Runs `f(i, &mut items[i])` on the executor for every index.
pub fn for_each_mut<T, F>(exec: &dyn Executor, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let states = RawSlots(items.as_mut_ptr());
    exec.run(items.len(), &|i| {
        // SAFETY: disjoint indices give exclusive access to `items[i]`.
        f(i, unsafe { &mut *states.slot(i) });
    });
}

/// Extracts a value per item on the executor, then folds the extracted
/// values **sequentially in index order** — non-commutative (and
/// floating-point) combines stay deterministic across schedules.
pub fn fold_slice<T, R, E, C>(exec: &dyn Executor, items: &[T], extract: E, combine: C) -> Option<R>
where
    T: Sync,
    R: Send,
    E: Fn(usize, &T) -> R + Sync,
    C: Fn(R, R) -> R,
{
    map_slice(exec, items, extract).into_iter().reduce(combine)
}

/// The process-wide default thread count: `MRLR_THREADS` when set to a
/// positive integer, else 1 (sequential). Read once and cached.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("MRLR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1)
    })
}

/// The shared executor for `threads` threads: [`SeqExecutor`] for 0 or 1,
/// else one process-wide cached [`ThreadPoolExecutor`] per thread count —
/// repeated solves (and batched registry runs) reuse warm pools instead of
/// respawning threads.
pub fn executor_for(threads: usize) -> Arc<dyn Executor> {
    static SEQ: OnceLock<Arc<SeqExecutor>> = OnceLock::new();
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ThreadPoolExecutor>>>> = OnceLock::new();
    if threads <= 1 {
        return SEQ.get_or_init(|| Arc::new(SeqExecutor)).clone() as Arc<dyn Executor>;
    }
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pools = pools.lock().unwrap();
    pools
        .entry(threads)
        .or_insert_with(|| Arc::new(ThreadPoolExecutor::new(threads)))
        .clone()
}

/// [`executor_for`] at [`default_threads`] — what `Cluster::new` uses when
/// no executor is supplied explicitly.
pub fn default_executor() -> Arc<dyn Executor> {
    executor_for(default_threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(exec: &dyn Executor, n: usize) -> Vec<usize> {
        let items: Vec<usize> = (0..n).collect();
        map_slice(exec, &items, |_, &x| x * x)
    }

    #[test]
    fn seq_and_pool_agree_on_map() {
        let seq = SeqExecutor;
        let expected = squares(&seq, 1000);
        for threads in [1usize, 2, 3, 8] {
            let pool = ThreadPoolExecutor::new(threads);
            assert_eq!(squares(&pool, 1000), expected, "threads = {threads}");
            assert_eq!(pool.threads(), threads);
        }
    }

    #[test]
    fn map_mut_gives_exclusive_access_and_ordered_results() {
        let pool = ThreadPoolExecutor::new(4);
        let mut items: Vec<Vec<u64>> = (0..100).map(|i| vec![i as u64]).collect();
        let lens = map_slice_mut(&pool, &mut items, |i, v| {
            v.push(i as u64 * 2);
            v.len()
        });
        assert_eq!(lens, vec![2; 100]);
        assert_eq!(items[7], vec![7, 14]);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let pool = ThreadPoolExecutor::new(8);
        let mut items = vec![0u64; 500];
        for_each_mut(&pool, &mut items, |i, x| *x += i as u64 + 1);
        for (i, x) in items.iter().enumerate() {
            assert_eq!(*x, i as u64 + 1);
        }
    }

    #[test]
    fn fold_is_index_ordered_even_threaded() {
        let pool = ThreadPoolExecutor::new(4);
        let items: Vec<usize> = (0..64).collect();
        // Non-commutative combine: concatenation.
        let folded = fold_slice(
            &pool,
            &items,
            |_, &x| vec![x],
            |mut a, b| {
                a.extend(b);
                a
            },
        )
        .unwrap();
        assert_eq!(folded, items);
        assert_eq!(
            fold_slice(&pool, &Vec::<usize>::new(), |_, &x: &usize| x, |a, _| a),
            None
        );
    }

    #[test]
    fn empty_and_single_runs_are_fine() {
        let pool = ThreadPoolExecutor::new(4);
        pool.run(0, &|_| panic!("no tasks to run"));
        let hits = AtomicUsize::new(0);
        pool.run(1, &|i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_survives_repeated_and_concurrent_use() {
        let pool = Arc::new(ThreadPoolExecutor::new(4));
        for _ in 0..50 {
            let total = AtomicUsize::new(0);
            pool.run(32, &|i| {
                total.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 31 * 32 / 2);
        }
        // Concurrent submissions from several threads share the pool.
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let items: Vec<usize> = (0..200).collect();
                    let out = map_slice(&*pool, &items, |_, &x| x + 1);
                    assert_eq!(out, (1..=200).collect::<Vec<_>>());
                });
            }
        });
    }

    #[test]
    fn pool_tasks_genuinely_overlap() {
        // A rendezvous only two *concurrently live* tasks can pass: each
        // blocks until the other arrives. A sequential executor would
        // deadlock here; the pool (submitter + 1 worker, two OS threads)
        // completes even on a single-CPU host via preemption. This is the
        // structural proof that supersteps execute concurrently — the
        // wall-clock speedup benches require multi-core hardware, this
        // does not.
        let pool = ThreadPoolExecutor::new(2);
        let barrier = std::sync::Barrier::new(2);
        let crossed = AtomicUsize::new(0);
        pool.run(2, &|_| {
            barrier.wait();
            crossed.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(crossed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn task_panics_propagate_to_the_submitter() {
        let pool = ThreadPoolExecutor::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|i| {
                if i == 11 {
                    panic!("task 11 exploded");
                }
            });
        }));
        assert!(result.is_err());
        // The pool is still usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(8, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn executor_for_caches_and_names() {
        let a = executor_for(3);
        let b = executor_for(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.name(), "threads(3)");
        assert_eq!(executor_for(0).name(), "seq");
        assert_eq!(executor_for(1).threads(), 1);
    }

    #[test]
    fn work_skew_balances_across_threads() {
        // Tasks with wildly different costs still all complete, and the
        // per-index outputs land in the right slots.
        let pool = ThreadPoolExecutor::new(4);
        let items: Vec<usize> = (0..40).collect();
        let out = map_slice(&pool, &items, |_, &x| {
            let mut acc = 0u64;
            for k in 0..(x * 1000) {
                acc = acc.wrapping_add(k as u64);
            }
            (x, acc)
        });
        for (i, &(x, _)) in out.iter().enumerate() {
            assert_eq!(i, x);
        }
    }
}
