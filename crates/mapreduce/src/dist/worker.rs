//! The worker side of the dist protocol: a shuffle region server.
//!
//! A worker owns one contiguous block of shards for the lifetime of a
//! run. Because driver closures cannot cross a process boundary, the
//! master keeps the shard *states* and runs the per-shard compute; what a
//! worker owns is the shards' **shuffle region** — it ingests
//! [`Frame::Batch`] traffic addressed to its block, buckets payloads per
//! destination shard in arrival order (exactly the router's
//! `(sender id, send order)` delivery order), and returns the assembled
//! inboxes at [`Frame::Flush`], digest-stamped with the block's
//! deterministic `(cluster seed, shard id)` identity keys. The loop is
//! fully monomorphic over opaque payload bytes, so one worker binary
//! serves every algorithm in the registry.
//!
//! Fault injection lives here too: an [`Frame::Assign`] can carry
//! `kill_at`. The worker acks that superstep's barrier normally and then
//! *arms*; it dies silently at the next `Open` or `Flush` — after having
//! ingested that superstep's batches, so recovery must replay them.

use std::io;
use std::os::unix::net::UnixStream;

use super::transport::{read_frame, write_frame};
use super::wire::{region_digest, Frame};

/// Environment variable carrying the rendezvous socket path to spawned
/// worker processes. A process that sees it set should call
/// [`worker_main`] instead of its normal entry point.
pub const SOCKET_ENV: &str = "MRLR_DIST_SOCKET";

/// Environment variable overriding the worker binary the master spawns in
/// process mode (defaults to `std::env::current_exe`).
pub const WORKER_BIN_ENV: &str = "MRLR_DIST_WORKER_BIN";

/// State of one assigned shard block.
struct Block {
    shard_lo: u64,
    seed: u64,
    kill_at: Option<u64>,
    /// Per-shard payload buckets, indexed by `shard - shard_lo`.
    buckets: Vec<Vec<Vec<u8>>>,
}

/// Serves the dist protocol on `stream` until shutdown, disconnect, or an
/// armed injected kill fires. Used directly by thread-mode workers and via
/// [`worker_main`] by process-mode workers.
pub fn serve(stream: UnixStream) -> io::Result<()> {
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let mut block: Option<Block> = None;
    let mut armed = false;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            // Master hung up (e.g. its Drop closed the socket): done.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        match frame {
            Frame::Assign {
                shard_lo,
                shard_hi,
                seed,
                kill_at,
                ..
            } => {
                let shards = (shard_hi - shard_lo) as usize;
                block = Some(Block {
                    shard_lo,
                    seed,
                    kill_at,
                    buckets: (0..shards).map(|_| Vec::new()).collect(),
                });
                armed = false;
                write_frame(&mut writer, &Frame::Ack { superstep: 0 })?;
            }
            Frame::Open { superstep } => {
                if armed {
                    // Injected death: vanish without acking the barrier.
                    return Ok(());
                }
                write_frame(&mut writer, &Frame::Ack { superstep })?;
                if let Some(b) = &block {
                    if b.kill_at == Some(superstep) {
                        armed = true;
                    }
                }
            }
            Frame::Batch { msgs, .. } => {
                let b = block.as_mut().ok_or_else(unassigned)?;
                for (dst, payload) in msgs {
                    let slot = dst
                        .checked_sub(b.shard_lo)
                        .map(|i| i as usize)
                        .filter(|&i| i < b.buckets.len())
                        .ok_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("shard {dst} outside assigned block"),
                            )
                        })?;
                    b.buckets[slot].push(payload);
                }
            }
            Frame::Flush { superstep } => {
                if armed {
                    // Injected death mid-exchange: batches ingested, inboxes
                    // never returned — the master must replay.
                    return Ok(());
                }
                let b = block.as_mut().ok_or_else(unassigned)?;
                let shards: Vec<(u64, Vec<Vec<u8>>)> = b
                    .buckets
                    .iter_mut()
                    .enumerate()
                    .map(|(i, bucket)| (b.shard_lo + i as u64, std::mem::take(bucket)))
                    .collect();
                let digest = region_digest(b.seed, &shards);
                write_frame(
                    &mut writer,
                    &Frame::Inboxes {
                        superstep,
                        shards,
                        digest,
                    },
                )?;
            }
            Frame::Ping { nonce } => write_frame(&mut writer, &Frame::Pong { nonce })?,
            Frame::Shutdown => return Ok(()),
            Frame::Ack { .. } | Frame::Inboxes { .. } | Frame::Pong { .. } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "worker received a worker→master frame",
                ));
            }
        }
    }
}

fn unassigned() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "frame received before Assign")
}

/// Entry point for a spawned worker process: connects to the socket named
/// by [`SOCKET_ENV`] and serves until shutdown. Returns the process exit
/// code.
pub fn worker_main() -> i32 {
    let path = match std::env::var(SOCKET_ENV) {
        Ok(p) => p,
        Err(_) => {
            eprintln!("mrlr-dist-worker: {SOCKET_ENV} not set");
            return 2;
        }
    };
    let stream = match UnixStream::connect(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mrlr-dist-worker: connect {path}: {e}");
            return 2;
        }
    };
    match serve(stream) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("mrlr-dist-worker: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn talk(stream: &mut UnixStream, frame: &Frame) -> Frame {
        write_frame(stream, frame).unwrap();
        read_frame(stream).unwrap()
    }

    #[test]
    fn worker_assembles_inboxes_in_arrival_order() {
        let (mut master, worker) = UnixStream::pair().unwrap();
        let handle = std::thread::spawn(move || serve(worker));
        let ack = talk(
            &mut master,
            &Frame::Assign {
                worker: 0,
                shard_lo: 2,
                shard_hi: 5,
                machines: 8,
                seed: 7,
                kill_at: None,
            },
        );
        assert_eq!(ack, Frame::Ack { superstep: 0 });
        assert_eq!(
            talk(&mut master, &Frame::Open { superstep: 1 }),
            Frame::Ack { superstep: 1 }
        );
        write_frame(
            &mut master,
            &Frame::Batch {
                superstep: 1,
                msgs: vec![(2, vec![1]), (4, vec![2]), (2, vec![3])],
            },
        )
        .unwrap();
        let reply = talk(&mut master, &Frame::Flush { superstep: 1 });
        let expect_shards = vec![
            (2u64, vec![vec![1u8], vec![3]]),
            (3, vec![]),
            (4, vec![vec![2]]),
        ];
        assert_eq!(
            reply,
            Frame::Inboxes {
                superstep: 1,
                digest: region_digest(7, &expect_shards),
                shards: expect_shards,
            }
        );
        // Buckets drained: next flush returns empty inboxes.
        let reply = talk(&mut master, &Frame::Flush { superstep: 2 });
        if let Frame::Inboxes { shards, .. } = reply {
            assert!(shards.iter().all(|(_, inbox)| inbox.is_empty()));
        } else {
            panic!("expected Inboxes, got {reply:?}");
        }
        write_frame(&mut master, &Frame::Shutdown).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn armed_worker_dies_after_acking_the_kill_superstep() {
        let (mut master, worker) = UnixStream::pair().unwrap();
        let handle = std::thread::spawn(move || serve(worker));
        talk(
            &mut master,
            &Frame::Assign {
                worker: 1,
                shard_lo: 0,
                shard_hi: 2,
                machines: 2,
                seed: 1,
                kill_at: Some(3),
            },
        );
        // Supersteps before the kill point behave normally.
        assert_eq!(
            talk(&mut master, &Frame::Open { superstep: 2 }),
            Frame::Ack { superstep: 2 }
        );
        // The kill superstep is still acked (the master must not detect
        // the death before the barrier) ...
        assert_eq!(
            talk(&mut master, &Frame::Open { superstep: 3 }),
            Frame::Ack { superstep: 3 }
        );
        // ... it even ingests the superstep's batches ...
        write_frame(
            &mut master,
            &Frame::Batch {
                superstep: 3,
                msgs: vec![(0, vec![9])],
            },
        )
        .unwrap();
        // ... and then dies at the flush instead of returning inboxes.
        write_frame(&mut master, &Frame::Flush { superstep: 3 }).unwrap();
        handle.join().unwrap().unwrap();
        let err = read_frame(&mut master).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn batch_outside_block_is_rejected() {
        let (mut master, worker) = UnixStream::pair().unwrap();
        let handle = std::thread::spawn(move || serve(worker));
        talk(
            &mut master,
            &Frame::Assign {
                worker: 0,
                shard_lo: 4,
                shard_hi: 6,
                machines: 8,
                seed: 0,
                kill_at: None,
            },
        );
        write_frame(
            &mut master,
            &Frame::Batch {
                superstep: 1,
                msgs: vec![(0, vec![1])],
            },
        )
        .unwrap();
        let err = handle.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
