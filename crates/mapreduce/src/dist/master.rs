//! The master side of the dist protocol: spawn, barrier, shuffle, heal.
//!
//! A [`DistSession`] owns `W` workers (threads or processes, see
//! [`super::SpawnKind`]), each assigned one contiguous shard block of the
//! cluster's [`crate::superstep::StaticAssignment`]. The cluster facade
//! drives it with two calls per superstep: `DistSession::open` — the
//! barrier-and-heartbeat every primitive passes through — and, for
//! `exchange` supersteps, `DistSession::exchange`, which serializes the
//! staged outboxes into per-worker batch frames, collects the assembled
//! inbox regions back, and decodes them into the router's
//! `Delivery` shape.
//!
//! **Recovery.** Any failed read from a worker (EOF after an injected
//! kill, a transport error, a read timeout) declares that worker dead.
//! The master respawns it, re-establishes its block identity with a fresh
//! `Assign` (the deterministic `(cluster seed, shard id)` keys make the
//! new worker interchangeable with the old one), reopens the current
//! barrier, and — when the death interrupted an exchange — replays the
//! retained batch bytes of that exchange before re-flushing. Every
//! recovery is recorded as a [`crate::metrics::RecoveryEvent`]; region
//! digests ([`super::wire::region_digest`]) prove the healed region
//! matches its claimed `(seed, shard)` identity.

use std::io::{self, Write as _};
use std::ops::Range;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::error::{MrError, MrResult};
use crate::metrics::{DistSummary, RecoveryEvent, WorkerShuffle};
use crate::payload::{PayloadDelivery, PayloadOutbox};
use crate::rng::mix2;
use crate::router::{Delivery, Outbox, RouterScratch};
use crate::superstep::StaticAssignment;
use crate::words::WordSized;

use super::transport::{read_frame, read_frame_body, write_frame};
use super::wire::{
    decode_value, digest_fold_payload, digest_fold_shard, digest_init, BatchStream, Frame,
    RegionWalker, Wire, WireError, WireReader,
};
use super::worker::{self, SOCKET_ENV, WORKER_BIN_ENV};
use super::{DistConfig, SpawnKind};

/// Master-side read timeout: a worker that cannot answer within this
/// window is declared dead and recovered.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// How long to wait for a spawned worker process to connect.
const ACCEPT_TIMEOUT: Duration = Duration::from_secs(10);

fn dist_err(e: impl std::fmt::Display) -> MrError {
    MrError::Dist(e.to_string())
}

/// Resolves a requested worker count: explicit value, else the
/// `MRLR_DIST_WORKERS` environment variable, else 2.
pub fn default_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::env::var("MRLR_DIST_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&w| w > 0)
        .unwrap_or(2)
}

enum WorkerJoin {
    Thread(Option<JoinHandle<()>>),
    Process(Child),
}

struct WorkerHandle {
    stream: UnixStream,
    join: WorkerJoin,
    /// Pending injected kill (cleared on respawn so recovery converges).
    kill_at: Option<u64>,
    shuffle: WorkerShuffle,
}

struct Rendezvous {
    listener: UnixListener,
    path: PathBuf,
}

impl Drop for Rendezvous {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A live distributed session: the workers, their shard-block assignment,
/// and the recovery machinery. Created by the cluster facade when the
/// runtime is `RuntimeKind::Dist`; torn down (with an orderly `Shutdown`)
/// on drop.
pub struct DistSession {
    workers: Vec<WorkerHandle>,
    assignment: StaticAssignment,
    /// Shard id → owning worker.
    owner: Vec<usize>,
    machines: usize,
    seed: u64,
    spawn: SpawnKind,
    rendezvous: Option<Rendezvous>,
    recoveries: Vec<RecoveryEvent>,
    shuffle_nanos: u64,
    /// Recycled batch-frame byte buffers (one per worker at steady state):
    /// the retained replayable bytes of an exchange return here once every
    /// region is safely back, so serialization stops allocating per round.
    frame_pool: Vec<Vec<u8>>,
    /// Reused raw region body (one in flight at a time).
    region_buf: Vec<u8>,
}

impl DistSession {
    /// Spawns and assigns the workers for a cluster of `machines` shards
    /// seeded by `seed`, then ping-pongs each one to verify liveness.
    pub(crate) fn launch(machines: usize, seed: u64, cfg: &DistConfig) -> MrResult<Self> {
        let assignment = StaticAssignment::new(machines, default_workers(cfg.workers));
        let n = assignment.workers();
        let mut owner = vec![0usize; machines];
        for w in 0..n {
            for shard in assignment.chunk(w) {
                owner[shard] = w;
            }
        }
        let rendezvous = match cfg.spawn {
            SpawnKind::Thread => None,
            SpawnKind::Process => Some(bind_rendezvous()?),
        };
        let mut session = DistSession {
            workers: Vec::with_capacity(n),
            assignment,
            owner,
            machines,
            seed,
            spawn: cfg.spawn,
            rendezvous,
            recoveries: Vec::new(),
            shuffle_nanos: 0,
            frame_pool: Vec::new(),
            region_buf: Vec::new(),
        };
        for w in 0..n {
            let (stream, join) = session.spawn_endpoint()?;
            // First matching kill wins; workers outside `0..n` can't fire.
            let kill_at = cfg
                .kills
                .iter()
                .find(|k| k.worker == w)
                .map(|k| k.superstep as u64);
            session.workers.push(WorkerHandle {
                stream,
                join,
                kill_at,
                shuffle: WorkerShuffle {
                    worker: w,
                    ..WorkerShuffle::default()
                },
            });
            session.assign(w)?;
        }
        // Heartbeat: every worker must answer a ping before the run starts.
        for w in 0..n {
            let nonce = mix2(seed, w as u64);
            write_frame(&mut session.workers[w].stream, &Frame::Ping { nonce })
                .map_err(dist_err)?;
            match read_frame(&mut session.workers[w].stream).map_err(dist_err)? {
                Frame::Pong { nonce: echoed } if echoed == nonce => {}
                other => return Err(dist_err(format!("worker {w} bad ping reply: {other:?}"))),
            }
        }
        Ok(session)
    }

    /// Number of live workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Transport summary for [`crate::metrics::Metrics::dist`].
    pub fn summary(&self) -> DistSummary {
        DistSummary {
            workers: self.workers.len(),
            shuffle: self.workers.iter().map(|w| w.shuffle.clone()).collect(),
            recoveries: self.recoveries.clone(),
            shuffle_nanos: self.shuffle_nanos,
        }
    }

    /// Opens superstep `superstep` on every worker: the barrier all five
    /// cluster primitives pass through, doubling as the heartbeat. A
    /// worker that fails to ack is recovered on the spot.
    pub(crate) fn open(&mut self, superstep: usize) -> MrResult<()> {
        let s = superstep as u64;
        for wh in &mut self.workers {
            // Write errors are swallowed: a dead peer is detected (and
            // healed) at the matching read below.
            let _ = write_frame(&mut wh.stream, &Frame::Open { superstep: s });
        }
        for w in 0..self.workers.len() {
            if self.expect_ack(w, s).is_ok() {
                continue;
            }
            self.recover_barrier(w, s)?;
        }
        Ok(())
    }

    /// Runs the distributed shuffle for one exchange superstep: staged
    /// outboxes out to the owning workers, assembled inbox regions back,
    /// decoded into the router's delivery shape. Delivery order is the
    /// router contract — `(sender id, send order)` — because senders are
    /// serialized in id order and workers bucket in arrival order.
    ///
    /// Batch frames are streamed straight out of the staged columns into
    /// pooled byte buffers ([`BatchStream`]) and regions are walked in
    /// place from one reused body buffer ([`RegionWalker`]) — the
    /// per-message `Vec<u8>` staging of the original implementation is
    /// gone, and the outbox columns return to `scratch`. The wire bytes,
    /// digest discipline and retained-replay recovery are unchanged.
    pub(crate) fn exchange<M: WordSized + Wire + Send + 'static>(
        &mut self,
        superstep: usize,
        outboxes: Vec<Outbox<M>>,
        scratch: &mut RouterScratch,
    ) -> MrResult<Delivery<M>> {
        let t0 = Instant::now();
        let s = superstep as u64;
        let mut streams = self.batch_streams(s);
        for outbox in &outboxes {
            for (i, &dst) in outbox.dsts.iter().enumerate() {
                streams[self.owner[dst]].push_with(dst as u64, |out| outbox.msgs[i].encode(out));
            }
        }
        for outbox in outboxes {
            scratch.put_columns(outbox.into_buffers());
        }
        let retained = self.send_batches(streams, s);
        let mut inboxes: Vec<Vec<M>> = (0..self.machines).map(|_| Vec::new()).collect();
        let mut in_words = scratch.take_usizes(self.machines);
        let mut body = std::mem::take(&mut self.region_buf);
        let outcome = (|| -> MrResult<()> {
            for (w, kept) in retained.iter().enumerate() {
                if self.read_region_raw(w, s, &mut body).is_err() {
                    self.recover_exchange_raw(w, s, kept, &mut body)?;
                }
                // The body is validated (digest + shard identity), so the
                // walk cannot fail structurally; message decode errors are
                // genuine corruption and stay fatal.
                let (_, mut walker) = RegionWalker::open(&body).map_err(dist_err)?;
                while let Some((shard, count)) = walker.next_shard().map_err(dist_err)? {
                    let shard = shard as usize;
                    for _ in 0..count {
                        let payload = walker.next_payload().map_err(dist_err)?;
                        let msg: M = decode_value(payload)
                            .map_err(|e| dist_err(format!("worker {w} inbox payload: {e}")))?;
                        in_words[shard] += msg.words();
                        inboxes[shard].push(msg);
                    }
                }
            }
            Ok(())
        })();
        self.region_buf = body;
        self.frame_pool.extend(retained);
        if let Err(e) = outcome {
            scratch.put_usizes(in_words);
            return Err(e);
        }
        self.shuffle_nanos += t0.elapsed().as_nanos() as u64;
        // Deliveries stay nested here: the decoded regions arrive
        // per-worker and the retained batch bytes — not pooled buffers —
        // are what fault recovery replays (see `crate::router` docs).
        Ok(Delivery::from_nested(inboxes, in_words))
    }

    /// The payload-plane shuffle: like [`DistSession::exchange`], but the
    /// staged `(head, [element])` messages stream onto the wire directly
    /// from the flat payload columns, and the returned regions decode
    /// straight into pooled flat arenas — a [`PayloadDelivery`] in its
    /// zero-copy `Flat` representation, never a nested `Vec<Vec<_>>`.
    ///
    /// Each message's wire bytes are exactly the canonical encoding of the
    /// `(head, Vec<element>)` tuple it replaces, so workers (which treat
    /// payloads as opaque bytes), region digests and recovery replay need
    /// no changes. Flat assembly is possible because regions arrive in
    /// worker order and [`StaticAssignment`] blocks are contiguous and
    /// ascending: shards stream back in exact destination order.
    pub(crate) fn exchange_payload<H, T>(
        &mut self,
        superstep: usize,
        outboxes: Vec<PayloadOutbox<H, T>>,
        scratch: &mut RouterScratch,
    ) -> MrResult<PayloadDelivery<H, T>>
    where
        H: Copy + WordSized + Wire + Send + 'static,
        T: Copy + WordSized + Wire + Send + 'static,
    {
        let t0 = Instant::now();
        let s = superstep as u64;
        let mut streams = self.batch_streams(s);
        for outbox in &outboxes {
            let mut off = 0usize;
            for (i, &dst) in outbox.dsts.iter().enumerate() {
                let len = outbox.lens[i];
                let elems = &outbox.elems[off..off + len];
                off += len;
                streams[self.owner[dst]].push_with(dst as u64, |out| {
                    outbox.heads[i].encode(out);
                    (len as u64).encode(out);
                    for e in elems {
                        e.encode(out);
                    }
                });
            }
        }
        for outbox in outboxes {
            outbox.recycle_into(scratch);
        }
        let retained = self.send_batches(streams, s);
        let mut heads: Vec<H> = scratch.take_arena();
        let mut elems: Vec<T> = scratch.take_arena();
        let mut spans = scratch.take_ranges_empty();
        let mut ranges = scratch.take_ranges(self.machines);
        let mut in_words = scratch.take_usizes(self.machines);
        let mut body = std::mem::take(&mut self.region_buf);
        let outcome = (|| -> MrResult<()> {
            for (w, kept) in retained.iter().enumerate() {
                if self.read_region_raw(w, s, &mut body).is_err() {
                    self.recover_exchange_raw(w, s, kept, &mut body)?;
                }
                let wire = |e: WireError| dist_err(format!("worker {w} inbox payload: {e}"));
                let (_, mut walker) = RegionWalker::open(&body).map_err(dist_err)?;
                while let Some((shard, count)) = walker.next_shard().map_err(dist_err)? {
                    let shard = shard as usize;
                    let mstart = heads.len();
                    let mut words = 0usize;
                    for _ in 0..count {
                        let payload = walker.next_payload().map_err(dist_err)?;
                        let mut r = WireReader::new(payload);
                        let head = H::decode(&mut r).map_err(wire)?;
                        let plen = usize::decode(&mut r).map_err(wire)?;
                        let estart = elems.len();
                        let mut msg_words = head.words() + 1;
                        for _ in 0..plen {
                            let e = T::decode(&mut r).map_err(wire)?;
                            msg_words += e.words();
                            elems.push(e);
                        }
                        r.finish().map_err(wire)?;
                        heads.push(head);
                        spans.push((estart, plen));
                        words += msg_words;
                    }
                    ranges[shard] = (mstart, heads.len() - mstart);
                    in_words[shard] = words;
                }
            }
            Ok(())
        })();
        self.region_buf = body;
        self.frame_pool.extend(retained);
        if let Err(e) = outcome {
            heads.clear();
            elems.clear();
            scratch.put_arena(heads);
            scratch.put_arena(elems);
            scratch.put_ranges(spans);
            scratch.put_ranges(ranges);
            scratch.put_usizes(in_words);
            return Err(e);
        }
        self.shuffle_nanos += t0.elapsed().as_nanos() as u64;
        Ok(PayloadDelivery::from_flat(
            heads, spans, elems, ranges, in_words,
        ))
    }

    /// One [`BatchStream`] per worker, seeded from the frame pool.
    fn batch_streams(&mut self, s: u64) -> Vec<BatchStream> {
        (0..self.workers.len())
            .map(|_| BatchStream::begin(self.frame_pool.pop().unwrap_or_default(), s))
            .collect()
    }

    /// Finishes and writes one batch + flush per worker, written before
    /// any read (the protocol's deadlock-freedom invariant). The raw
    /// bytes are retained until the region is safely back, so a worker
    /// death mid-exchange can be replayed to its replacement.
    fn send_batches(&mut self, streams: Vec<BatchStream>, s: u64) -> Vec<Vec<u8>> {
        let mut retained: Vec<Vec<u8>> = Vec::with_capacity(streams.len());
        for (w, stream) in streams.into_iter().enumerate() {
            let bytes = stream.finish(s);
            self.workers[w].shuffle.bytes_out += bytes.len() as u64;
            self.workers[w].shuffle.batches += 1;
            let _ = self.workers[w].stream.write_all(&bytes);
            retained.push(bytes);
        }
        retained
    }

    /// Reads one worker's raw inbox-region frame body into `body` and
    /// fully validates it — claimed superstep, shard identity against the
    /// worker's assigned block, and the region digest under the master's
    /// own seed — without decoding any message payload. Validation runs
    /// *before* anything is trusted into delivery buffers, so a failure
    /// here is recoverable exactly like a transport error.
    fn read_region_raw(&mut self, w: usize, s: u64, body: &mut Vec<u8>) -> io::Result<()> {
        read_frame_body(&mut self.workers[w].stream, body)?;
        self.workers[w].shuffle.bytes_in += (4 + body.len()) as u64;
        validate_region(body, self.seed, s, self.assignment.chunk(w), w)
    }

    fn expect_ack(&mut self, w: usize, s: u64) -> io::Result<()> {
        match read_frame(&mut self.workers[w].stream)? {
            Frame::Ack { superstep } if superstep == s => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("worker {w} expected Ack({s}), got {other:?}"),
            )),
        }
    }

    /// Recovery path A — death detected at a barrier: respawn, reassign,
    /// reopen. Nothing to replay; the worker's buckets were empty.
    fn recover_barrier(&mut self, w: usize, s: u64) -> MrResult<()> {
        let t0 = Instant::now();
        self.respawn(w)?;
        write_frame(&mut self.workers[w].stream, &Frame::Open { superstep: s })
            .map_err(dist_err)?;
        self.expect_ack(w, s).map_err(dist_err)?;
        self.recoveries.push(RecoveryEvent {
            worker: w,
            superstep: s as usize,
            wall_nanos: t0.elapsed().as_nanos() as u64,
            replayed_bytes: 0,
        });
        Ok(())
    }

    /// Recovery path B — death detected mid-exchange: respawn, reassign,
    /// reopen the barrier, replay the retained batch bytes, re-flush, and
    /// take (and re-validate) the raw region from the replacement.
    fn recover_exchange_raw(
        &mut self,
        w: usize,
        s: u64,
        retained: &[u8],
        body: &mut Vec<u8>,
    ) -> MrResult<()> {
        let t0 = Instant::now();
        self.respawn(w)?;
        write_frame(&mut self.workers[w].stream, &Frame::Open { superstep: s })
            .map_err(dist_err)?;
        self.expect_ack(w, s).map_err(dist_err)?;
        self.workers[w]
            .stream
            .write_all(retained)
            .map_err(dist_err)?;
        self.read_region_raw(w, s, body).map_err(dist_err)?;
        self.recoveries.push(RecoveryEvent {
            worker: w,
            superstep: s as usize,
            wall_nanos: t0.elapsed().as_nanos() as u64,
            replayed_bytes: retained.len() as u64,
        });
        Ok(())
    }

    /// Replaces worker `w`'s endpoint with a freshly spawned one and
    /// re-establishes its block identity (kill trap cleared: an injected
    /// fault fires at most once, so recovery converges).
    fn respawn(&mut self, w: usize) -> MrResult<()> {
        let (stream, join) = self.spawn_endpoint()?;
        let old = std::mem::replace(
            &mut self.workers[w],
            WorkerHandle {
                stream,
                join,
                kill_at: None,
                shuffle: WorkerShuffle::default(),
            },
        );
        self.workers[w].shuffle = old.shuffle.clone();
        reap(old);
        self.assign(w)
    }

    /// Sends worker `w` its `Assign` frame and waits for the ack.
    fn assign(&mut self, w: usize) -> MrResult<()> {
        let chunk = self.assignment.chunk(w);
        let frame = Frame::Assign {
            worker: w as u64,
            shard_lo: chunk.start as u64,
            shard_hi: chunk.end as u64,
            machines: self.machines as u64,
            seed: self.seed,
            kill_at: self.workers[w].kill_at,
        };
        write_frame(&mut self.workers[w].stream, &frame).map_err(dist_err)?;
        self.expect_ack(w, 0).map_err(dist_err)
    }

    /// Creates one worker endpoint under the session's spawn mode.
    fn spawn_endpoint(&self) -> MrResult<(UnixStream, WorkerJoin)> {
        match self.spawn {
            SpawnKind::Thread => {
                let (master, worker_side) = UnixStream::pair().map_err(dist_err)?;
                let join = std::thread::Builder::new()
                    .name("mrlr-dist-worker".into())
                    .spawn(move || {
                        // Injected kills return Ok; real errors surface to
                        // the master as failed reads, so the thread result
                        // carries no extra signal.
                        let _ = worker::serve(worker_side);
                    })
                    .map_err(dist_err)?;
                master
                    .set_read_timeout(Some(READ_TIMEOUT))
                    .map_err(dist_err)?;
                Ok((master, WorkerJoin::Thread(Some(join))))
            }
            SpawnKind::Process => {
                let rendezvous = self
                    .rendezvous
                    .as_ref()
                    .expect("process spawn binds a rendezvous at launch");
                let bin = match std::env::var_os(WORKER_BIN_ENV) {
                    Some(p) => PathBuf::from(p),
                    None => std::env::current_exe().map_err(dist_err)?,
                };
                let mut child = Command::new(&bin)
                    .env(SOCKET_ENV, &rendezvous.path)
                    .stdin(Stdio::null())
                    .spawn()
                    .map_err(|e| dist_err(format!("spawn {}: {e}", bin.display())))?;
                let stream = accept_with_timeout(&rendezvous.listener, &mut child)?;
                stream
                    .set_read_timeout(Some(READ_TIMEOUT))
                    .map_err(dist_err)?;
                Ok((stream, WorkerJoin::Process(child)))
            }
        }
    }
}

impl Drop for DistSession {
    fn drop(&mut self) {
        for wh in &mut self.workers {
            let _ = write_frame(&mut wh.stream, &Frame::Shutdown);
            let _ = wh.stream.shutdown(std::net::Shutdown::Both);
        }
        for wh in self.workers.drain(..) {
            reap(wh);
        }
    }
}

/// Validates one raw `Inboxes` frame body: the claimed superstep, the
/// shard ids against worker `w`'s assigned block (ascending, complete),
/// and the trailing digest against a streaming re-derivation under the
/// master's `seed` — the exact fold of
/// [`crate::dist::wire::region_digest`], computed while walking the raw
/// bytes so the region is never materialized as nested vectors.
fn validate_region(
    body: &[u8],
    seed: u64,
    s: u64,
    expected: Range<usize>,
    w: usize,
) -> io::Result<()> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let wire = |e: WireError| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("worker {w} inbox region: {e}"),
        )
    };
    let (superstep, mut walker) = RegionWalker::open(body).map_err(wire)?;
    if superstep != s {
        return Err(bad(format!(
            "worker {w} expected Inboxes({s}), got superstep {superstep}"
        )));
    }
    let mut h = digest_init(seed);
    let mut next_shard = expected.start as u64;
    while let Some((shard, count)) = walker.next_shard().map_err(wire)? {
        if shard != next_shard || shard >= expected.end as u64 {
            return Err(bad(format!(
                "worker {w} returned shard {shard}, owns {expected:?}"
            )));
        }
        next_shard += 1;
        h = digest_fold_shard(h, seed, shard, count);
        for _ in 0..count {
            h = digest_fold_payload(h, walker.next_payload().map_err(wire)?);
        }
    }
    if next_shard != expected.end as u64 {
        return Err(bad(format!(
            "worker {w} returned shards ending at {next_shard}, owns {expected:?}"
        )));
    }
    let digest = walker.finish().map_err(wire)?;
    if digest != h {
        return Err(bad(format!(
            "worker {w} region digest mismatch at superstep {s}"
        )));
    }
    Ok(())
}

/// Joins or waits out a replaced/terminated worker endpoint.
fn reap(handle: WorkerHandle) {
    let _ = handle.stream.shutdown(std::net::Shutdown::Both);
    match handle.join {
        WorkerJoin::Thread(mut join) => {
            if let Some(join) = join.take() {
                let _ = join.join();
            }
        }
        WorkerJoin::Process(mut child) => {
            // Give an orderly exit a moment, then force it.
            for _ in 0..100 {
                match child.try_wait() {
                    Ok(Some(_)) => return,
                    Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                    Err(_) => break,
                }
            }
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Monotonic suffix for rendezvous socket paths (plus the pid, so
/// concurrent sessions — and concurrent test processes — cannot collide).
static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

fn bind_rendezvous() -> MrResult<Rendezvous> {
    let path = std::env::temp_dir().join(format!(
        "mrlr-dist-{}-{}.sock",
        std::process::id(),
        SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&path);
    let listener =
        UnixListener::bind(&path).map_err(|e| dist_err(format!("bind {}: {e}", path.display())))?;
    listener.set_nonblocking(true).map_err(dist_err)?;
    Ok(Rendezvous { listener, path })
}

/// Accepts one worker connection, polling so a child that dies before
/// connecting fails fast instead of hanging the master.
fn accept_with_timeout(listener: &UnixListener, child: &mut Child) -> MrResult<UnixStream> {
    let deadline = Instant::now() + ACCEPT_TIMEOUT;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).map_err(dist_err)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Ok(Some(status)) = child.try_wait() {
                    return Err(dist_err(format!(
                        "worker process exited before connecting: {status}"
                    )));
                }
                if Instant::now() >= deadline {
                    return Err(dist_err("timed out waiting for worker to connect"));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(dist_err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SeqExecutor;
    use crate::router::{route, RouterKind, RouterScratch};
    use crate::superstep::{SchedulePolicy, Scheduler};
    use std::sync::Arc;

    fn outboxes(machines: usize, volume: usize, seed: u64) -> Vec<Outbox<u64>> {
        (0..machines)
            .map(|s| {
                let mut rng = crate::rng::DetRng::derive(seed, &[s as u64]);
                let mut out = Outbox::new(machines);
                for k in 0..volume {
                    out.send(rng.range(machines as u64) as usize, (s * 1000 + k) as u64);
                }
                out
            })
            .collect()
    }

    fn reference(machines: usize, volume: usize, seed: u64) -> Delivery<u64> {
        let sched = Scheduler::new(Arc::new(SeqExecutor), SchedulePolicy::Dynamic);
        route(
            RouterKind::Merge,
            &sched,
            machines,
            outboxes(machines, volume, seed),
            &mut RouterScratch::default(),
        )
    }

    #[test]
    fn dist_exchange_matches_the_reference_router() {
        for workers in [1usize, 2, 4] {
            let machines = 9;
            let cfg = DistConfig {
                workers,
                ..DistConfig::default()
            };
            let mut scratch = RouterScratch::default();
            let mut session = DistSession::launch(machines, 42, &cfg).unwrap();
            session.open(1).unwrap();
            let got = session
                .exchange(1, outboxes(machines, 50, 7), &mut scratch)
                .unwrap();
            let want = reference(machines, 50, 7);
            assert_eq!(got.nested(), want.nested(), "workers {workers}");
            assert_eq!(got.in_words(), want.in_words(), "workers {workers}");
            let summary = session.summary();
            assert_eq!(summary.workers, workers.min(machines));
            assert!(summary.shuffle.iter().any(|s| s.bytes_out > 0));
            assert!(summary.recoveries.is_empty());
        }
    }

    #[test]
    fn dist_payload_exchange_matches_the_nested_exchange() {
        use crate::payload::PayloadOutbox;
        // The payload plane and the tuple plane must be byte-identical on
        // the wire and word-identical in the delivery: stage the same
        // traffic both ways and compare everything, including the shuffle
        // byte counters.
        let machines = 7;
        let volume = 40;
        let stage_tuples = |seed: u64| -> Vec<Outbox<(u64, Vec<u32>)>> {
            (0..machines)
                .map(|sender| {
                    let mut rng = crate::rng::DetRng::derive(seed, &[sender as u64]);
                    let mut out = Outbox::new(machines);
                    for k in 0..volume {
                        let dst = rng.range(machines as u64) as usize;
                        let len = (rng.range(5)) as usize;
                        let elems: Vec<u32> =
                            (0..len).map(|j| (sender * 100 + k + j) as u32).collect();
                        out.send(dst, ((sender * 1000 + k) as u64, elems));
                    }
                    out
                })
                .collect()
        };
        let stage_payloads = |seed: u64| -> Vec<PayloadOutbox<u64, u32>> {
            (0..machines)
                .map(|sender| {
                    let mut rng = crate::rng::DetRng::derive(seed, &[sender as u64]);
                    let mut out = PayloadOutbox::new(machines);
                    for k in 0..volume {
                        let dst = rng.range(machines as u64) as usize;
                        let len = (rng.range(5)) as usize;
                        let mut w = out.push_payload(dst, (sender * 1000 + k) as u64);
                        for j in 0..len {
                            w.push((sender * 100 + k + j) as u32);
                        }
                    }
                    out
                })
                .collect()
        };
        for workers in [1usize, 3] {
            let cfg = DistConfig {
                workers,
                ..DistConfig::default()
            };
            let mut scratch = RouterScratch::default();
            let mut nested_session = DistSession::launch(machines, 11, &cfg).unwrap();
            nested_session.open(1).unwrap();
            let want = nested_session
                .exchange(1, stage_tuples(13), &mut scratch)
                .unwrap();
            let mut session = DistSession::launch(machines, 11, &cfg).unwrap();
            session.open(1).unwrap();
            let got = session
                .exchange_payload(1, stage_payloads(13), &mut scratch)
                .unwrap();
            assert_eq!(got.in_words(), want.in_words(), "workers {workers}");
            let (mut inboxes, buffers) = unsafe { got.into_inboxes() };
            for (m, want_msgs) in want.nested().iter().enumerate() {
                let mut seen = Vec::new();
                while let Some((head, elems)) = inboxes[m].next_msg() {
                    seen.push((head, elems.to_vec()));
                }
                assert_eq!(&seen, want_msgs, "machine {m}, workers {workers}");
            }
            drop(inboxes);
            buffers.recycle(&mut scratch);
            // Identical bytes moved on identical worker topologies.
            let a = nested_session.summary();
            let b = session.summary();
            for (x, y) in a.shuffle.iter().zip(b.shuffle.iter()) {
                assert_eq!(x.bytes_out, y.bytes_out, "workers {workers}");
                assert_eq!(x.bytes_in, y.bytes_in, "workers {workers}");
            }
        }
    }

    #[test]
    fn killed_worker_is_recovered_with_replay() {
        let machines = 8;
        let cfg = DistConfig {
            workers: 2,
            kills: vec![crate::faults::WorkerKill {
                worker: 1,
                superstep: 2,
            }],
            ..DistConfig::default()
        };
        let mut scratch = RouterScratch::default();
        let mut session = DistSession::launch(machines, 5, &cfg).unwrap();
        session.open(1).unwrap();
        let d1 = session
            .exchange(1, outboxes(machines, 30, 1), &mut scratch)
            .unwrap();
        assert_eq!(d1.nested(), reference(machines, 30, 1).nested());
        // Superstep 2 arms the kill; the worker dies at the flush, after
        // ingesting the batch — recovery must replay it.
        session.open(2).unwrap();
        let d2 = session
            .exchange(2, outboxes(machines, 30, 2), &mut scratch)
            .unwrap();
        let want = reference(machines, 30, 2);
        assert_eq!(d2.nested(), want.nested());
        assert_eq!(d2.in_words(), want.in_words());
        let summary = session.summary();
        assert_eq!(summary.recoveries.len(), 1);
        let r = &summary.recoveries[0];
        assert_eq!((r.worker, r.superstep), (1, 2));
        assert!(r.replayed_bytes > 0, "mid-exchange death replays batches");
        // The healed session keeps working.
        session.open(3).unwrap();
        let d3 = session
            .exchange(3, outboxes(machines, 30, 3), &mut scratch)
            .unwrap();
        assert_eq!(d3.nested(), reference(machines, 30, 3).nested());
    }

    #[test]
    fn kill_at_a_barrier_recovers_without_replay() {
        // Arm at superstep 1; the next frame is Open(2), so the death is
        // detected at a barrier, not mid-exchange.
        let cfg = DistConfig {
            workers: 2,
            kills: vec![crate::faults::WorkerKill {
                worker: 0,
                superstep: 1,
            }],
            ..DistConfig::default()
        };
        let mut session = DistSession::launch(4, 9, &cfg).unwrap();
        session.open(1).unwrap();
        session.open(2).unwrap();
        let summary = session.summary();
        assert_eq!(summary.recoveries.len(), 1);
        assert_eq!(summary.recoveries[0].replayed_bytes, 0);
        assert_eq!(summary.recoveries[0].superstep, 2);
        // Exchanges still work after a barrier recovery.
        let d = session
            .exchange(2, outboxes(4, 20, 4), &mut RouterScratch::default())
            .unwrap();
        assert_eq!(d.nested(), reference(4, 20, 4).nested());
    }
}
