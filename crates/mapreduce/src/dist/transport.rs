//! Length-prefixed framing over byte streams.
//!
//! A frame on the wire is a `u32` little-endian body length followed by
//! the body (a [`Frame`]'s [`crate::dist::wire::Wire`] encoding). The length is sanity-capped
//! at [`MAX_FRAME`] so a corrupted prefix cannot trigger a gigantic
//! allocation. Decode failures surface as `io::ErrorKind::InvalidData`
//! carrying the [`crate::dist::wire::WireError`] text (with its byte
//! offset).
//!
//! The protocol is deadlock-free by construction: the master completes
//! all writes to a worker before reading that worker's response, and
//! workers only write in response to a frame — neither side ever blocks
//! on a write while the peer blocks on its own write.

use std::io::{self, Read, Write};

use super::wire::{decode_value, encode_value, Frame, Wire};

/// Upper bound on a frame body (1 GiB): far above any real exchange,
/// small enough to reject corrupted length prefixes outright.
pub const MAX_FRAME: usize = 1 << 30;

/// Writes one length-prefixed [`Wire`] value. The framing layer is
/// protocol-agnostic: the dist master/worker frames and the serve
/// request/response frames share this exact byte discipline.
pub fn write_wire_frame<W: Write, T: Wire>(w: &mut W, value: &T) -> io::Result<()> {
    let body = encode_value(value);
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {} bytes exceeds MAX_FRAME", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Reads one length-prefixed [`Wire`] value, validating the length cap
/// and the body encoding (trailing bytes inside the body are rejected).
pub fn read_wire_frame<R: Read, T: Wire>(r: &mut R) -> io::Result<T> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    decode_value::<T>(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Writes one length-prefixed dist protocol frame.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    write_wire_frame(w, frame)
}

/// Reads one length-prefixed dist protocol frame, validating the length
/// cap and the body encoding.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Frame> {
    read_wire_frame(r)
}

/// Reads one length-prefixed frame's raw body into `buf` (cleared and
/// refilled; capacity is kept). This is the pooled path of the dist
/// shuffle: the master reuses one region buffer across supersteps and
/// walks the raw body in place instead of decoding a nested [`Frame`].
pub(crate) fn read_frame_body<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> io::Result<()> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)
}

/// Encodes a frame to its on-wire bytes (prefix + body) without writing —
/// used by the master to retain replayable shuffle traffic.
pub fn frame_bytes(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, frame).expect("Vec writes cannot fail");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_survive_a_stream() {
        let frames = vec![
            Frame::Open { superstep: 3 },
            Frame::Batch {
                superstep: 3,
                msgs: vec![(0, vec![9, 9]), (7, vec![])],
            },
            Frame::Shutdown,
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cursor = io::Cursor::new(buf);
        for f in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
        // EOF after the last frame.
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn generic_wire_values_survive_a_stream() {
        // The framing layer is not tied to the dist `Frame`: any `Wire`
        // value (here the serve-style string payload) frames identically.
        let mut buf = Vec::new();
        write_wire_frame(&mut buf, &String::from("hello")).unwrap();
        write_wire_frame(&mut buf, &(7u64, vec![1u8, 2, 3])).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_wire_frame::<_, String>(&mut cursor).unwrap(), "hello");
        assert_eq!(
            read_wire_frame::<_, (u64, Vec<u8>)>(&mut cursor).unwrap(),
            (7, vec![1, 2, 3])
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupted_body_reports_wire_offset() {
        let mut buf = frame_bytes(&Frame::Ping { nonce: 1 });
        buf[4] = 0xEE; // frame tag byte, right after the 4-byte prefix
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("byte 0"), "{err}");
    }
}
