//! Hand-rolled length-free wire encoding for the dist transport.
//!
//! Every value that crosses the master↔worker boundary implements
//! [`Wire`]: a fixed, little-endian, self-delimiting byte layout with no
//! external dependencies — the same discipline as `mrlr_core::io`'s JSON
//! writer, applied to bytes. The encoding is **canonical** (one byte
//! string per value) so digests over encoded payloads are well defined,
//! and decoding is **total**: every error is a [`WireError`] carrying the
//! byte offset where decoding failed, mirroring the line/column style of
//! the text formats.
//!
//! Layout rules (all integers little-endian, fixed width):
//!
//! * `u8..u128`, `i8..i128`: native width.
//! * `usize`/`isize`: 8 bytes (`u64`/`i64`); decoding checks the value
//!   fits the host width.
//! * `f32`/`f64`: IEEE bit patterns via `to_bits`.
//! * `bool`: one byte, `0` or `1` — anything else is a decode error.
//! * `char`: validated `u32` scalar value.
//! * `()`: zero bytes.
//! * `Option<T>`: tag byte `0`/`1`, then the value if `1`.
//! * `Vec<T>`: `u64` length, then the elements. Decoding never
//!   pre-reserves more than the bytes that remain can justify, so a
//!   corrupted length cannot balloon memory.
//! * `String`: `u64` byte length, then validated UTF-8.
//! * Tuples (2–5): fields in order, no framing.
//!
//! The impl family deliberately mirrors `crate::words::WordSized`, so any
//! message type the cluster can meter it can also ship.

use std::fmt;

use super::transport::MAX_FRAME;
use crate::rng::{mix2, mix_tags};
use crate::words::Payload;

/// A decoding failure: where it happened and why.
///
/// `offset` is the byte position in the frame body at which the decoder
/// gave up — truncation reports the position where more bytes were
/// needed, corruption the position of the offending byte(s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset into the buffer at which decoding failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub reason: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for WireError {}

/// Cursor over a received byte buffer, tracking the offset for errors.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current byte offset (where the next read starts).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes, or reports truncation at the current
    /// offset.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(self.error(format!(
                "truncated: needed {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(bytes)
    }

    /// A [`WireError`] at the current offset.
    pub fn error(&self, reason: impl Into<String>) -> WireError {
        WireError {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    /// Asserts the buffer is fully consumed (canonical encodings have no
    /// trailing bytes).
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            let n = self.remaining();
            return Err(self.error(format!("{n} trailing bytes after value")));
        }
        Ok(())
    }
}

/// A value with a canonical byte encoding for the dist transport.
pub trait Wire: Sized {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value, advancing the reader past exactly the bytes
    /// [`Wire::encode`] would have written.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh buffer.
pub fn encode_value<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a value from a complete buffer, rejecting trailing bytes.
pub fn decode_value<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(buf);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

macro_rules! impl_wire_int {
    ($($t:ty),* $(,)?) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("exact take")))
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| WireError {
            offset: at,
            reason: format!("usize {v} exceeds host width"),
        })
    }
}

impl Wire for isize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as i64).encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        let v = i64::decode(r)?;
        isize::try_from(v).map_err(|_| WireError {
            offset: at,
            reason: format!("isize {v} exceeds host width"),
        })
    }
}

impl Wire for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f32::from_bits(u32::decode(r)?))
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError {
                offset: at,
                reason: format!("invalid bool byte {b:#04x}"),
            }),
        }
    }
}

impl Wire for char {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u32).encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        let v = u32::decode(r)?;
        char::from_u32(v).ok_or_else(|| WireError {
            offset: at,
            reason: format!("invalid char scalar {v:#x}"),
        })
    }
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(WireError {
                offset: at,
                reason: format!("invalid Option tag {b:#04x}"),
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        let len = u64::decode(r)?;
        let len = usize::try_from(len).map_err(|_| WireError {
            offset: at,
            reason: format!("vector length {len} exceeds host width"),
        })?;
        // Never trust the announced length for allocation: each element is
        // at least one byte on the wire (except zero-sized ones, which
        // can't be Vec'd meaningfully), so cap the reserve by what remains.
        let mut items = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = usize::decode(r)?;
        let start = r.pos();
        let bytes = r.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|e| WireError {
            offset: start + e.valid_up_to(),
            reason: "invalid UTF-8 in string".to_string(),
        })?;
        Ok(s.to_string())
    }
}

impl Wire for Payload {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Payload(usize::decode(r)?))
    }
}

macro_rules! impl_wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

impl_wire_tuple!(A: 0, B: 1);
impl_wire_tuple!(A: 0, B: 1, C: 2);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Domain-separation tag of the inbox-region digests.
const REGION_TAG: u64 = 0x6469_7374_2164_6967; // "dist!dig"

/// Deterministic digest over a worker's assembled inbox region for one
/// exchange: folds `(cluster seed, shard id)` identity keys with every
/// payload's bytes. Master and worker compute it with this same function;
/// a mismatch means the region does not correspond to the deterministic
/// `(seed, shard)` streams it claims to, which recovery treats as fatal.
pub fn region_digest(seed: u64, shards: &[(u64, Vec<Vec<u8>>)]) -> u64 {
    let mut h = digest_init(seed);
    for (shard, inbox) in shards {
        h = digest_fold_shard(h, seed, *shard, inbox.len() as u64);
        for payload in inbox {
            h = digest_fold_payload(h, payload);
        }
    }
    h
}

/// Start of a streaming [`region_digest`] computation: the master folds
/// the same digest while *walking* a raw region body (no nested
/// materialization) via [`RegionWalker`].
pub(crate) fn digest_init(seed: u64) -> u64 {
    mix_tags(seed, &[REGION_TAG])
}

/// Folds one shard header (identity key + payload count).
pub(crate) fn digest_fold_shard(h: u64, seed: u64, shard: u64, payloads: u64) -> u64 {
    mix2(mix2(h, mix_tags(seed, &[REGION_TAG, shard])), payloads)
}

/// Folds one payload's bytes (length, then zero-padded 8-byte words).
pub(crate) fn digest_fold_payload(mut h: u64, payload: &[u8]) -> u64 {
    h = mix2(h, payload.len() as u64);
    for chunk in payload.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix2(h, u64::from_le_bytes(word));
    }
    h
}

/// Streams one worker's `Batch` + `Flush` frames for a superstep
/// directly into a (pooled) byte buffer: the length prefixes and the
/// message count are reserved up front and patched at the end, so the
/// master serializes a shuffle without staging a `Vec<u8>` per message
/// or re-encoding whole frames. The bytes produced are identical to
/// `frame_bytes(&Frame::Batch{..})` followed by
/// `frame_bytes(&Frame::Flush{..})` — workers, retained-replay recovery
/// and the digest discipline are untouched.
pub(crate) struct BatchStream {
    buf: Vec<u8>,
    count: u64,
    count_at: usize,
}

impl BatchStream {
    /// Begins a batch for `superstep` in `buf` (cleared; capacity kept).
    pub(crate) fn begin(mut buf: Vec<u8>, superstep: u64) -> Self {
        buf.clear();
        buf.extend_from_slice(&[0u8; 4]); // frame length, patched in finish
        buf.push(TAG_BATCH);
        superstep.encode(&mut buf);
        let count_at = buf.len();
        buf.extend_from_slice(&[0u8; 8]); // message count, patched in finish
        BatchStream {
            buf,
            count: 0,
            count_at,
        }
    }

    /// Appends one `(dst, message)` pair; `write` streams the message's
    /// canonical bytes straight into the buffer (the per-message length
    /// prefix is reserved and patched afterwards).
    pub(crate) fn push_with(&mut self, dst: u64, write: impl FnOnce(&mut Vec<u8>)) {
        dst.encode(&mut self.buf);
        let len_at = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 8]);
        write(&mut self.buf);
        let len = (self.buf.len() - len_at - 8) as u64;
        self.buf[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
        self.count += 1;
    }

    /// Patches the reserved prefixes and appends the `Flush` frame,
    /// returning the combined on-wire bytes.
    pub(crate) fn finish(mut self, superstep: u64) -> Vec<u8> {
        self.buf[self.count_at..self.count_at + 8].copy_from_slice(&self.count.to_le_bytes());
        let body = self.buf.len() - 4;
        assert!(
            body <= MAX_FRAME,
            "batch frame body of {body} bytes exceeds MAX_FRAME"
        );
        self.buf[..4].copy_from_slice(&(body as u32).to_le_bytes());
        self.buf.extend_from_slice(&9u32.to_le_bytes()); // Flush body: tag + superstep
        self.buf.push(TAG_FLUSH);
        superstep.encode(&mut self.buf);
        self.buf
    }
}

/// Walks a raw `Inboxes` frame body in place — shard headers and payload
/// byte slices in wire order — without materializing the nested region.
/// The master walks each region twice: a validation pass (digest + shard
/// identity, before trusting any payload) and a decode pass that lands
/// messages straight into delivery buffers.
pub(crate) struct RegionWalker<'a> {
    r: WireReader<'a>,
    shards_left: u64,
    payloads_left: u64,
}

impl<'a> RegionWalker<'a> {
    /// Opens a raw frame body, expecting an `Inboxes` frame; returns the
    /// superstep it claims plus the walker positioned at the first shard.
    pub(crate) fn open(body: &'a [u8]) -> Result<(u64, Self), WireError> {
        let mut r = WireReader::new(body);
        let at = r.pos();
        let tag = u8::decode(&mut r)?;
        if tag != TAG_INBOXES {
            return Err(WireError {
                offset: at,
                reason: format!("expected Inboxes frame, got tag {tag:#04x}"),
            });
        }
        let superstep = u64::decode(&mut r)?;
        let shards_left = u64::decode(&mut r)?;
        Ok((
            superstep,
            RegionWalker {
                r,
                shards_left,
                payloads_left: 0,
            },
        ))
    }

    /// The next shard header `(shard id, payload count)`, or `None` after
    /// the last shard. Call only once the previous shard's payloads have
    /// all been taken.
    pub(crate) fn next_shard(&mut self) -> Result<Option<(u64, u64)>, WireError> {
        debug_assert_eq!(self.payloads_left, 0, "previous shard not drained");
        if self.shards_left == 0 {
            return Ok(None);
        }
        self.shards_left -= 1;
        let shard = u64::decode(&mut self.r)?;
        let payloads = u64::decode(&mut self.r)?;
        self.payloads_left = payloads;
        Ok(Some((shard, payloads)))
    }

    /// The current shard's next payload as a raw byte slice.
    pub(crate) fn next_payload(&mut self) -> Result<&'a [u8], WireError> {
        debug_assert!(self.payloads_left > 0, "no payloads left in this shard");
        self.payloads_left -= 1;
        let len = usize::decode(&mut self.r)?;
        self.r.take(len)
    }

    /// After the last shard: reads the trailing digest and rejects any
    /// trailing bytes (the body must be exactly one canonical frame).
    pub(crate) fn finish(mut self) -> Result<u64, WireError> {
        debug_assert_eq!(self.shards_left, 0, "shards not fully walked");
        let digest = u64::decode(&mut self.r)?;
        self.r.finish()?;
        Ok(digest)
    }
}

/// One control or data frame of the master↔worker protocol.
///
/// Every frame is a tag byte followed by its fields' [`Wire`] encodings;
/// [`decode_value`] rejects unknown tags and trailing bytes. The protocol
/// is strictly master-driven: workers only ever write in response to a
/// frame the master sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Master → worker, first frame on a connection: own shards
    /// `shard_lo..shard_hi` of `machines`, seeded by `seed`. `kill_at`
    /// arms the fault-injection trap door (die after acking that
    /// superstep's barrier). Acked with [`Frame::Ack`]`{superstep: 0}`.
    Assign {
        /// Worker index `0..workers`.
        worker: u64,
        /// First owned shard (inclusive).
        shard_lo: u64,
        /// Past-the-end owned shard (exclusive).
        shard_hi: u64,
        /// Total simulated machines in the cluster.
        machines: u64,
        /// Cluster seed; shard RNG streams derive from `(seed, shard)`.
        seed: u64,
        /// Injected fault: die after acking this superstep's barrier.
        kill_at: Option<u64>,
    },
    /// Master → worker: barrier opening superstep `superstep`. Doubles as
    /// the heartbeat — a worker that cannot ack is declared dead.
    Open {
        /// The superstep being opened.
        superstep: u64,
    },
    /// Worker → master: barrier/assignment acknowledgement.
    Ack {
        /// The acknowledged superstep (0 for the assignment ack).
        superstep: u64,
    },
    /// Master → worker: a shuffle batch for this worker's shard block.
    /// `msgs` are `(destination shard, encoded message)` pairs in global
    /// `(sender id, send order)` — the worker buckets them per shard in
    /// arrival order, which reproduces the router's delivery order.
    Batch {
        /// The superstep this batch belongs to.
        superstep: u64,
        /// `(destination shard, canonical message bytes)` in delivery order.
        msgs: Vec<(u64, Vec<u8>)>,
    },
    /// Master → worker: no more batches for `superstep`; assemble and
    /// return the inbox region.
    Flush {
        /// The superstep being flushed.
        superstep: u64,
    },
    /// Worker → master: the assembled inboxes of every owned shard (in
    /// shard order, empty inboxes included) plus their [`region_digest`].
    Inboxes {
        /// The flushed superstep.
        superstep: u64,
        /// `(shard id, inbox payloads in delivery order)` for the block.
        shards: Vec<(u64, Vec<Vec<u8>>)>,
        /// [`region_digest`] over `shards` under the cluster seed.
        digest: u64,
    },
    /// Master → worker: liveness probe.
    Ping {
        /// Echo value.
        nonce: u64,
    },
    /// Worker → master: liveness reply echoing the probe's nonce.
    Pong {
        /// Echoed value.
        nonce: u64,
    },
    /// Master → worker: orderly teardown.
    Shutdown,
}

const TAG_ASSIGN: u8 = 0;
const TAG_OPEN: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_BATCH: u8 = 3;
const TAG_FLUSH: u8 = 4;
const TAG_INBOXES: u8 = 5;
const TAG_PING: u8 = 6;
const TAG_PONG: u8 = 7;
const TAG_SHUTDOWN: u8 = 8;

impl Wire for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Assign {
                worker,
                shard_lo,
                shard_hi,
                machines,
                seed,
                kill_at,
            } => {
                out.push(TAG_ASSIGN);
                worker.encode(out);
                shard_lo.encode(out);
                shard_hi.encode(out);
                machines.encode(out);
                seed.encode(out);
                kill_at.encode(out);
            }
            Frame::Open { superstep } => {
                out.push(TAG_OPEN);
                superstep.encode(out);
            }
            Frame::Ack { superstep } => {
                out.push(TAG_ACK);
                superstep.encode(out);
            }
            Frame::Batch { superstep, msgs } => {
                out.push(TAG_BATCH);
                superstep.encode(out);
                msgs.encode(out);
            }
            Frame::Flush { superstep } => {
                out.push(TAG_FLUSH);
                superstep.encode(out);
            }
            Frame::Inboxes {
                superstep,
                shards,
                digest,
            } => {
                out.push(TAG_INBOXES);
                superstep.encode(out);
                shards.encode(out);
                digest.encode(out);
            }
            Frame::Ping { nonce } => {
                out.push(TAG_PING);
                nonce.encode(out);
            }
            Frame::Pong { nonce } => {
                out.push(TAG_PONG);
                nonce.encode(out);
            }
            Frame::Shutdown => out.push(TAG_SHUTDOWN),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        let tag = u8::decode(r)?;
        match tag {
            TAG_ASSIGN => Ok(Frame::Assign {
                worker: u64::decode(r)?,
                shard_lo: u64::decode(r)?,
                shard_hi: u64::decode(r)?,
                machines: u64::decode(r)?,
                seed: u64::decode(r)?,
                kill_at: Option::<u64>::decode(r)?,
            }),
            TAG_OPEN => Ok(Frame::Open {
                superstep: u64::decode(r)?,
            }),
            TAG_ACK => Ok(Frame::Ack {
                superstep: u64::decode(r)?,
            }),
            TAG_BATCH => Ok(Frame::Batch {
                superstep: u64::decode(r)?,
                msgs: Vec::<(u64, Vec<u8>)>::decode(r)?,
            }),
            TAG_FLUSH => Ok(Frame::Flush {
                superstep: u64::decode(r)?,
            }),
            TAG_INBOXES => Ok(Frame::Inboxes {
                superstep: u64::decode(r)?,
                shards: Vec::<(u64, Vec<Vec<u8>>)>::decode(r)?,
                digest: u64::decode(r)?,
            }),
            TAG_PING => Ok(Frame::Ping {
                nonce: u64::decode(r)?,
            }),
            TAG_PONG => Ok(Frame::Pong {
                nonce: u64::decode(r)?,
            }),
            TAG_SHUTDOWN => Ok(Frame::Shutdown),
            t => Err(WireError {
                offset: at,
                reason: format!("unknown frame tag {t:#04x}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_value(&value);
        assert_eq!(decode_value::<T>(&bytes).unwrap(), value);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(u128::MAX);
        round_trip(-1i8);
        round_trip(i64::MIN);
        round_trip(usize::MAX);
        round_trip(-3isize);
        round_trip(1.5f32);
        round_trip(-0.0f64);
        round_trip(true);
        round_trip('🦀');
        round_trip(());
        round_trip(Payload(42));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(Option::<u32>::None);
        round_trip(Some(7u64));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(String::from("héllo 🦀"));
        round_trip((1u32, 2u64));
        round_trip((1u8, 2u16, 3u32, 4u64, 5u128));
        round_trip(vec![(0u64, vec![1u8, 2]), (3, vec![])]);
    }

    #[test]
    fn trailing_bytes_are_rejected_with_offset() {
        let mut bytes = encode_value(&7u32);
        bytes.push(0);
        let err = decode_value::<u32>(&bytes).unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.reason.contains("trailing"), "{err}");
    }

    #[test]
    fn truncation_reports_the_failing_offset() {
        let bytes = encode_value(&(1u64, 2u64));
        let err = decode_value::<(u64, u64)>(&bytes[..12]).unwrap_err();
        assert_eq!(err.offset, 8, "second field starts at byte 8: {err}");
    }

    #[test]
    fn corrupted_tags_report_offsets() {
        let err = decode_value::<bool>(&[9]).unwrap_err();
        assert_eq!(err.offset, 0);
        let mut opt = encode_value(&Some(1u8));
        opt[0] = 7;
        let err = decode_value::<Option<u8>>(&opt).unwrap_err();
        assert!(err.reason.contains("Option tag"), "{err}");
        let err = decode_value::<char>(&0xD800u32.to_le_bytes()).unwrap_err();
        assert!(err.reason.contains("char"), "{err}");
        let mut s = encode_value(&String::from("ab"));
        s[9] = 0xFF;
        let err = decode_value::<String>(&s).unwrap_err();
        assert_eq!(err.offset, 9, "invalid byte position: {err}");
    }

    #[test]
    fn corrupt_vec_length_does_not_balloon() {
        // Announce 2^60 elements with a 3-byte body: must error, not OOM.
        let mut bytes = encode_value(&(1u64 << 60));
        bytes.extend_from_slice(&[1, 2, 3]);
        let err = decode_value::<Vec<u64>>(&bytes).unwrap_err();
        assert!(err.reason.contains("truncated"), "{err}");
    }

    #[test]
    fn frames_round_trip() {
        for frame in [
            Frame::Assign {
                worker: 1,
                shard_lo: 4,
                shard_hi: 8,
                machines: 16,
                seed: 42,
                kill_at: Some(3),
            },
            Frame::Open { superstep: 7 },
            Frame::Ack { superstep: 0 },
            Frame::Batch {
                superstep: 2,
                msgs: vec![(5, vec![1, 2, 3]), (6, vec![])],
            },
            Frame::Flush { superstep: 2 },
            Frame::Inboxes {
                superstep: 2,
                shards: vec![(4, vec![vec![1], vec![2, 3]]), (5, vec![])],
                digest: 0xABCD,
            },
            Frame::Ping { nonce: 99 },
            Frame::Pong { nonce: 99 },
            Frame::Shutdown,
        ] {
            let bytes = encode_value(&frame);
            assert_eq!(decode_value::<Frame>(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn unknown_frame_tag_is_an_error() {
        let err = decode_value::<Frame>(&[0xEE]).unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.reason.contains("unknown frame tag"), "{err}");
    }

    #[test]
    fn batch_stream_bytes_match_the_frame_encoding() {
        use crate::dist::transport::frame_bytes;
        // The streaming encoder must be byte-identical to encoding the
        // whole Batch + Flush frames — workers and retained-replay
        // recovery depend on it.
        let msgs: Vec<(u64, Vec<u8>)> = vec![(5, vec![1, 2, 3]), (6, vec![]), (0, vec![9; 20])];
        let mut want = frame_bytes(&Frame::Batch {
            superstep: 3,
            msgs: msgs.clone(),
        });
        want.extend_from_slice(&frame_bytes(&Frame::Flush { superstep: 3 }));
        let mut stream = BatchStream::begin(vec![0xAA; 64], 3); // dirty pooled buffer
        for (dst, payload) in &msgs {
            stream.push_with(*dst, |out| out.extend_from_slice(payload));
        }
        assert_eq!(stream.finish(3), want);
        // Empty batches frame identically too.
        let mut want = frame_bytes(&Frame::Batch {
            superstep: 9,
            msgs: vec![],
        });
        want.extend_from_slice(&frame_bytes(&Frame::Flush { superstep: 9 }));
        assert_eq!(BatchStream::begin(Vec::new(), 9).finish(9), want);
    }

    #[test]
    fn region_walker_walks_an_inboxes_frame() {
        let shards = vec![
            (4u64, vec![vec![1u8], vec![2, 3, 4, 5, 6, 7, 8, 9, 10]]),
            (5, vec![]),
            (6, vec![vec![]]),
        ];
        let digest = region_digest(7, &shards);
        let body = encode_value(&Frame::Inboxes {
            superstep: 2,
            shards: shards.clone(),
            digest,
        });
        let (superstep, mut walker) = RegionWalker::open(&body).unwrap();
        assert_eq!(superstep, 2);
        let mut h = digest_init(7);
        let mut seen = Vec::new();
        while let Some((shard, count)) = walker.next_shard().unwrap() {
            h = digest_fold_shard(h, 7, shard, count);
            let mut payloads = Vec::new();
            for _ in 0..count {
                let p = walker.next_payload().unwrap();
                h = digest_fold_payload(h, p);
                payloads.push(p.to_vec());
            }
            seen.push((shard, payloads));
        }
        assert_eq!(seen, shards);
        // The streaming fold is exactly `region_digest`.
        assert_eq!(walker.finish().unwrap(), digest);
        assert_eq!(h, digest);
        // A non-Inboxes body is rejected at open.
        let err = match RegionWalker::open(&encode_value(&Frame::Ack { superstep: 2 })) {
            Err(e) => e,
            Ok(_) => panic!("an Ack body must not open as a region"),
        };
        assert!(err.reason.contains("expected Inboxes"), "{err}");
    }

    #[test]
    fn region_digest_separates_contents_and_identity() {
        let region = vec![(0u64, vec![vec![1u8, 2, 3]]), (1, vec![])];
        let same = region.clone();
        assert_eq!(region_digest(7, &region), region_digest(7, &same));
        // Different seed, shard id, payload → different digest.
        assert_ne!(region_digest(7, &region), region_digest(8, &region));
        let moved = vec![(0u64, vec![]), (1, vec![vec![1u8, 2, 3]])];
        assert_ne!(region_digest(7, &region), region_digest(7, &moved));
        let flipped = vec![(0u64, vec![vec![1u8, 2, 4]]), (1, vec![])];
        assert_ne!(region_digest(7, &region), region_digest(7, &flipped));
    }
}
