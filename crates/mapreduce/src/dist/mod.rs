//! The distributed runtime: a master/worker control plane over real OS
//! transport, with fault-tolerant re-execution.
//!
//! The in-process runtimes (`Classic`, `Shard`) proved the engine's
//! observables are bit-identical across schedules and routers; this
//! module crosses a real process boundary without giving that up. The
//! split follows from one constraint — driver closures cannot be
//! serialized — so the **master** keeps the shard states, closures and
//! RNG streams and runs the per-shard compute (it *is* the paper's
//! central machine), while each **worker** owns the *shuffle region* of a
//! contiguous shard block ([`crate::superstep::StaticAssignment`]): it
//! ingests the exchange traffic addressed to its block over a
//! Unix-domain-socket transport, buckets it per destination shard in the
//! router's `(sender id, send order)` delivery order, and hands the
//! assembled inboxes back at the flush barrier, digest-stamped with the
//! block's deterministic `(cluster seed, shard id)` identity keys.
//!
//! Fault tolerance is the point: the master heartbeats workers through
//! the barrier protocol, a [`crate::faults::FaultPlan`] can kill a worker
//! at a chosen superstep ([`crate::faults::WorkerKill`]), and the master
//! recovers by respawning the worker, re-establishing its block from the
//! `(seed, shard)` identity keys, and replaying the retained batch
//! traffic of the interrupted exchange. Because delivery order and shard
//! RNG streams are pure functions of the configuration, a recovered run
//! produces **bit-identical** reports — solutions, certificates,
//! witnesses and model [`crate::metrics::Metrics`] — to a fault-free one,
//! which `mrlr verify` can prove offline.
//!
//! Submodules: [`wire`] (canonical byte encoding + frames), [`transport`]
//! (length-prefixed framing), [`worker`] (the serve loop), [`master`]
//! (the control plane and recovery).

pub mod master;
pub mod transport;
pub mod wire;
pub mod worker;

pub use master::DistSession;
pub use wire::{Frame, Wire, WireError, WireReader};

use crate::faults::WorkerKill;

/// How the master materializes workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpawnKind {
    /// Workers are OS threads speaking the full wire protocol over
    /// socketpairs — the same frames and recovery paths as real
    /// processes, embeddable in any test binary. The default.
    #[default]
    Thread,
    /// Workers are separate OS processes connected over a Unix-domain
    /// socket. The worker binary is resolved from
    /// [`worker::WORKER_BIN_ENV`], falling back to `current_exe` (the
    /// `mrlr` CLI re-enters as a worker when [`worker::SOCKET_ENV`] is
    /// set).
    Process,
}

impl SpawnKind {
    /// Short name for traces and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            SpawnKind::Thread => "thread",
            SpawnKind::Process => "process",
        }
    }
}

/// Configuration of a distributed session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistConfig {
    /// Requested worker count; `0` reads `MRLR_DIST_WORKERS` (default 2).
    /// Always clamped so no worker owns an empty shard block.
    pub workers: usize,
    /// Thread- or process-backed workers.
    pub spawn: SpawnKind,
    /// Live fault injections (from
    /// [`crate::faults::FaultPlan::worker_kills`]).
    pub kills: Vec<WorkerKill>,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            workers: 0,
            spawn: SpawnKind::Thread,
            kills: Vec::new(),
        }
    }
}

/// `Copy` projection of [`DistConfig`] for configs that must stay
/// `Copy`/`const`-constructible (e.g. `mrlr_core`'s `ExecConfig`): at
/// most one pending kill instead of a list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistParams {
    /// Requested worker count; `0` = environment default.
    pub workers: usize,
    /// Thread- or process-backed workers.
    pub spawn: SpawnKind,
    /// At most one live worker kill.
    pub kill: Option<WorkerKill>,
}

impl DistParams {
    /// No explicit workers, thread spawn, no kill.
    pub const DEFAULT: DistParams = DistParams {
        workers: 0,
        spawn: SpawnKind::Thread,
        kill: None,
    };
}

impl Default for DistParams {
    fn default() -> Self {
        DistParams::DEFAULT
    }
}

impl From<DistParams> for DistConfig {
    fn from(p: DistParams) -> Self {
        DistConfig {
            workers: p.workers,
            spawn: p.spawn,
            kills: p.kill.into_iter().collect(),
        }
    }
}
