//! A fixed-size bitset with exact word accounting.
//!
//! Used for the shared knowledge sets the paper's algorithms maintain on
//! every machine (covered elements `C`, removed vertices `N⁺(I)`, the active
//! set of the clique algorithm). A bitmap over `n` entities costs
//! `⌈n/64⌉ + 1` words — for `n` vertices that is well within the
//! `O(n^{1+µ})` budget, which is exactly why the paper can afford to keep
//! these sets replicated.

use crate::words::WordSized;

/// Fixed-capacity bitset over ids `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    len: usize,
    bits: Vec<u64>,
}

impl Bitset {
    /// All-zeros bitset over `len` ids.
    pub fn new(len: usize) -> Self {
        Bitset {
            len,
            bits: vec![0; len.div_ceil(64)],
        }
    }

    /// All-ones bitset over `len` ids.
    pub fn full(len: usize) -> Self {
        let mut b = Bitset::new(len);
        for w in &mut b.bits {
            *w = u64::MAX;
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = b.bits.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        b
    }

    /// Number of ids this bitset ranges over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitset ranges over zero ids.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i`. Returns whether the bit was previously clear.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.bits[i / 64];
        let mask = 1u64 << (i % 64);
        let was_clear = *w & mask == 0;
        *w |= mask;
        was_clear
    }

    /// Clears bit `i`. Returns whether the bit was previously set.
    #[inline]
    pub fn clear(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.bits[i / 64];
        let mask = 1u64 << (i % 64);
        let was_set = *w & mask != 0;
        *w &= !mask;
        was_set
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }
}

impl WordSized for Bitset {
    fn words(&self) -> usize {
        1 + self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitset::new(130);
        assert!(!b.get(0));
        assert!(b.set(0));
        assert!(!b.set(0));
        assert!(b.get(0));
        assert!(b.set(129));
        assert!(b.get(129));
        assert_eq!(b.count(), 2);
        assert!(b.clear(0));
        assert!(!b.clear(0));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn full_respects_length() {
        let b = Bitset::full(70);
        assert_eq!(b.count(), 70);
        assert!(b.get(69));
        let b64 = Bitset::full(64);
        assert_eq!(b64.count(), 64);
        let b0 = Bitset::full(0);
        assert_eq!(b0.count(), 0);
        assert!(b0.is_empty());
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = Bitset::new(200);
        for i in [3usize, 64, 65, 199] {
            b.set(i);
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 199]);
    }

    #[test]
    fn union_intersect() {
        let mut a = Bitset::new(10);
        let mut b = Bitset::new(10);
        a.set(1);
        a.set(2);
        b.set(2);
        b.set(3);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);
        a.intersect_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn word_accounting() {
        assert_eq!(Bitset::new(0).words(), 1);
        assert_eq!(Bitset::new(64).words(), 2);
        assert_eq!(Bitset::new(65).words(), 3);
        assert_eq!(Bitset::new(6400).words(), 101);
    }
}
