//! The MRC and MPC computation models as checkable constraints.
//!
//! Section 1.3 of the paper works in the MRC model of Karloff, Suri and
//! Vassilvitskii — input of size `N` spread over `O(N^δ)` machines with
//! `O(N^{1-δ})` memory each — and notes that most of its algorithms also fit
//! the stricter MPC model of Beame et al., where each of `M` machines gets
//! only `S = O(N/M)` words. This module turns those side conditions into
//! code: [`ComputeModel::check`] audits a [`ClusterConfig`] against an input
//! size, and the shape helpers construct configurations that satisfy a model
//! by construction. The workspace's integration tests run every algorithm
//! under a checked configuration, so "this algorithm works in MPC" is a
//! tested property rather than a remark.
//!
//! ```
//! use mrlr_mapreduce::model::ComputeModel;
//!
//! let model = ComputeModel::Mpc { slack: 2.0 };
//! let cfg = model.shape(100_000, 20); // 20 machines for a 100k-word input
//! assert!(model.check(100_000, &cfg).ok);
//! assert!(cfg.capacity < 100_000); // sublinear per-machine memory
//! ```

use crate::cluster::ClusterConfig;

/// A distributed computation model with verifiable resource constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComputeModel {
    /// Karloff et al.: `M = Θ(N^δ)` machines, `O(N^{1-δ})` words each.
    /// `slack` is the hidden constant allowed on both bounds.
    Mrc {
        /// The memory/machines exponent `δ ∈ (0, 1)`.
        delta: f64,
        /// Multiplicative headroom accepted on the `O(·)` bounds.
        slack: f64,
    },
    /// Beame et al.: per-machine space `S ≤ slack · N / M`, and machine
    /// memory strictly sublinear in `N`.
    Mpc {
        /// Multiplicative headroom accepted on `N / M`.
        slack: f64,
    },
}

/// Outcome of auditing a configuration against a model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCheck {
    /// True when every constraint holds.
    pub ok: bool,
    /// Human-readable description of each violated constraint.
    pub violations: Vec<String>,
    /// Per-machine words the model would allow for this input.
    pub allowed_capacity: usize,
    /// Total cluster memory (machines × capacity).
    pub total_memory: usize,
}

impl ComputeModel {
    /// Audits `cfg` for an input of `input_words` words.
    pub fn check(&self, input_words: usize, cfg: &ClusterConfig) -> ModelCheck {
        let mut violations = Vec::new();
        let n = input_words.max(1) as f64;
        let allowed_capacity = match *self {
            ComputeModel::Mrc { delta, slack } => {
                if !(0.0..1.0).contains(&delta) {
                    violations.push(format!("delta {delta} outside (0, 1)"));
                }
                let max_machines = (slack * n.powf(delta)).ceil() as usize;
                if cfg.machines > max_machines {
                    violations.push(format!(
                        "machines {} exceed slack·N^δ = {}",
                        cfg.machines, max_machines
                    ));
                }
                (slack * n.powf(1.0 - delta)).ceil() as usize
            }
            ComputeModel::Mpc { slack } => (slack * n / cfg.machines.max(1) as f64).ceil() as usize,
        };
        if cfg.capacity > allowed_capacity {
            violations.push(format!(
                "capacity {} exceeds model bound {}",
                cfg.capacity, allowed_capacity
            ));
        }
        if cfg.capacity >= input_words && input_words > 1 && cfg.machines > 1 {
            violations.push(format!(
                "capacity {} not sublinear in input {}",
                cfg.capacity, input_words
            ));
        }
        let total_memory = cfg.machines.saturating_mul(cfg.capacity);
        if total_memory < input_words {
            violations.push(format!(
                "total memory {} cannot hold the {}-word input",
                total_memory, input_words
            ));
        }
        ModelCheck {
            ok: violations.is_empty(),
            violations,
            allowed_capacity,
            total_memory,
        }
    }

    /// A cluster shape satisfying this model for `input_words`, with the
    /// given machine count (MPC) or derived from `δ` (MRC). The
    /// configuration passes [`ComputeModel::check`] by construction whenever
    /// the total memory suffices (for tiny inputs or extreme `slack/δ`
    /// combinations, no sublinear shape can hold the input — `check` then
    /// reports exactly the total-memory violation).
    pub fn shape(&self, input_words: usize, machines_hint: usize) -> ClusterConfig {
        let n = input_words.max(1) as f64;
        let (machines, capacity) = match *self {
            ComputeModel::Mrc { delta, slack } => {
                let machines = ((slack * n.powf(delta)).ceil() as usize).max(1);
                let capacity = ((slack * n.powf(1.0 - delta)).ceil() as usize).max(1);
                (machines, capacity)
            }
            ComputeModel::Mpc { slack } => {
                let machines = machines_hint.max(1);
                let capacity = ((slack * n / machines as f64).ceil() as usize).max(1);
                (machines, capacity)
            }
        };
        // A real cluster (M > 1) must keep per-machine memory sublinear in
        // the input; the O(·) slack cannot grant a machine the whole input.
        let capacity = if machines > 1 && input_words > 1 {
            capacity.min(input_words - 1).max(1)
        } else {
            capacity
        };
        ClusterConfig::new(machines, capacity)
    }
}

/// The paper's standing graph regime (§1.3): `n` vertices, `m = n^{1+c}`
/// edges, machine memory `n^{1+µ}` words, `M = n^{c−µ}` machines, broadcast
/// fan-out `n^µ`. Returns `(machines, capacity, fanout)`.
///
/// This conforms to MRC with `δ = (c−µ)/(1+c)` (the paper's own remark), a
/// fact the tests verify through [`ComputeModel::check`].
pub fn paper_graph_regime(n: usize, c: f64, mu: f64) -> (usize, usize, usize) {
    assert!(c > mu && mu >= 0.0, "the paper requires c > µ ≥ 0");
    let nf = n.max(2) as f64;
    let machines = (nf.powf(c - mu).ceil() as usize).max(1);
    let capacity = (nf.powf(1.0 + mu).ceil() as usize).max(1);
    let fanout = (nf.powf(mu).ceil() as usize).max(2);
    (machines, capacity, fanout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mrc_shape_passes_its_own_check() {
        let model = ComputeModel::Mrc {
            delta: 0.4,
            slack: 2.0,
        };
        let n = 100_000;
        let cfg = model.shape(n, 0);
        let check = model.check(n, &cfg);
        assert!(check.ok, "violations: {:?}", check.violations);
        assert!(check.total_memory >= n);
    }

    #[test]
    fn mpc_shape_passes_its_own_check() {
        let model = ComputeModel::Mpc { slack: 1.5 };
        let n = 50_000;
        let cfg = model.shape(n, 25);
        let check = model.check(n, &cfg);
        assert!(check.ok, "violations: {:?}", check.violations);
        assert_eq!(cfg.machines, 25);
        // S ≈ slack · N / M
        assert!(cfg.capacity >= n / 25);
        assert!(cfg.capacity <= (1.5 * n as f64 / 25.0).ceil() as usize);
    }

    #[test]
    fn mpc_flags_oversized_capacity() {
        let model = ComputeModel::Mpc { slack: 1.0 };
        let cfg = ClusterConfig::new(10, 100_000);
        let check = model.check(1000, &cfg);
        assert!(!check.ok);
        assert!(check
            .violations
            .iter()
            .any(|v| v.contains("exceeds model bound")));
        assert!(check.violations.iter().any(|v| v.contains("not sublinear")));
    }

    #[test]
    fn mrc_flags_too_many_machines() {
        let model = ComputeModel::Mrc {
            delta: 0.3,
            slack: 1.0,
        };
        // N = 10_000 → allowed machines ≈ 10^{4·0.3} ≈ 16.
        let cfg = ClusterConfig::new(1000, 100);
        let check = model.check(10_000, &cfg);
        assert!(!check.ok);
        assert!(check.violations.iter().any(|v| v.contains("machines")));
    }

    #[test]
    fn undersized_total_memory_flagged() {
        let model = ComputeModel::Mpc { slack: 1.0 };
        let cfg = ClusterConfig::new(2, 10);
        let check = model.check(1000, &cfg);
        assert!(!check.ok);
        assert!(check.violations.iter().any(|v| v.contains("total memory")));
    }

    #[test]
    fn bad_delta_flagged() {
        let model = ComputeModel::Mrc {
            delta: 1.5,
            slack: 1.0,
        };
        let cfg = ClusterConfig::new(2, 2);
        let check = model.check(16, &cfg);
        assert!(check.violations.iter().any(|v| v.contains("delta")));
    }

    #[test]
    fn paper_regime_matches_mrc() {
        // n = 1000, c = 0.5, µ = 0.25: m = n^{1.5}, machines = n^{0.25},
        // capacity = n^{1.25}; the paper's δ = (c−µ)/(1+c) = 1/6. The audit
        // is in records (the regime's capacities are record counts; the
        // 3-words-per-edge constant is part of the hidden O(·) factor).
        let n = 1000usize;
        let (machines, capacity, fanout) = paper_graph_regime(n, 0.5, 0.25);
        let m_words = (n as f64).powf(1.5) as usize;
        let cfg = ClusterConfig::new(machines, capacity).with_fanout(fanout);
        let model = ComputeModel::Mrc {
            delta: (0.5 - 0.25) / 1.5,
            slack: 4.0,
        };
        let check = model.check(m_words, &cfg);
        assert!(check.ok, "violations: {:?}", check.violations);
        assert!(fanout >= 2);
    }

    #[test]
    #[should_panic(expected = "c > µ")]
    fn paper_regime_requires_c_above_mu() {
        paper_graph_regime(100, 0.2, 0.3);
    }

    #[test]
    fn single_machine_may_hold_whole_input() {
        // The sublinearity constraint applies only to genuine clusters
        // (machines > 1); a 1-machine "cluster" is the sequential base case
        // and may hold the entire input.
        let model = ComputeModel::Mpc { slack: 1.0 };
        let cfg = ClusterConfig::new(1, 1000);
        let check = model.check(1000, &cfg);
        assert!(check.ok, "violations: {:?}", check.violations);
    }
}
