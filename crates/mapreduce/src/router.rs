//! The routing plane: how staged messages travel between shards.
//!
//! A superstep's `exchange` has two halves — per-shard *staging* (each
//! machine fills an [`Outbox`]) and *delivery* (every message lands in
//! its destination's inbox). The model charges one round either way; what
//! the router decides is how the host performs the shuffle:
//!
//! * [`RouterKind::Merge`] — one sequential global pass over all
//!   outboxes, appending each message to its destination (the original
//!   engine; the reference plane).
//! * [`RouterKind::Batched`] — each sender first splits its outbox into
//!   **per-destination batched buffers**, then every destination's inbox
//!   is assembled independently (and concurrently, on the scheduler) by
//!   concatenating the senders' buffers for that destination in
//!   sender-id order. No global pass, no shared append point — the
//!   shuffle parallelizes over destinations, which is how a real sharded
//!   runtime moves data.
//!
//! Both planes deliver every inbox in exactly the same order — sender id
//! ascending, send order within a sender — so routing is **bit-identical**
//! across planes, schedules and thread counts. The equivalence is
//! asserted here and end-to-end by the cluster's runtime tests.

use crate::executor::RawSlots;
use crate::shard::MachineId;
use crate::superstep::Scheduler;
use crate::words::WordSized;

/// Which routing plane delivers exchanged messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterKind {
    /// Sequential global merge over all outboxes (the reference plane).
    #[default]
    Merge,
    /// Per-destination batched buffers, assembled concurrently per
    /// destination.
    Batched,
}

impl RouterKind {
    /// Short name for traces and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            RouterKind::Merge => "merge",
            RouterKind::Batched => "batched",
        }
    }
}

/// Outgoing messages staged by one machine during a superstep.
#[derive(Debug)]
pub struct Outbox<M> {
    machines: usize,
    pub(crate) msgs: Vec<(MachineId, M)>,
}

impl<M> Outbox<M> {
    /// An empty outbox addressing `machines` destinations.
    pub(crate) fn new(machines: usize) -> Self {
        Outbox {
            machines,
            msgs: Vec::new(),
        }
    }

    /// Stages `msg` for delivery to `dst` at the start of the next round.
    pub fn send(&mut self, dst: MachineId, msg: M) {
        assert!(dst < self.machines, "destination {dst} out of range");
        self.msgs.push((dst, msg));
    }

    /// Number of staged messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True if nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Total staged words (the sender's metered outgoing volume).
    pub(crate) fn staged_words(&self) -> usize
    where
        M: WordSized,
    {
        self.msgs.iter().map(|(_, m)| m.words()).sum()
    }
}

/// Delivered messages: one inbox per destination plus the per-destination
/// word volume the cluster budgets against machine memory.
pub(crate) struct Delivery<M> {
    /// Per-destination inboxes, ordered by (sender id, send order).
    pub inboxes: Vec<Vec<M>>,
    /// Words received per destination.
    pub in_words: Vec<usize>,
}

/// Routes all staged outboxes to their destinations under `kind`. The
/// outboxes arrive in sender-id order (one per machine); the returned
/// inboxes are identical for every plane.
pub(crate) fn route<M: WordSized + Send>(
    kind: RouterKind,
    sched: &Scheduler,
    machines: usize,
    outboxes: Vec<Outbox<M>>,
) -> Delivery<M> {
    match kind {
        RouterKind::Merge => route_merge(machines, outboxes),
        RouterKind::Batched => route_batched(sched, machines, outboxes),
    }
}

/// The reference plane: one sequential pass, stable by construction.
fn route_merge<M: WordSized>(machines: usize, outboxes: Vec<Outbox<M>>) -> Delivery<M> {
    let mut inboxes: Vec<Vec<M>> = (0..machines).map(|_| Vec::new()).collect();
    let mut in_words = vec![0usize; machines];
    for outbox in outboxes {
        for (dst, msg) in outbox.msgs {
            in_words[dst] += msg.words();
            inboxes[dst].push(msg);
        }
    }
    Delivery { inboxes, in_words }
}

/// The batched plane: split each outbox into per-destination buffers
/// (concurrently over senders), then assemble each inbox (concurrently
/// over destinations) by concatenating the senders' buffers for that
/// destination in sender-id order — the same delivery order the merge
/// plane produces, without its global sequential pass.
///
/// The buffer matrix costs `Θ(senders × machines)` cells per exchange,
/// which only pays when there is enough traffic to amortize it: batching
/// engages only when the average cell occupancy is at least 1/4 (matrix
/// work `O(messages)`), and sparse rounds route through the
/// `O(messages)` merge assembly instead. The cutoff is a pure function
/// of the message counts and both paths deliver identically, so it
/// cannot leak into observables.
fn route_batched<M: WordSized + Send>(
    sched: &Scheduler,
    machines: usize,
    outboxes: Vec<Outbox<M>>,
) -> Delivery<M> {
    let senders = outboxes.len();
    let total: usize = outboxes.iter().map(Outbox::len).sum();
    if total.saturating_mul(4) < senders.saturating_mul(machines) {
        return route_merge(machines, outboxes);
    }
    // Stage 1: per-sender destination buffers. Row `s` holds sender `s`'s
    // messages bucketed by destination, each bucket in send order.
    let mut outboxes = outboxes;
    let rows: Vec<Vec<Vec<M>>> = sched.map_mut(&mut outboxes, |_, outbox| {
        let mut row: Vec<Vec<M>> = (0..machines).map(|_| Vec::new()).collect();
        for (dst, msg) in outbox.msgs.drain(..) {
            row[dst].push(msg);
        }
        row
    });
    // Flatten to a senders × machines buffer matrix; destination `d` owns
    // exactly the cells `s * machines + d`.
    let mut matrix: Vec<Vec<M>> = rows.into_iter().flatten().collect();
    debug_assert_eq!(matrix.len(), senders * machines);
    let cells = RawSlots::new(matrix.as_mut_ptr());
    let assembled: Vec<(Vec<M>, usize)> = sched.map_count(machines, |d| {
        let mut inbox = Vec::new();
        let mut words = 0usize;
        for s in 0..senders {
            // SAFETY: destination tasks touch disjoint matrix cells —
            // distinct `d` values index distinct residues mod `machines`
            // — and each cell is drained exactly once.
            let bucket = unsafe { &mut *cells.slot(s * machines + d) };
            words += bucket.iter().map(WordSized::words).sum::<usize>();
            inbox.append(bucket);
        }
        (inbox, words)
    });
    drop(matrix); // only empty buffers remain
    let (inboxes, in_words) = assembled.into_iter().unzip();
    Delivery { inboxes, in_words }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ThreadPoolExecutor;
    use crate::rng::DetRng;
    use crate::superstep::SchedulePolicy;
    use std::sync::Arc;

    fn sched(threads: usize, policy: SchedulePolicy) -> Scheduler {
        Scheduler::new(Arc::new(ThreadPoolExecutor::new(threads)), policy)
    }

    /// Random all-to-all traffic: both planes must deliver identical
    /// inboxes and word counts at every thread count.
    #[test]
    fn planes_are_bit_identical() {
        for (machines, volume, seed) in [(1usize, 5usize, 1u64), (4, 40, 2), (9, 200, 3)] {
            let staged: Vec<Vec<(MachineId, u64)>> = (0..machines)
                .map(|s| {
                    let mut rng = DetRng::derive(seed, &[s as u64]);
                    (0..volume)
                        .map(|k| ((rng.range(machines as u64)) as usize, (s * 1000 + k) as u64))
                        .collect()
                })
                .collect();
            let outboxes = || -> Vec<Outbox<u64>> {
                staged
                    .iter()
                    .map(|msgs| {
                        let mut out = Outbox::new(machines);
                        for &(dst, m) in msgs {
                            out.send(dst, m);
                        }
                        out
                    })
                    .collect()
            };
            let s1 = sched(1, SchedulePolicy::Dynamic);
            let reference = route(RouterKind::Merge, &s1, machines, outboxes());
            for threads in [1usize, 2, 4] {
                for policy in [SchedulePolicy::Dynamic, SchedulePolicy::Static] {
                    let s = sched(threads, policy);
                    let got = route(RouterKind::Batched, &s, machines, outboxes());
                    assert_eq!(got.inboxes, reference.inboxes, "threads {threads}");
                    assert_eq!(got.in_words, reference.in_words, "threads {threads}");
                }
            }
        }
    }

    #[test]
    fn delivery_is_sender_then_send_order() {
        let s = sched(4, SchedulePolicy::Static);
        let mut outboxes: Vec<Outbox<u64>> = (0..3).map(|_| Outbox::new(3)).collect();
        outboxes[2].send(0, 20);
        outboxes[2].send(0, 21);
        outboxes[0].send(0, 1);
        outboxes[1].send(2, 12);
        let d = route(RouterKind::Batched, &s, 3, outboxes);
        assert_eq!(d.inboxes[0], vec![1, 20, 21]);
        assert!(d.inboxes[1].is_empty());
        assert_eq!(d.inboxes[2], vec![12]);
        assert_eq!(d.in_words, vec![3, 0, 1]);
    }

    #[test]
    fn sparse_rounds_take_the_direct_path_and_still_agree() {
        // Below the batching cutoff (cell occupancy under 1/4) the
        // batched plane delegates to the merge assembly; delivery and
        // word counts must be indistinguishable.
        let s = sched(4, SchedulePolicy::Static);
        for volume in [0usize, 1, 5] {
            let outboxes = || -> Vec<Outbox<u64>> {
                let mut obs: Vec<Outbox<u64>> = (0..8).map(|_| Outbox::new(8)).collect();
                for k in 0..volume {
                    obs[k % 8].send((k * 3) % 8, k as u64);
                }
                obs
            };
            let merge = route(RouterKind::Merge, &s, 8, outboxes());
            let batched = route(RouterKind::Batched, &s, 8, outboxes());
            assert_eq!(batched.inboxes, merge.inboxes, "volume {volume}");
            assert_eq!(batched.in_words, merge.in_words, "volume {volume}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn outbox_rejects_bad_destination() {
        Outbox::new(2).send(2, 7u64);
    }

    #[test]
    fn outbox_accounting() {
        let mut out = Outbox::new(4);
        assert!(out.is_empty());
        out.send(3, vec![1u64, 2, 3]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.staged_words(), 4); // 1 length word + 3 payload
        assert_eq!(RouterKind::Batched.name(), "batched");
    }
}
