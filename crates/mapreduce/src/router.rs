//! The routing plane: how staged messages travel between shards.
//!
//! A superstep's `exchange` has two halves — per-shard *staging* (each
//! machine fills an [`Outbox`]) and *delivery* (every message lands in
//! its destination's inbox). The model charges one round either way; what
//! the router decides is how the host performs the shuffle:
//!
//! * [`RouterKind::Merge`] — one sequential global pass over all
//!   outboxes, appending each message to a freshly allocated inbox per
//!   destination (the original engine; the reference plane).
//! * [`RouterKind::Columnar`] — outboxes are *columnar* (one flat
//!   message column plus a parallel destination column; see [`Outbox`]),
//!   and delivery is a counting sort: count messages per destination,
//!   prefix-sum the counts into per-machine `(offset, len)` ranges, then
//!   scatter every message into a single flat inbox **arena** at its
//!   destination's cursor. Senders are processed in id order and the
//!   scatter is stable, so each destination's range reads back in
//!   exactly `(sender id, send order)` — the same order the merge plane
//!   produces. With enough traffic the count and scatter passes run
//!   concurrently over senders (each sender owns a disjoint row of the
//!   count matrix and a disjoint set of arena cursors); sparse rounds
//!   take a sequential two-pass counting sort, which is already
//!   `O(messages + machines)` with no nested buffers.
//!
//! Both planes deliver every inbox in exactly the same order — sender id
//! ascending, send order within a sender — so routing is **bit-identical**
//! across planes, schedules and thread counts. The equivalence is
//! asserted here and end-to-end by the cluster's runtime tests.
//!
//! ## Buffer reuse: [`RouterScratch`]
//!
//! The columnar plane's buffers — outbox columns, the inbox arena, and
//! the `usize` count/cursor/range scratch — are pooled in a
//! [`RouterScratch`] owned by the cluster and threaded through every
//! exchange. After the consume pass drains the arena, its capacity (and
//! every outbox column's) goes back to the pool, so steady-state
//! supersteps perform no message-buffer allocation at all: the per-type
//! pool is keyed by `TypeId`, which is why exchanged messages are
//! `'static`. Word accounting rides the same passes: an [`Outbox`]
//! tracks its staged words incrementally (O(1) [`Outbox::len`]-style
//! queries) and per-destination `in_words` are accumulated during the
//! counting pass, not by a separate walk over delivered messages.
//!
//! [`RouterScratch`] reuse is an *in-process* optimisation: the
//! `Backend::Dist` shuffle instead serializes outboxes to per-worker
//! batches and must retain those encoded bytes for fault-tolerant
//! replay (a respawned worker is re-sent the batches the dead one had
//! ingested), so its deliveries are built nested from the decoded
//! regions (`Delivery::from_nested`) and the pool only recycles the
//! staging columns. Replay correctness never depends on pooled memory:
//! the retained bytes, not the buffers, are the recovery source.

use std::any::{Any, TypeId};
use std::collections::HashMap;

use crate::executor::RawSlots;
use crate::shard::MachineId;
use crate::superstep::Scheduler;
use crate::words::WordSized;

/// Which routing plane delivers exchanged messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterKind {
    /// Sequential global merge over all outboxes (the reference plane).
    #[default]
    Merge,
    /// Columnar outboxes delivered by a (concurrent) counting sort into
    /// a flat, pooled inbox arena.
    Columnar,
}

impl RouterKind {
    /// Short name for traces and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            RouterKind::Merge => "merge",
            RouterKind::Columnar => "columnar",
        }
    }
}

/// Outgoing messages staged by one machine during a superstep, stored
/// columnar: a flat message column plus a parallel destination column.
/// Staged word volume is tracked incrementally at [`Outbox::send`], so
/// metering reads it in O(1) instead of re-walking the messages.
#[derive(Debug)]
pub struct Outbox<M> {
    machines: usize,
    pub(crate) msgs: Vec<M>,
    pub(crate) dsts: Vec<MachineId>,
    staged_words: usize,
}

impl<M> Outbox<M> {
    /// An empty outbox addressing `machines` destinations (tests stage
    /// outboxes directly; the cluster always supplies pooled buffers).
    #[cfg(test)]
    pub(crate) fn new(machines: usize) -> Self {
        Outbox::with_buffers(machines, Vec::new(), Vec::new())
    }

    /// An empty outbox reusing pooled column buffers (capacity kept from
    /// an earlier superstep).
    pub(crate) fn with_buffers(machines: usize, msgs: Vec<M>, dsts: Vec<MachineId>) -> Self {
        debug_assert!(msgs.is_empty() && dsts.is_empty());
        Outbox {
            machines,
            msgs,
            dsts,
            staged_words: 0,
        }
    }

    /// Stages `msg` for delivery to `dst` at the start of the next round.
    pub fn send(&mut self, dst: MachineId, msg: M)
    where
        M: WordSized,
    {
        assert!(dst < self.machines, "destination {dst} out of range");
        self.staged_words += msg.words();
        self.msgs.push(msg);
        self.dsts.push(dst);
    }

    /// Number of staged messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True if nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Total staged words (the sender's metered outgoing volume),
    /// accumulated at [`Outbox::send`] time.
    pub(crate) fn staged_words(&self) -> usize {
        self.staged_words
    }

    /// Drains the staged `(destination, message)` pairs in send order,
    /// leaving the column buffers empty with capacity intact.
    pub(crate) fn drain_pairs(&mut self) -> impl Iterator<Item = (MachineId, M)> + '_ {
        self.staged_words = 0;
        self.dsts.drain(..).zip(self.msgs.drain(..))
    }

    /// Consumes the outbox, returning its (emptied) column buffers to be
    /// pooled.
    pub(crate) fn into_buffers(mut self) -> (Vec<M>, Vec<MachineId>) {
        self.msgs.clear();
        self.dsts.clear();
        (self.msgs, self.dsts)
    }
}

/// Delivered messages for one exchange round: every destination's inbox
/// plus the per-destination word volume the cluster budgets against
/// machine memory.
///
/// The representation depends on the plane that built it — the merge
/// plane and the dist shuffle deliver one `Vec` per destination, the
/// columnar plane one flat arena with per-destination `(offset, len)`
/// ranges — but both read back identically through [`Inbox`] views.
pub(crate) struct Delivery<M> {
    repr: Repr<M>,
    in_words: Vec<usize>,
}

enum Repr<M> {
    /// One owned buffer per destination (merge plane, dist shuffle).
    Nested(Vec<Vec<M>>),
    /// One flat arena; destination `d` owns `arena[ranges[d].0 ..][.. ranges[d].1]`.
    Flat {
        arena: Vec<M>,
        ranges: Vec<(usize, usize)>,
    },
}

impl<M> Delivery<M> {
    /// Wraps per-destination buffers produced outside the router (the
    /// dist shuffle's decoded regions).
    pub(crate) fn from_nested(inboxes: Vec<Vec<M>>, in_words: Vec<usize>) -> Self {
        debug_assert_eq!(inboxes.len(), in_words.len());
        Delivery {
            repr: Repr::Nested(inboxes),
            in_words,
        }
    }

    /// Words received per destination.
    pub(crate) fn in_words(&self) -> &[usize] {
        &self.in_words
    }

    /// Splits the delivery into one [`Inbox`] per destination plus the
    /// buffers backing them.
    ///
    /// # Safety
    ///
    /// For a flat delivery the inboxes read straight out of the returned
    /// [`DeliveryBuffers`]' arena; the caller must keep the buffers
    /// alive until every inbox has been dropped (and only then recycle
    /// them).
    pub(crate) unsafe fn into_inboxes(self) -> (Vec<Inbox<M>>, DeliveryBuffers<M>) {
        match self.repr {
            Repr::Nested(inboxes) => {
                let views = inboxes.into_iter().map(Inbox::owned).collect();
                (
                    views,
                    DeliveryBuffers {
                        arena: None,
                        ranges: None,
                        in_words: self.in_words,
                    },
                )
            }
            Repr::Flat { mut arena, ranges } => {
                let base = arena.as_mut_ptr();
                // Ownership of the elements moves to the inboxes (each
                // element belongs to exactly one range); the arena keeps
                // only the allocation, for recycling.
                unsafe { arena.set_len(0) };
                let views = ranges
                    .iter()
                    .map(|&(off, len)| unsafe { Inbox::raw(base.add(off), len) })
                    .collect();
                (
                    views,
                    DeliveryBuffers {
                        arena: Some(arena),
                        ranges: Some(ranges),
                        in_words: self.in_words,
                    },
                )
            }
        }
    }

    /// Materializes every inbox as an owned `Vec` — test-only view for
    /// comparing planes.
    #[cfg(test)]
    pub(crate) fn nested(&self) -> Vec<Vec<M>>
    where
        M: Clone,
    {
        match &self.repr {
            Repr::Nested(inboxes) => inboxes.clone(),
            Repr::Flat { arena, ranges } => ranges
                .iter()
                .map(|&(off, len)| arena[off..off + len].to_vec())
                .collect(),
        }
    }
}

/// The buffers backing a round's [`Inbox`]es, held by the cluster for
/// the duration of the consume pass and then recycled into the
/// [`RouterScratch`] pool.
pub(crate) struct DeliveryBuffers<M> {
    arena: Option<Vec<M>>,
    ranges: Option<Vec<(usize, usize)>>,
    in_words: Vec<usize>,
}

impl<M> DeliveryBuffers<M> {
    /// Returns the backing buffers (arena capacity, range and word
    /// vectors) to the pool. Call after the consume pass has dropped
    /// every [`Inbox`].
    pub(crate) fn recycle(self, scratch: &mut RouterScratch)
    where
        M: Send + 'static,
    {
        if let Some(arena) = self.arena {
            debug_assert!(arena.is_empty());
            scratch.typed::<M>().arenas.push(arena);
        }
        if let Some(ranges) = self.ranges {
            scratch.put_ranges(ranges);
        }
        scratch.put_usizes(self.in_words);
    }
}

/// The messages delivered to one machine in one exchange round, in
/// `(sender id, send order)` order. Iterate it (it is an exact-size
/// iterator yielding owned messages) or take the whole batch with
/// [`Inbox::into_vec`].
pub struct Inbox<M> {
    repr: InboxRepr<M>,
}

enum InboxRepr<M> {
    /// Messages owned outright (merge plane, dist shuffle).
    Owned(std::vec::IntoIter<M>),
    /// A range of the columnar plane's arena; elements are owned by this
    /// inbox (read out by value, leftovers dropped in place) while the
    /// allocation stays with the cluster's [`DeliveryBuffers`].
    Raw { next: *mut M, remaining: usize },
}

// SAFETY: an `Inbox` owns the elements it points at exclusively (the
// arena ranges are disjoint and the arena's length was zeroed), so it
// can move to another thread whenever the element type can.
unsafe impl<M: Send> Send for Inbox<M> {}

impl<M> Default for Inbox<M> {
    fn default() -> Self {
        Inbox::owned(Vec::new())
    }
}

impl<M> Inbox<M> {
    pub(crate) fn owned(msgs: Vec<M>) -> Self {
        Inbox {
            repr: InboxRepr::Owned(msgs.into_iter()),
        }
    }

    /// # Safety
    ///
    /// `base .. base + len` must be initialized elements this inbox may
    /// take ownership of, backed by an allocation that outlives it.
    pub(crate) unsafe fn raw(base: *mut M, len: usize) -> Self {
        Inbox {
            repr: InboxRepr::Raw {
                next: base,
                remaining: len,
            },
        }
    }

    /// Messages not yet read.
    pub fn len(&self) -> usize {
        match &self.repr {
            InboxRepr::Owned(iter) => iter.len(),
            InboxRepr::Raw { remaining, .. } => *remaining,
        }
    }

    /// True when every message has been read (or none arrived).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Moves the remaining messages into an owned `Vec`.
    pub fn into_vec(self) -> Vec<M> {
        self.collect()
    }
}

impl<M> Iterator for Inbox<M> {
    type Item = M;

    fn next(&mut self) -> Option<M> {
        match &mut self.repr {
            InboxRepr::Owned(iter) => iter.next(),
            InboxRepr::Raw { next, remaining } => {
                if *remaining == 0 {
                    return None;
                }
                // SAFETY: `next` points at an initialized element this
                // inbox owns; advancing consumes it exactly once.
                let msg = unsafe { next.read() };
                *next = unsafe { next.add(1) };
                *remaining -= 1;
                Some(msg)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl<M> ExactSizeIterator for Inbox<M> {}

impl<M> Drop for Inbox<M> {
    fn drop(&mut self) {
        if let InboxRepr::Raw { next, remaining } = &mut self.repr {
            // SAFETY: the unread elements are still owned by this inbox;
            // drop them in place (the allocation itself belongs to the
            // cluster's DeliveryBuffers).
            while *remaining > 0 {
                unsafe {
                    next.drop_in_place();
                    *next = next.add(1);
                }
                *remaining -= 1;
            }
        }
    }
}

/// Pooled buffers reused across exchange rounds (owned by the cluster,
/// threaded through the crate-internal `route`): outbox columns and inbox arenas per
/// message type, plus the type-independent `usize` count/cursor/range
/// scratch. Steady-state supersteps on the columnar plane draw
/// everything from here and return it after the consume pass, so they
/// allocate no message buffers at all.
#[derive(Default)]
pub struct RouterScratch {
    usizes: Vec<Vec<usize>>,
    ranges: Vec<Vec<(usize, usize)>>,
    typed: HashMap<TypeId, Box<dyn AnyPool>>,
}

struct TypedPool<M> {
    arenas: Vec<Vec<M>>,
    columns: Vec<(Vec<M>, Vec<MachineId>)>,
}

impl<M> Default for TypedPool<M> {
    fn default() -> Self {
        TypedPool {
            arenas: Vec::new(),
            columns: Vec::new(),
        }
    }
}

/// Type-erased view of a [`TypedPool`] that still answers "how many
/// buffers do you hold" — the hook behind
/// [`RouterScratch::pooled_buffers`], which the cluster uses to assert
/// that exchange rounds return every buffer they take (the leak class
/// where an early `?` exit dropped taken scratch on the floor).
trait AnyPool: Any + Send {
    // Referenced from debug assertions (and tests) only.
    #[cfg_attr(not(any(debug_assertions, test)), allow(dead_code))]
    fn buffers(&self) -> usize;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M: Send + 'static> AnyPool for TypedPool<M> {
    fn buffers(&self) -> usize {
        self.arenas.len() + self.columns.len()
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl RouterScratch {
    fn typed<M: Send + 'static>(&mut self) -> &mut TypedPool<M> {
        self.typed
            .entry(TypeId::of::<M>())
            .or_insert_with(|| Box::new(TypedPool::<M>::default()))
            .as_any_mut()
            .downcast_mut::<TypedPool<M>>()
            .expect("pool entry matches its TypeId")
    }

    /// Total buffers currently resting in the pool, across every type.
    /// Steady-state supersteps must leave this non-decreasing: whatever a
    /// round takes it must put back once the consume pass finishes, even
    /// on budget-violation exits. The cluster debug-asserts exactly that
    /// after each exchange.
    #[cfg_attr(not(any(debug_assertions, test)), allow(dead_code))]
    pub(crate) fn pooled_buffers(&self) -> usize {
        self.usizes.len()
            + self.ranges.len()
            + self.typed.values().map(|p| p.buffers()).sum::<usize>()
    }

    /// A zeroed `usize` buffer of length `n`.
    pub(crate) fn take_usizes(&mut self, n: usize) -> Vec<usize> {
        let mut v = self.usizes.pop().unwrap_or_default();
        v.clear();
        v.resize(n, 0);
        v
    }

    pub(crate) fn put_usizes(&mut self, v: Vec<usize>) {
        self.usizes.push(v);
    }

    /// An empty `usize` buffer (capacity retained) for push-style use —
    /// the payload plane's `lens` column.
    pub(crate) fn take_usizes_empty(&mut self) -> Vec<usize> {
        let mut v = self.usizes.pop().unwrap_or_default();
        v.clear();
        v
    }

    pub(crate) fn take_ranges(&mut self, n: usize) -> Vec<(usize, usize)> {
        let mut v = self.ranges.pop().unwrap_or_default();
        v.clear();
        v.resize(n, (0, 0));
        v
    }

    /// An empty range buffer (capacity retained) for push-style use —
    /// the dist payload decode builds spans incrementally.
    pub(crate) fn take_ranges_empty(&mut self) -> Vec<(usize, usize)> {
        let mut v = self.ranges.pop().unwrap_or_default();
        v.clear();
        v
    }

    pub(crate) fn put_ranges(&mut self, v: Vec<(usize, usize)>) {
        self.ranges.push(v);
    }

    /// Pooled outbox column buffers (empty, capacity retained).
    pub(crate) fn take_columns<M: Send + 'static>(&mut self) -> (Vec<M>, Vec<MachineId>) {
        self.typed::<M>().columns.pop().unwrap_or_default()
    }

    pub(crate) fn put_columns<M: Send + 'static>(&mut self, columns: (Vec<M>, Vec<MachineId>)) {
        self.typed::<M>().columns.push(columns);
    }

    pub(crate) fn take_arena<M: Send + 'static>(&mut self) -> Vec<M> {
        let arena = self.typed::<M>().arenas.pop().unwrap_or_default();
        debug_assert!(arena.is_empty());
        arena
    }

    pub(crate) fn put_arena<M: Send + 'static>(&mut self, arena: Vec<M>) {
        debug_assert!(arena.is_empty());
        self.typed::<M>().arenas.push(arena);
    }
}

/// Routes all staged outboxes to their destinations under `kind`. The
/// outboxes arrive in sender-id order (one per machine); the returned
/// inboxes are identical for every plane. Emptied outbox columns (and,
/// for the columnar plane, count scratch) are recycled into `scratch`.
pub(crate) fn route<M: WordSized + Send + 'static>(
    kind: RouterKind,
    sched: &Scheduler,
    machines: usize,
    outboxes: Vec<Outbox<M>>,
    scratch: &mut RouterScratch,
) -> Delivery<M> {
    match kind {
        RouterKind::Merge => route_merge(machines, outboxes, scratch),
        RouterKind::Columnar => route_columnar(sched, machines, outboxes, scratch),
    }
}

/// The reference plane: one sequential pass appending into freshly
/// allocated per-destination buffers, stable by construction. Kept
/// deliberately independent of the columnar machinery (no arena, no
/// counting sort) so the equivalence tests compare two genuinely
/// different implementations.
fn route_merge<M: WordSized + Send + 'static>(
    machines: usize,
    outboxes: Vec<Outbox<M>>,
    scratch: &mut RouterScratch,
) -> Delivery<M> {
    let mut inboxes: Vec<Vec<M>> = (0..machines).map(|_| Vec::new()).collect();
    let mut in_words = scratch.take_usizes(machines);
    for mut outbox in outboxes {
        for (dst, msg) in outbox.drain_pairs() {
            in_words[dst] += msg.words();
            inboxes[dst].push(msg);
        }
        scratch.put_columns(outbox.into_buffers());
    }
    Delivery::from_nested(inboxes, in_words)
}

/// The columnar plane: a counting sort into one flat arena.
///
/// Counting and word accounting happen in a single pass over the
/// destination columns; the stable scatter processes senders in id
/// order, so destination `d`'s range reads back in `(sender id, send
/// order)` — the merge plane's order. Dense rounds (cell occupancy of
/// the sender × machine count matrix at least 1/4) run both passes
/// concurrently over senders; sparse rounds and single-threaded
/// schedulers use the sequential two-pass sort, which allocates nothing
/// beyond the pooled scratch either.
fn route_columnar<M: WordSized + Send + 'static>(
    sched: &Scheduler,
    machines: usize,
    mut outboxes: Vec<Outbox<M>>,
    scratch: &mut RouterScratch,
) -> Delivery<M> {
    let senders = outboxes.len();
    let total: usize = outboxes.iter().map(Outbox::len).sum();
    let mut arena: Vec<M> = scratch.take_arena();
    arena.reserve(total);
    let mut in_words = scratch.take_usizes(machines);
    let mut ranges = scratch.take_ranges(machines);

    let parallel =
        sched.threads() > 1 && total.saturating_mul(4) >= senders.saturating_mul(machines);
    if parallel {
        // Concurrent counting sort. Stage 1: sender `s` fills row `s` of
        // the count and word matrices (disjoint rows, so the pass
        // parallelizes over senders with no synchronization).
        let mut counts = scratch.take_usizes(senders * machines);
        let mut words = scratch.take_usizes(senders * machines);
        let count_rows = RawSlots::new(counts.as_mut_ptr());
        let word_rows = RawSlots::new(words.as_mut_ptr());
        sched.map_mut(&mut outboxes, |s, outbox| {
            // SAFETY: sender `s` writes only its own `machines`-wide row;
            // rows are disjoint and the matrices outlive the pass.
            let (crow, wrow) = unsafe {
                (
                    std::slice::from_raw_parts_mut(count_rows.slot(s * machines), machines),
                    std::slice::from_raw_parts_mut(word_rows.slot(s * machines), machines),
                )
            };
            for (&dst, msg) in outbox.dsts.iter().zip(&outbox.msgs) {
                crow[dst] += 1;
                wrow[dst] += msg.words();
            }
        });
        // Column-major prefix sum: destination ranges in machine order,
        // sender order within a destination. `counts[s][d]` becomes the
        // arena cursor where sender `s`'s block for `d` starts.
        let mut offset = 0usize;
        for (d, range) in ranges.iter_mut().enumerate() {
            let start = offset;
            let mut dwords = 0usize;
            for s in 0..senders {
                let cell = s * machines + d;
                let c = counts[cell];
                counts[cell] = offset;
                offset += c;
                dwords += words[cell];
            }
            *range = (start, offset - start);
            in_words[d] = dwords;
        }
        debug_assert_eq!(offset, total);
        // Stage 2: stable scatter, concurrent over senders. Each sender
        // moves its messages to its own cursor block per destination;
        // blocks are disjoint by construction of the prefix sums.
        let cursor_rows = RawSlots::new(counts.as_mut_ptr());
        let arena_base = RawSlots::new(arena.as_mut_ptr());
        sched.map_mut(&mut outboxes, |s, outbox| {
            let n = outbox.msgs.len();
            let msgs = outbox.msgs.as_mut_ptr();
            // SAFETY: the messages are moved out exactly once each (the
            // column's length is zeroed first, so nothing double-drops),
            // into arena slots this sender's cursors own exclusively.
            unsafe {
                outbox.msgs.set_len(0);
                let cursors =
                    std::slice::from_raw_parts_mut(cursor_rows.slot(s * machines), machines);
                for i in 0..n {
                    let dst = *outbox.dsts.get_unchecked(i);
                    arena_base.slot(cursors[dst]).write(msgs.add(i).read());
                    cursors[dst] += 1;
                }
            }
            outbox.dsts.clear();
            outbox.staged_words = 0;
        });
        // SAFETY: every slot in 0..total was written exactly once above.
        unsafe { arena.set_len(total) };
        scratch.put_usizes(counts);
        scratch.put_usizes(words);
    } else {
        // Sequential counting sort: count + account words in one pass,
        // prefix, then a stable scatter in sender order.
        let mut cursors = scratch.take_usizes(machines);
        for outbox in &outboxes {
            for (&dst, msg) in outbox.dsts.iter().zip(&outbox.msgs) {
                cursors[dst] += 1;
                in_words[dst] += msg.words();
            }
        }
        let mut offset = 0usize;
        for (d, range) in ranges.iter_mut().enumerate() {
            let count = cursors[d];
            *range = (offset, count);
            cursors[d] = offset;
            offset += count;
        }
        debug_assert_eq!(offset, total);
        let arena_base = arena.as_mut_ptr();
        for outbox in &mut outboxes {
            let n = outbox.msgs.len();
            let msgs = outbox.msgs.as_mut_ptr();
            // SAFETY: as in the parallel scatter — each message moves
            // exactly once into a slot owned by its (sender, dst) block.
            unsafe {
                outbox.msgs.set_len(0);
                for i in 0..n {
                    let dst = *outbox.dsts.get_unchecked(i);
                    arena_base.add(cursors[dst]).write(msgs.add(i).read());
                    cursors[dst] += 1;
                }
            }
            outbox.dsts.clear();
            outbox.staged_words = 0;
        }
        // SAFETY: every slot in 0..total was written exactly once above.
        unsafe { arena.set_len(total) };
        scratch.put_usizes(cursors);
    }
    for outbox in outboxes {
        scratch.put_columns(outbox.into_buffers());
    }
    Delivery {
        repr: Repr::Flat { arena, ranges },
        in_words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ThreadPoolExecutor;
    use crate::rng::DetRng;
    use crate::superstep::SchedulePolicy;
    use std::sync::Arc;

    fn sched(threads: usize, policy: SchedulePolicy) -> Scheduler {
        Scheduler::new(Arc::new(ThreadPoolExecutor::new(threads)), policy)
    }

    /// Random all-to-all traffic: both planes must deliver identical
    /// inboxes and word counts at every thread count.
    #[test]
    fn planes_are_bit_identical() {
        for (machines, volume, seed) in [(1usize, 5usize, 1u64), (4, 40, 2), (9, 200, 3)] {
            let staged: Vec<Vec<(MachineId, u64)>> = (0..machines)
                .map(|s| {
                    let mut rng = DetRng::derive(seed, &[s as u64]);
                    (0..volume)
                        .map(|k| ((rng.range(machines as u64)) as usize, (s * 1000 + k) as u64))
                        .collect()
                })
                .collect();
            let outboxes = || -> Vec<Outbox<u64>> {
                staged
                    .iter()
                    .map(|msgs| {
                        let mut out = Outbox::new(machines);
                        for &(dst, m) in msgs {
                            out.send(dst, m);
                        }
                        out
                    })
                    .collect()
            };
            let s1 = sched(1, SchedulePolicy::Dynamic);
            let mut scratch = RouterScratch::default();
            let reference = route(RouterKind::Merge, &s1, machines, outboxes(), &mut scratch);
            for threads in [1usize, 2, 4] {
                for policy in [SchedulePolicy::Dynamic, SchedulePolicy::Static] {
                    let s = sched(threads, policy);
                    let got = route(RouterKind::Columnar, &s, machines, outboxes(), &mut scratch);
                    assert_eq!(got.nested(), reference.nested(), "threads {threads}");
                    assert_eq!(got.in_words(), reference.in_words(), "threads {threads}");
                }
            }
        }
    }

    /// Buffer pooling across rounds must not perturb delivery: run many
    /// supersteps of varying volume through one scratch and compare each
    /// against a fresh merge reference.
    #[test]
    fn pooled_scratch_is_invisible_across_rounds() {
        let machines = 6;
        let s4 = sched(4, SchedulePolicy::Static);
        let s1 = sched(1, SchedulePolicy::Dynamic);
        let mut scratch = RouterScratch::default();
        for round in 0..12u64 {
            let volume = [0usize, 3, 77, 5, 200][round as usize % 5];
            let outboxes = || -> Vec<Outbox<u64>> {
                (0..machines)
                    .map(|s| {
                        let mut rng = DetRng::derive(round, &[s as u64]);
                        let mut out = Outbox::new(machines);
                        for _ in 0..volume {
                            out.send(rng.range(machines as u64) as usize, rng.next_u64());
                        }
                        out
                    })
                    .collect()
            };
            let mut fresh = RouterScratch::default();
            let want = route(RouterKind::Merge, &s1, machines, outboxes(), &mut fresh);
            let got = route(
                RouterKind::Columnar,
                &s4,
                machines,
                outboxes(),
                &mut scratch,
            );
            assert_eq!(got.nested(), want.nested(), "round {round}");
            assert_eq!(got.in_words(), want.in_words(), "round {round}");
        }
    }

    #[test]
    fn delivery_is_sender_then_send_order() {
        let s = sched(4, SchedulePolicy::Static);
        let mut scratch = RouterScratch::default();
        let mut outboxes: Vec<Outbox<u64>> = (0..3).map(|_| Outbox::new(3)).collect();
        outboxes[2].send(0, 20);
        outboxes[2].send(0, 21);
        outboxes[0].send(0, 1);
        outboxes[1].send(2, 12);
        let d = route(RouterKind::Columnar, &s, 3, outboxes, &mut scratch);
        let inboxes = d.nested();
        assert_eq!(inboxes[0], vec![1, 20, 21]);
        assert!(inboxes[1].is_empty());
        assert_eq!(inboxes[2], vec![12]);
        assert_eq!(d.in_words(), &[3, 0, 1]);
    }

    #[test]
    fn sparse_rounds_take_the_sequential_path_and_still_agree() {
        // Below the density cutoff (cell occupancy under 1/4) the
        // columnar plane uses the sequential counting sort; delivery and
        // word counts must be indistinguishable.
        let s = sched(4, SchedulePolicy::Static);
        for volume in [0usize, 1, 5] {
            let outboxes = || -> Vec<Outbox<u64>> {
                let mut obs: Vec<Outbox<u64>> = (0..8).map(|_| Outbox::new(8)).collect();
                for k in 0..volume {
                    obs[k % 8].send((k * 3) % 8, k as u64);
                }
                obs
            };
            let mut scratch = RouterScratch::default();
            let merge = route(RouterKind::Merge, &s, 8, outboxes(), &mut scratch);
            let columnar = route(RouterKind::Columnar, &s, 8, outboxes(), &mut scratch);
            assert_eq!(columnar.nested(), merge.nested(), "volume {volume}");
            assert_eq!(columnar.in_words(), merge.in_words(), "volume {volume}");
        }
    }

    /// Satellite regression: `in_words`, now folded into the delivery
    /// pass, must match the old definition — a separate walk summing
    /// `words()` over each delivered inbox — on a mixed-size workload.
    #[test]
    fn in_words_matches_recomputation_on_mixed_workload() {
        let machines = 5;
        let outboxes = || -> Vec<Outbox<Vec<u64>>> {
            (0..machines)
                .map(|s| {
                    let mut rng = DetRng::derive(99, &[s as u64]);
                    let mut out = Outbox::new(machines);
                    for _ in 0..60 {
                        let len = rng.range(7) as usize; // includes empty payloads
                        let payload: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
                        out.send(rng.range(machines as u64) as usize, payload);
                    }
                    out
                })
                .collect()
        };
        let mut scratch = RouterScratch::default();
        for (kind, threads) in [(RouterKind::Merge, 1), (RouterKind::Columnar, 4)] {
            let s = sched(threads, SchedulePolicy::Dynamic);
            let d = route(kind, &s, machines, outboxes(), &mut scratch);
            let recomputed: Vec<usize> = d
                .nested()
                .iter()
                .map(|inbox| inbox.iter().map(WordSized::words).sum())
                .collect();
            assert_eq!(d.in_words(), &recomputed[..], "{:?}", kind);
        }
    }

    /// Inbox views hand out messages by value in delivery order; unread
    /// messages are dropped cleanly (exercised via the drop-counting
    /// payload under Miri-style scrutiny in CI's normal test run).
    #[test]
    fn inbox_views_read_back_the_arena() {
        let s = sched(2, SchedulePolicy::Dynamic);
        let mut scratch = RouterScratch::default();
        let mut outboxes: Vec<Outbox<String>> = (0..3).map(|_| Outbox::new(3)).collect();
        outboxes[0].send(1, "a".into());
        outboxes[1].send(1, "b".into());
        outboxes[2].send(0, "c".into());
        outboxes[2].send(1, "d".into());
        let d = route(RouterKind::Columnar, &s, 3, outboxes, &mut scratch);
        // SAFETY: buffers outlive the inboxes below.
        let (mut views, buffers) = unsafe { d.into_inboxes() };
        assert_eq!(views.iter().map(Inbox::len).collect::<Vec<_>>(), [1, 3, 0]);
        let middle = views.remove(1);
        assert_eq!(middle.into_vec(), ["a", "b", "d"]);
        let mut first = views.remove(0);
        assert_eq!(first.next(), Some("c".into()));
        assert!(first.is_empty());
        drop(first);
        drop(views); // the empty inbox, never read
        buffers.recycle(&mut scratch);
        // The arena capacity survived for the next round.
        assert!(scratch.take_arena::<String>().capacity() >= 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn outbox_rejects_bad_destination() {
        Outbox::new(2).send(2, 7u64);
    }

    #[test]
    fn outbox_accounting() {
        let mut out = Outbox::new(4);
        assert!(out.is_empty());
        out.send(3, vec![1u64, 2, 3]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.staged_words(), 4); // 1 length word + 3 payload
        out.send(0, vec![9u64]);
        assert_eq!(out.staged_words(), 6); // incremental, still exact
        assert_eq!(RouterKind::Columnar.name(), "columnar");
    }
}
