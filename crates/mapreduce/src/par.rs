//! Sequential stand-ins for the rayon parallel-iterator entry points the
//! cluster uses (`par_iter`, `par_iter_mut`, `into_par_iter`).
//!
//! The build environment has no crates.io access, so rayon cannot be a
//! dependency. Machine execution order is part of the determinism contract
//! anyway (every observable is defined in machine-id order), so sequential
//! execution is semantically identical — real parallelism is a drop-in
//! swap: replace this import with `rayon::prelude::*` and the `Send + Sync`
//! bounds already in place make the closures parallel-safe.

use std::slice;
use std::vec;

/// `par_iter`/`par_iter_mut` over slices, sequentially.
pub trait ParSlice<T> {
    /// Sequential stand-in for `rayon`'s `par_iter`.
    fn par_iter(&self) -> slice::Iter<'_, T>;
    /// Sequential stand-in for `rayon`'s `par_iter_mut`.
    fn par_iter_mut(&mut self) -> slice::IterMut<'_, T>;
}

impl<T> ParSlice<T> for [T] {
    fn par_iter(&self) -> slice::Iter<'_, T> {
        self.iter()
    }
    fn par_iter_mut(&mut self) -> slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

/// `into_par_iter`, sequentially.
pub trait IntoParIter {
    /// Element type.
    type Item;
    /// Underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Sequential stand-in for `rayon`'s `into_par_iter`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T> IntoParIter for Vec<T> {
    type Item = T;
    type Iter = vec::IntoIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}
