//! Deterministic, partition-stable randomness.
//!
//! The paper's algorithms sample elements i.i.d. across machines. For the
//! simulation to be reproducible — and for the MapReduce drivers to produce
//! *bit-identical* output to their sequential counterparts regardless of how
//! entities are assigned to machines — every random decision is derived by
//! hashing `(seed, round, entity-id, …)` rather than by consuming a shared
//! stream. [`DetRng`] is a SplitMix64 generator for stream-style use (e.g.
//! shuffles on a single machine); the free functions provide the stateless
//! per-entity coins.

/// SplitMix64 step: advances the state and returns a well-mixed 64-bit value.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless mix of two 64-bit values (a strong finalizer, not a crypto hash).
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    splitmix64(&mut s)
}

/// Stateless mix of a seed with a list of tags, used to key per-entity,
/// per-round decisions: `mix_tags(seed, &[round, entity])`.
#[inline]
pub fn mix_tags(seed: u64, tags: &[u64]) -> u64 {
    let mut h = seed;
    for (i, &t) in tags.iter().enumerate() {
        h = mix2(h, t.wrapping_add(0xA076_1D64_78BD_642F ^ (i as u64)));
    }
    // One extra scramble so `mix_tags(s, &[x])` differs from `mix2(s, x)`.
    let mut s = h;
    splitmix64(&mut s)
}

/// Map a hash to a float uniform in `[0, 1)` using the top 53 bits.
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A partition-stable Bernoulli coin for entity `tag`: identical on every
/// machine that evaluates it, independent of evaluation order.
#[inline]
pub fn coin(seed: u64, tags: &[u64], p: f64) -> bool {
    unit_f64(mix_tags(seed, tags)) < p
}

/// A small, fast, deterministic RNG (SplitMix64).
///
/// Not cryptographically secure; statistically solid for simulation use
/// (passes the usual equidistribution sanity checks exercised in the tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        // Scramble once so that small seeds don't produce correlated streams.
        let mut s = seed ^ 0x6A09_E667_F3BC_C909;
        splitmix64(&mut s);
        DetRng { state: s }
    }

    /// Creates a generator keyed by a seed plus context tags
    /// (e.g. `(seed, [round, machine])`).
    pub fn derive(seed: u64, tags: &[u64]) -> Self {
        DetRng::new(mix_tags(seed, tags))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    pub fn range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "DetRng::range requires n > 0");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn range_usize(&mut self, n: usize) -> usize {
        self.range(n as u64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (all of them if `k >= n`),
    /// in uniformly random order, via a partial Fisher–Yates over an index
    /// array. O(n) time and space; fine for per-vertex adjacency sampling.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.range_usize(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Geometric-ish choice: index `i` chosen with probability proportional
    /// to `weights[i]`. Panics if all weights are zero or any is negative.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|w| *w >= 0.0),
            "weighted_choice requires nonnegative weights with positive sum"
        );
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = DetRng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_mean_close() {
        let mut r = DetRng::new(11);
        let n = 200_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let mean = hits as f64 / n as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_unbiased_small() {
        let mut r = DetRng::new(5);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[r.range_usize(5)] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.02, "frac {frac}");
        }
    }

    #[test]
    #[should_panic]
    fn range_zero_panics() {
        DetRng::new(0).range(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(3);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = DetRng::new(9);
        let s = r.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 10);
        assert!(t.iter().all(|&i| i < 100));
        // k >= n returns everything
        let all = r.sample_indices(5, 99);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn coin_is_partition_stable() {
        // The same (seed, tags, p) must give the same answer no matter when
        // or where it is evaluated.
        let a = coin(99, &[3, 141], 0.5);
        for _ in 0..10 {
            assert_eq!(coin(99, &[3, 141], 0.5), a);
        }
        // and tags matter
        let flips: Vec<bool> = (0..64).map(|i| coin(99, &[3, i], 0.5)).collect();
        assert!(flips.iter().any(|&b| b) && flips.iter().any(|&b| !b));
    }

    #[test]
    fn coin_mean_close() {
        let n = 100_000u64;
        let hits = (0..n).filter(|&i| coin(123, &[i], 0.7)).count();
        let mean = hits as f64 / n as f64;
        assert!((mean - 0.7).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn weighted_choice_prefers_heavy() {
        let mut r = DetRng::new(17);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_choice(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn mix_tags_order_sensitive() {
        assert_ne!(mix_tags(1, &[2, 3]), mix_tags(1, &[3, 2]));
        assert_ne!(mix_tags(1, &[2]), mix_tags(2, &[1]));
    }
}
