//! Memory metering in machine *words*.
//!
//! The MRC model of Karloff et al. measures machine memory in words (8-byte
//! units here). Every value that crosses the simulated network or resides in
//! simulated machine state implements [`WordSized`] so the cluster can check
//! the `O(n^{1+µ})` space bounds the paper's theorems assume.
//!
//! Conventions: every primitive scalar counts as one word (we deliberately do
//! not pack sub-word fields — the paper's bounds are asymptotic and this
//! keeps the accounting conservative); containers add one word of header.

/// Types whose simulated size in 8-byte machine words is known.
pub trait WordSized {
    /// Number of machine words this value occupies in simulated memory.
    fn words(&self) -> usize;
}

macro_rules! impl_scalar {
    ($($t:ty),* $(,)?) => {
        $(impl WordSized for $t {
            #[inline]
            fn words(&self) -> usize { 1 }
        })*
    };
}

impl_scalar!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char);

impl WordSized for () {
    #[inline]
    fn words(&self) -> usize {
        0
    }
}

impl<T: WordSized> WordSized for Option<T> {
    #[inline]
    fn words(&self) -> usize {
        1 + self.as_ref().map_or(0, WordSized::words)
    }
}

impl<T: WordSized> WordSized for Vec<T> {
    #[inline]
    fn words(&self) -> usize {
        1 + self.iter().map(WordSized::words).sum::<usize>()
    }
}

impl<T: WordSized> WordSized for [T] {
    #[inline]
    fn words(&self) -> usize {
        self.iter().map(WordSized::words).sum::<usize>()
    }
}

impl<T: WordSized> WordSized for &T {
    #[inline]
    fn words(&self) -> usize {
        (*self).words()
    }
}

impl WordSized for String {
    #[inline]
    fn words(&self) -> usize {
        1 + self.len().div_ceil(8)
    }
}

impl<A: WordSized, B: WordSized> WordSized for (A, B) {
    #[inline]
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

impl<A: WordSized, B: WordSized, C: WordSized> WordSized for (A, B, C) {
    #[inline]
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words()
    }
}

impl<A: WordSized, B: WordSized, C: WordSized, D: WordSized> WordSized for (A, B, C, D) {
    #[inline]
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words() + self.3.words()
    }
}

impl<A: WordSized, B: WordSized, C: WordSized, D: WordSized, E: WordSized> WordSized
    for (A, B, C, D, E)
{
    #[inline]
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words() + self.3.words() + self.4.words()
    }
}

/// An opaque payload of a fixed number of words, for metering data whose
/// content the simulation does not need to materialize (e.g. a broadcast of
/// `|C|` set indices that the driver already holds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Payload(pub usize);

impl WordSized for Payload {
    #[inline]
    fn words(&self) -> usize {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_are_one_word() {
        assert_eq!(3u32.words(), 1);
        assert_eq!(3.5f64.words(), 1);
        assert_eq!(true.words(), 1);
        assert_eq!(().words(), 0);
    }

    #[test]
    fn containers_add_header() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(v.words(), 4);
        let empty: Vec<u64> = vec![];
        assert_eq!(empty.words(), 1);
        let nested: Vec<Vec<u32>> = vec![vec![1], vec![2, 3]];
        assert_eq!(nested.words(), 1 + 2 + 3);
    }

    #[test]
    fn tuples_sum() {
        assert_eq!((1u32, 2u64).words(), 2);
        assert_eq!((1u32, 2u64, 3.0f64).words(), 3);
        assert_eq!((1u32, 2u64, 3.0f64, vec![1u32]).words(), 5);
    }

    #[test]
    fn options_and_strings() {
        assert_eq!(Some(7u64).words(), 2);
        assert_eq!(None::<u64>.words(), 1);
        assert_eq!(String::from("12345678").words(), 2);
        assert_eq!(String::new().words(), 1);
    }

    #[test]
    fn payload_is_opaque() {
        assert_eq!(Payload(42).words(), 42);
    }
}
