//! Per-run metrics: the observables behind every claim in Figure 1.

use std::fmt;

use crate::cluster::MachineId;
use crate::error::CapacityKind;

/// The communication primitive a round belonged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundKind {
    /// Arbitrary point-to-point exchange.
    Exchange,
    /// All machines send to one (usually the central machine).
    Gather,
    /// One hop of a broadcast tree.
    Broadcast,
    /// One hop of an aggregation tree.
    Aggregate,
}

impl fmt::Display for RoundKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RoundKind::Exchange => "exchange",
            RoundKind::Gather => "gather",
            RoundKind::Broadcast => "broadcast",
            RoundKind::Aggregate => "aggregate",
        };
        f.write_str(s)
    }
}

/// Record of one communication round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 1-based round index.
    pub round: usize,
    /// Primitive that produced the round.
    pub kind: RoundKind,
    /// Maximum words sent by any machine this round.
    pub max_out: usize,
    /// Maximum words received by any machine this round.
    pub max_in: usize,
    /// Total words moved this round.
    pub total: usize,
}

/// A recorded (non-fatal, in `Record` mode) capacity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Round of the violation.
    pub round: usize,
    /// Offending machine.
    pub machine: MachineId,
    /// Budget violated.
    pub kind: CapacityKind,
    /// Words used.
    pub used: usize,
    /// Words allowed.
    pub capacity: usize,
}

/// Aggregated metrics for one cluster run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Number of machines in the cluster.
    pub machines: usize,
    /// Word capacity per machine.
    pub capacity: usize,
    /// Total communication rounds (tree hops count individually).
    pub rounds: usize,
    /// Number of primitive invocations (an `O(1)`-round unit of the driver).
    pub supersteps: usize,
    /// Total words moved across the network over the whole run.
    pub total_message_words: usize,
    /// Peak resident words on any machine at any check point.
    pub peak_machine_words: usize,
    /// Peak words sent by a machine in one round.
    pub peak_out_words: usize,
    /// Peak words received by a machine in one round.
    pub peak_in_words: usize,
    /// Peak resident + gathered words on the central machine.
    pub peak_central_words: usize,
    /// Per-round detail.
    pub per_round: Vec<RoundRecord>,
    /// Violations observed (only populated in `Record` enforcement mode).
    pub violations: Vec<Violation>,
}

impl Metrics {
    /// Creates empty metrics for a cluster of `machines` machines with the
    /// given per-machine `capacity`.
    pub fn new(machines: usize, capacity: usize) -> Self {
        Metrics {
            machines,
            capacity,
            ..Metrics::default()
        }
    }

    /// Records one communication round. Called by the cluster primitives;
    /// public so tests and benches can construct synthetic run records for
    /// the trace/fault tooling.
    pub fn record_round(&mut self, kind: RoundKind, max_out: usize, max_in: usize, total: usize) {
        self.rounds += 1;
        self.total_message_words += total;
        self.peak_out_words = self.peak_out_words.max(max_out);
        self.peak_in_words = self.peak_in_words.max(max_in);
        self.per_round.push(RoundRecord {
            round: self.rounds,
            kind,
            max_out,
            max_in,
            total,
        });
    }

    /// Peak space on any machine as a multiple of capacity (1.0 = at budget).
    pub fn space_utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.peak_machine_words.max(self.peak_central_words) as f64 / self.capacity as f64
        }
    }

    /// Number of rounds of each kind, in `(exchange, gather, broadcast,
    /// aggregate)` order. Useful for checking tree-depth accounting.
    pub fn rounds_by_kind(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for r in &self.per_round {
            match r.kind {
                RoundKind::Exchange => counts.0 += 1,
                RoundKind::Gather => counts.1 += 1,
                RoundKind::Broadcast => counts.2 += 1,
                RoundKind::Aggregate => counts.3 += 1,
            }
        }
        counts
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster: {} machines x {} words; rounds: {} ({} supersteps)",
            self.machines, self.capacity, self.rounds, self.supersteps
        )?;
        writeln!(
            f,
            "peak words: machine {}, central {}, out {}, in {}",
            self.peak_machine_words,
            self.peak_central_words,
            self.peak_out_words,
            self.peak_in_words
        )?;
        write!(
            f,
            "total communication: {} words; space utilization {:.3}",
            self.total_message_words,
            self.space_utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_accumulates() {
        let mut m = Metrics::new(4, 100);
        m.record_round(RoundKind::Exchange, 10, 20, 30);
        m.record_round(RoundKind::Broadcast, 5, 25, 40);
        assert_eq!(m.rounds, 2);
        assert_eq!(m.total_message_words, 70);
        assert_eq!(m.peak_out_words, 10);
        assert_eq!(m.peak_in_words, 25);
        assert_eq!(m.per_round.len(), 2);
        assert_eq!(m.rounds_by_kind(), (1, 0, 1, 0));
    }

    #[test]
    fn utilization() {
        let mut m = Metrics::new(2, 100);
        m.peak_machine_words = 50;
        assert!((m.space_utilization() - 0.5).abs() < 1e-12);
        m.peak_central_words = 150;
        assert!((m.space_utilization() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_rounds() {
        let m = Metrics::new(2, 10);
        let s = m.to_string();
        assert!(s.contains("rounds"));
    }
}
