//! Per-run metrics: the observables behind every claim in Figure 1.

use std::fmt;

use crate::cluster::MachineId;
use crate::error::CapacityKind;

/// The communication primitive a round belonged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundKind {
    /// Arbitrary point-to-point exchange.
    Exchange,
    /// All machines send to one (usually the central machine).
    Gather,
    /// One hop of a broadcast tree.
    Broadcast,
    /// One hop of an aggregation tree.
    Aggregate,
}

impl fmt::Display for RoundKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RoundKind::Exchange => "exchange",
            RoundKind::Gather => "gather",
            RoundKind::Broadcast => "broadcast",
            RoundKind::Aggregate => "aggregate",
        };
        f.write_str(s)
    }
}

/// Record of one communication round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 1-based round index.
    pub round: usize,
    /// 1-based superstep (primitive invocation) this round belonged to —
    /// the join key between per-round records and the wall-clock
    /// [`SuperstepTiming`]s (a multi-hop broadcast charges several rounds
    /// under one superstep). 0 for synthetic records built before any
    /// superstep ran.
    pub superstep: usize,
    /// Primitive that produced the round.
    pub kind: RoundKind,
    /// Maximum words sent by any machine this round.
    pub max_out: usize,
    /// Maximum words received by any machine this round.
    pub max_in: usize,
    /// Total words moved this round.
    pub total: usize,
}

/// Wall-clock timing of one superstep (one primitive invocation's worth of
/// machine-local work), recorded by the cluster around each executor pass.
///
/// Timing is an *observation of the host machine*, not of the simulated
/// model — it varies run to run and across executors, so it is **excluded
/// from [`Metrics`] equality** (the determinism suites compare threaded
/// and sequential runs with `==`). What it buys: the trace can show real
/// straggler skew (`max_machine_nanos` vs the per-machine mean) under the
/// threaded executor, the experiments can report wall-clock speedup vs
/// thread count, and the fault tooling gets empirically-grounded
/// per-round costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperstepTiming {
    /// 1-based superstep index this pass belonged to (an `exchange`
    /// records two passes — produce and consume — under one superstep).
    pub superstep: usize,
    /// Wall-clock nanoseconds for the whole executor pass.
    pub wall_nanos: u64,
    /// Nanoseconds spent by the slowest machine's task — the straggler.
    pub max_machine_nanos: u64,
    /// Total nanoseconds summed over all machine tasks.
    pub sum_machine_nanos: u64,
    /// Number of machine tasks in the pass.
    pub tasks: usize,
}

impl SuperstepTiming {
    /// Straggler skew: slowest machine over mean machine time (1.0 =
    /// perfectly balanced). 0.0 when the pass had no tasks or no
    /// measurable work.
    pub fn skew(&self) -> f64 {
        if self.tasks == 0 || self.sum_machine_nanos == 0 {
            0.0
        } else {
            self.max_machine_nanos as f64 / (self.sum_machine_nanos as f64 / self.tasks as f64)
        }
    }
}

/// Per-worker shuffle traffic of a [`crate::dist`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerShuffle {
    /// Worker index.
    pub worker: usize,
    /// Transport bytes the master sent this worker (batch + flush frames).
    pub bytes_out: u64,
    /// Transport bytes received back from this worker (inbox frames).
    pub bytes_in: u64,
    /// Number of batch frames sent.
    pub batches: u64,
}

/// One fault recovery performed by the dist master: a worker died and its
/// shard block was re-established from the deterministic `(cluster seed,
/// shard id)` streams plus replayed shuffle traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// The worker that died and was respawned.
    pub worker: usize,
    /// The superstep at which the death was detected.
    pub superstep: usize,
    /// Host wall-clock nanoseconds the recovery took (nondeterministic).
    pub wall_nanos: u64,
    /// Retained batch bytes replayed to the respawned worker (0 when the
    /// death was detected at a barrier, outside an exchange).
    pub replayed_bytes: u64,
}

/// Transport-level summary of a [`crate::dist`] run. Like
/// [`Metrics::superstep_timings`] this is an observation of the *host*
/// (byte counts depend on worker count; recovery times on the scheduler),
/// so it is excluded from [`Metrics`] equality — a dist run's `Metrics`
/// stay bit-identical to the in-process runtimes'.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistSummary {
    /// Number of workers the session ran with.
    pub workers: usize,
    /// Per-worker shuffle traffic, indexed by worker.
    pub shuffle: Vec<WorkerShuffle>,
    /// Every fault recovery the master performed, in detection order.
    pub recoveries: Vec<RecoveryEvent>,
    /// Host wall-clock nanoseconds spent inside distributed exchanges.
    pub shuffle_nanos: u64,
}

/// Host-level statistics of the `mrlr serve` daemon at the time a
/// request was answered. Like [`DistSummary`] this is an observation of
/// the *host* (queue depths and coalescing depend on concurrent client
/// arrival order, never on the model), so it is excluded from
/// [`Metrics`] equality and from the serialized report JSON — a served
/// report stays bit-identical to its offline counterpart.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests accepted over the daemon's lifetime so far.
    pub requests: u64,
    /// Solver runs actually executed (coalesced waiters share one).
    pub solver_runs: u64,
    /// Requests that attached to an already-running identical solve.
    pub coalesce_hits: u64,
    /// Requests rejected with a `Busy` frame by admission control.
    pub busy_rejects: u64,
    /// Requests that timed out waiting for admission or a shared run.
    pub timeouts: u64,
    /// High-water mark of concurrently admitted requests.
    pub inflight_high_water: u64,
    /// High-water mark of the admission wait queue.
    pub queue_depth_high_water: u64,
}

/// A recorded (non-fatal, in `Record` mode) capacity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Round of the violation.
    pub round: usize,
    /// Offending machine.
    pub machine: MachineId,
    /// Budget violated.
    pub kind: CapacityKind,
    /// Words used.
    pub used: usize,
    /// Words allowed.
    pub capacity: usize,
}

/// Aggregated metrics for one cluster run.
///
/// Equality compares every *model-level* observable (rounds, words,
/// peaks, per-round detail, violations) and deliberately ignores
/// [`Metrics::superstep_timings`] — host wall-clock is nondeterministic,
/// and the executor-determinism suites assert `Metrics` equality between
/// sequential and threaded runs.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Number of machines in the cluster.
    pub machines: usize,
    /// Word capacity per machine.
    pub capacity: usize,
    /// Total communication rounds (tree hops count individually).
    pub rounds: usize,
    /// Number of primitive invocations (an `O(1)`-round unit of the driver).
    pub supersteps: usize,
    /// Total words moved across the network over the whole run.
    pub total_message_words: usize,
    /// Peak resident words on any machine at any check point.
    pub peak_machine_words: usize,
    /// Peak words sent by a machine in one round.
    pub peak_out_words: usize,
    /// Peak words received by a machine in one round.
    pub peak_in_words: usize,
    /// Peak resident + gathered words on the central machine.
    pub peak_central_words: usize,
    /// Per-round detail.
    pub per_round: Vec<RoundRecord>,
    /// Violations observed (only populated in `Record` enforcement mode).
    pub violations: Vec<Violation>,
    /// Host wall-clock timings, one per executor pass (excluded from
    /// `PartialEq`; see the type-level docs).
    pub superstep_timings: Vec<SuperstepTiming>,
    /// Transport summary of a distributed run; `None` for the in-process
    /// runtimes (excluded from `PartialEq`; see [`DistSummary`]).
    pub dist: Option<DistSummary>,
    /// Daemon-side statistics stamped by `mrlr serve`; `None` for
    /// offline runs (excluded from `PartialEq`; see [`ServeSummary`]).
    pub serve: Option<ServeSummary>,
}

impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring (no `..`): adding a field to `Metrics`
        // must fail to compile here, forcing an explicit decision about
        // whether it joins the bit-identical determinism contract.
        let Metrics {
            machines,
            capacity,
            rounds,
            supersteps,
            total_message_words,
            peak_machine_words,
            peak_out_words,
            peak_in_words,
            peak_central_words,
            per_round,
            violations,
            superstep_timings: _, // host wall-clock: excluded from equality
            dist: _,              // host transport detail: excluded too
            serve: _,             // daemon-side detail: excluded too
        } = self;
        *machines == other.machines
            && *capacity == other.capacity
            && *rounds == other.rounds
            && *supersteps == other.supersteps
            && *total_message_words == other.total_message_words
            && *peak_machine_words == other.peak_machine_words
            && *peak_out_words == other.peak_out_words
            && *peak_in_words == other.peak_in_words
            && *peak_central_words == other.peak_central_words
            && *per_round == other.per_round
            && *violations == other.violations
    }
}

impl Metrics {
    /// Creates empty metrics for a cluster of `machines` machines with the
    /// given per-machine `capacity`.
    pub fn new(machines: usize, capacity: usize) -> Self {
        Metrics {
            machines,
            capacity,
            ..Metrics::default()
        }
    }

    /// Records one communication round. Called by the cluster primitives;
    /// public so tests and benches can construct synthetic run records for
    /// the trace/fault tooling.
    pub fn record_round(&mut self, kind: RoundKind, max_out: usize, max_in: usize, total: usize) {
        self.rounds += 1;
        self.total_message_words += total;
        self.peak_out_words = self.peak_out_words.max(max_out);
        self.peak_in_words = self.peak_in_words.max(max_in);
        self.per_round.push(RoundRecord {
            round: self.rounds,
            superstep: self.supersteps,
            kind,
            max_out,
            max_in,
            total,
        });
    }

    /// Records the wall-clock timing of one executor pass over machine
    /// tasks, attributed to the current superstep. `machine_nanos` holds
    /// one entry per machine task; empty passes record zeroes.
    pub fn record_timing(&mut self, wall_nanos: u64, machine_nanos: &[u64]) {
        self.superstep_timings.push(SuperstepTiming {
            superstep: self.supersteps,
            wall_nanos,
            max_machine_nanos: machine_nanos.iter().copied().max().unwrap_or(0),
            sum_machine_nanos: machine_nanos.iter().sum(),
            tasks: machine_nanos.len(),
        });
    }

    /// Total host wall-clock nanoseconds across all executor passes (the
    /// simulated run's compute time, excluding driver-side work).
    pub fn total_wall_nanos(&self) -> u64 {
        self.superstep_timings.iter().map(|t| t.wall_nanos).sum()
    }

    /// The worst straggler skew observed in any pass (see
    /// [`SuperstepTiming::skew`]); 0.0 when nothing was timed.
    pub fn max_straggler_skew(&self) -> f64 {
        self.superstep_timings
            .iter()
            .map(SuperstepTiming::skew)
            .fold(0.0, f64::max)
    }

    /// The worst *measured* straggler skew among the executor passes of
    /// one superstep (see [`SuperstepTiming::skew`]). `None` when the
    /// superstep recorded no timing, or the timings carry no signal —
    /// masked/zeroed wall-clock, or passes with no measurable work — so
    /// callers can fall back to a synthetic model
    /// ([`crate::faults::apply_measured`]).
    pub fn superstep_skew(&self, superstep: usize) -> Option<f64> {
        let max = self
            .superstep_timings
            .iter()
            .filter(|t| t.superstep == superstep)
            .map(SuperstepTiming::skew)
            .fold(0.0, f64::max);
        (max > 0.0).then_some(max)
    }

    /// Peak space on any machine as a multiple of capacity (1.0 = at budget).
    pub fn space_utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.peak_machine_words.max(self.peak_central_words) as f64 / self.capacity as f64
        }
    }

    /// Number of rounds of each kind, in `(exchange, gather, broadcast,
    /// aggregate)` order. Useful for checking tree-depth accounting.
    pub fn rounds_by_kind(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for r in &self.per_round {
            match r.kind {
                RoundKind::Exchange => counts.0 += 1,
                RoundKind::Gather => counts.1 += 1,
                RoundKind::Broadcast => counts.2 += 1,
                RoundKind::Aggregate => counts.3 += 1,
            }
        }
        counts
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster: {} machines x {} words; rounds: {} ({} supersteps)",
            self.machines, self.capacity, self.rounds, self.supersteps
        )?;
        writeln!(
            f,
            "peak words: machine {}, central {}, out {}, in {}",
            self.peak_machine_words,
            self.peak_central_words,
            self.peak_out_words,
            self.peak_in_words
        )?;
        write!(
            f,
            "total communication: {} words; space utilization {:.3}",
            self.total_message_words,
            self.space_utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_accumulates() {
        let mut m = Metrics::new(4, 100);
        m.record_round(RoundKind::Exchange, 10, 20, 30);
        m.record_round(RoundKind::Broadcast, 5, 25, 40);
        assert_eq!(m.rounds, 2);
        assert_eq!(m.total_message_words, 70);
        assert_eq!(m.peak_out_words, 10);
        assert_eq!(m.peak_in_words, 25);
        assert_eq!(m.per_round.len(), 2);
        assert_eq!(m.rounds_by_kind(), (1, 0, 1, 0));
    }

    #[test]
    fn utilization() {
        let mut m = Metrics::new(2, 100);
        m.peak_machine_words = 50;
        assert!((m.space_utilization() - 0.5).abs() < 1e-12);
        m.peak_central_words = 150;
        assert!((m.space_utilization() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn timings_record_and_are_ignored_by_equality() {
        let mut a = Metrics::new(4, 100);
        a.record_round(RoundKind::Exchange, 1, 2, 3);
        let mut b = a.clone();
        a.record_timing(1_000, &[400, 100, 100, 100]);
        b.record_timing(9_999, &[1, 1, 1, 1]);
        assert_eq!(a, b, "wall-clock must not affect metrics equality");
        assert_eq!(a.total_wall_nanos(), 1_000);
        let t = a.superstep_timings[0];
        assert_eq!(t.max_machine_nanos, 400);
        assert_eq!(t.sum_machine_nanos, 700);
        assert_eq!(t.tasks, 4);
        // Slowest machine took 400ns against a 175ns mean.
        assert!((t.skew() - 400.0 / 175.0).abs() < 1e-12);
        assert!((a.max_straggler_skew() - t.skew()).abs() < 1e-12);
        // Model-level differences still break equality.
        b.record_round(RoundKind::Gather, 1, 1, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn superstep_skew_joins_rounds_to_timings() {
        let mut m = Metrics::new(4, 100);
        m.supersteps = 1;
        m.record_round(RoundKind::Exchange, 1, 1, 1);
        m.record_timing(1_000, &[400, 100, 100, 100]);
        assert_eq!(m.per_round[0].superstep, 1);
        assert!((m.superstep_skew(1).unwrap() - 400.0 / 175.0).abs() < 1e-12);
        assert_eq!(m.superstep_skew(2), None, "untimed superstep has no skew");
        m.supersteps = 2;
        m.record_timing(0, &[0, 0]);
        assert_eq!(m.superstep_skew(2), None, "masked timings carry no signal");
    }

    #[test]
    fn dist_summary_is_ignored_by_equality() {
        let a = Metrics::new(4, 100);
        let mut b = a.clone();
        b.dist = Some(DistSummary {
            workers: 2,
            shuffle: vec![WorkerShuffle::default()],
            recoveries: vec![RecoveryEvent {
                worker: 0,
                superstep: 1,
                wall_nanos: 123,
                replayed_bytes: 456,
            }],
            shuffle_nanos: 789,
        });
        assert_eq!(a, b, "transport detail must not affect metrics equality");
    }

    #[test]
    fn serve_summary_is_ignored_by_equality() {
        let a = Metrics::new(4, 100);
        let mut b = a.clone();
        b.serve = Some(ServeSummary {
            requests: 10,
            solver_runs: 4,
            coalesce_hits: 6,
            busy_rejects: 2,
            timeouts: 1,
            inflight_high_water: 3,
            queue_depth_high_water: 2,
        });
        assert_eq!(a, b, "daemon-side detail must not affect metrics equality");
    }

    #[test]
    fn empty_timing_is_zero() {
        let mut m = Metrics::new(1, 10);
        m.record_timing(5, &[]);
        assert_eq!(m.superstep_timings[0].max_machine_nanos, 0);
        assert_eq!(m.superstep_timings[0].skew(), 0.0);
        assert_eq!(m.max_straggler_skew(), 0.0);
    }

    #[test]
    fn display_mentions_rounds() {
        let m = Metrics::new(2, 10);
        let s = m.to_string();
        assert!(s.contains("rounds"));
    }
}
