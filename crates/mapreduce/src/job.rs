//! A classic map → shuffle → reduce layer on top of the cluster simulator.
//!
//! This is the "eponymous map and reduce functions" interface of Karloff et
//! al. (§1.3 of the paper): records are key-value pairs, the map function
//! emits intermediate pairs, pairs are shuffled to reducers by key hash, and
//! reducers fold each key group. One job costs exactly one communication
//! round plus local work; chains of jobs compose through
//! [`MapReduceJob::run`]'s output partitioning.

use crate::cluster::{Cluster, ClusterConfig, MachineId};
use crate::error::MrResult;
use crate::metrics::Metrics;
use crate::rng::mix2;
use crate::words::WordSized;

/// Keys must hash deterministically (for the shuffle) and order totally
/// (for deterministic reduce-group ordering).
pub trait Key: Ord + Clone + Send {
    /// A deterministic 64-bit hash of the key.
    fn key_hash(&self) -> u64;
}

impl Key for u32 {
    fn key_hash(&self) -> u64 {
        mix2(0x006b_6579_3332_u64, *self as u64)
    }
}

impl Key for u64 {
    fn key_hash(&self) -> u64 {
        mix2(0x006b_6579_3634_u64, *self)
    }
}

impl Key for usize {
    fn key_hash(&self) -> u64 {
        mix2(0x006b_6579_737a_u64, *self as u64)
    }
}

impl Key for String {
    fn key_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.bytes() {
            h = mix2(h, b as u64);
        }
        h
    }
}

impl<A: Key, B: Key> Key for (A, B) {
    fn key_hash(&self) -> u64 {
        mix2(self.0.key_hash(), self.1.key_hash())
    }
}

/// Collector passed to map functions.
pub struct Emitter<K, V> {
    pairs: Vec<(K, V)>,
}

impl<K, V> Emitter<K, V> {
    /// Emits one intermediate key-value pair.
    pub fn emit(&mut self, key: K, value: V) {
        self.pairs.push((key, value));
    }
}

/// A single map → shuffle → reduce job.
pub struct MapReduceJob<I, K, V, O, MF, RF>
where
    MF: Fn(&I, &mut Emitter<K, V>) + Sync,
    RF: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    map: MF,
    reduce: RF,
    _marker: JobMarker<I, K, V, O>,
}

/// Zero-sized marker tying a job to its record/key/value/output types.
type JobMarker<I, K, V, O> = std::marker::PhantomData<fn(I) -> (K, V, O)>;

impl<I, K, V, O, MF, RF> MapReduceJob<I, K, V, O, MF, RF>
where
    I: WordSized + Send + Sync,
    K: Key + WordSized + Sync + crate::dist::Wire + 'static,
    V: WordSized + Send + Sync + crate::dist::Wire + 'static,
    O: WordSized + Send + Sync,
    MF: Fn(&I, &mut Emitter<K, V>) + Sync,
    RF: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    /// Builds a job from a map function and a reduce function.
    pub fn new(map: MF, reduce: RF) -> Self {
        MapReduceJob {
            map,
            reduce,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs the job on pre-partitioned input. Returns the per-machine output
    /// partitions (outputs live on the machine that reduced their key) and
    /// the run metrics.
    pub fn run(&self, cfg: ClusterConfig, inputs: Vec<Vec<I>>) -> MrResult<(Vec<Vec<O>>, Metrics)> {
        self.run_inner::<fn(&K, Vec<V>) -> V>(cfg, inputs, None)
    }

    /// Runs the job with a **combiner**: before the shuffle, each mapper
    /// locally folds the values it emitted per key through `combine`
    /// (classic MapReduce pre-aggregation). Semantics are unchanged for any
    /// associative-and-commutative-compatible reduce; the observable
    /// difference is communication volume — the word-count example drops
    /// from one message per occurrence to one per (machine, distinct word),
    /// which the metrics make visible.
    pub fn run_with_combiner<CF>(
        &self,
        cfg: ClusterConfig,
        inputs: Vec<Vec<I>>,
        combine: CF,
    ) -> MrResult<(Vec<Vec<O>>, Metrics)>
    where
        CF: Fn(&K, Vec<V>) -> V + Sync,
    {
        self.run_inner(cfg, inputs, Some(combine))
    }

    fn run_inner<CF>(
        &self,
        cfg: ClusterConfig,
        inputs: Vec<Vec<I>>,
        combine: Option<CF>,
    ) -> MrResult<(Vec<Vec<O>>, Metrics)>
    where
        CF: Fn(&K, Vec<V>) -> V + Sync,
    {
        #[derive(Debug)]
        struct JobState<I, K, V, O> {
            input: Vec<I>,
            groups: Vec<(K, Vec<V>)>,
            output: Vec<O>,
            input_words: usize,
        }
        impl<I, K: WordSized, V: WordSized, O: WordSized> WordSized for JobState<I, K, V, O> {
            fn words(&self) -> usize {
                // Input words are cached (inputs are drained during map).
                self.input_words
                    + self.groups.words()
                    + self.output.iter().map(WordSized::words).sum::<usize>()
            }
        }

        let machines = cfg.machines;
        let states: Vec<JobState<I, K, V, O>> = inputs
            .into_iter()
            .map(|input| {
                let input_words = input.iter().map(WordSized::words).sum();
                JobState {
                    input,
                    groups: Vec::new(),
                    output: Vec::new(),
                    input_words,
                }
            })
            .collect();
        let mut cluster = Cluster::new(cfg, states)?;

        // Map + shuffle: one communication round.
        let map = &self.map;
        let combine = combine.as_ref();
        cluster.exchange::<(K, V), _, _>(
            |_, s, out| {
                let mut em = Emitter { pairs: Vec::new() };
                for rec in &s.input {
                    map(rec, &mut em);
                }
                s.input.clear();
                s.input_words = 0;
                let mut pairs = em.pairs;
                if let Some(comb) = combine {
                    // Local pre-aggregation: one combined value per key.
                    pairs.sort_by(|a, b| a.0.cmp(&b.0));
                    let mut combined: Vec<(K, V)> = Vec::new();
                    let mut pending: Option<(K, Vec<V>)> = None;
                    for (k, v) in pairs {
                        match &mut pending {
                            Some((pk, vs)) if *pk == k => vs.push(v),
                            _ => {
                                if let Some((pk, vs)) = pending.take() {
                                    combined.push((pk.clone(), comb(&pk, vs)));
                                }
                                pending = Some((k, vec![v]));
                            }
                        }
                    }
                    if let Some((pk, vs)) = pending.take() {
                        combined.push((pk.clone(), comb(&pk, vs)));
                    }
                    pairs = combined;
                }
                for (k, v) in pairs {
                    let dst = (k.key_hash() % machines as u64) as MachineId;
                    out.send(dst, (k, v));
                }
            },
            |_, s, inbox| {
                // Group by key, deterministically (sort is stable; inbox
                // arrives in sender order).
                let mut pairs = inbox.into_vec();
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                for (k, v) in pairs {
                    match s.groups.last_mut() {
                        Some((gk, vs)) if *gk == k => vs.push(v),
                        _ => s.groups.push((k, vec![v])),
                    }
                }
            },
        )?;

        // Reduce: local work.
        let reduce = &self.reduce;
        cluster.local(|_, s| {
            for (k, vs) in s.groups.drain(..) {
                s.output.extend(reduce(&k, vs));
            }
        })?;

        let (states, metrics) = cluster.into_parts();
        Ok((states.into_iter().map(|s| s.output).collect(), metrics))
    }
}

/// Distributes `items` round-robin over `machines` partitions.
pub fn partition_round_robin<T>(items: Vec<T>, machines: usize) -> Vec<Vec<T>> {
    let mut parts: Vec<Vec<T>> = (0..machines).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        parts[i % machines].push(item);
    }
    parts
}

/// Distributes `items` over `machines` partitions by a deterministic hash of
/// the item index (a balanced random-looking assignment, as the paper's
/// "assigned arbitrarily/randomly to machines").
pub fn partition_by_hash<T>(items: Vec<T>, machines: usize, seed: u64) -> Vec<Vec<T>> {
    let mut parts: Vec<Vec<T>> = (0..machines).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        let dst = (mix2(seed, i as u64) % machines as u64) as usize;
        parts[dst].push(item);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count() {
        // The canonical example: count words across machines.
        let docs: Vec<String> = vec![
            "the quick brown fox".into(),
            "the lazy dog".into(),
            "the quick dog".into(),
            "brown dog brown dog".into(),
        ];
        let job = MapReduceJob::new(
            |doc: &String, em: &mut Emitter<String, u64>| {
                for w in doc.split_whitespace() {
                    em.emit(w.to_string(), 1);
                }
            },
            |k: &String, vs: Vec<u64>| vec![(k.clone(), vs.iter().sum::<u64>())],
        );
        let inputs = partition_round_robin(docs, 3);
        let (outputs, metrics) = job.run(ClusterConfig::new(3, 10_000), inputs).unwrap();
        let mut all: Vec<(String, u64)> = outputs.into_iter().flatten().collect();
        all.sort();
        assert_eq!(
            all,
            vec![
                ("brown".to_string(), 3),
                ("dog".to_string(), 4),
                ("fox".to_string(), 1),
                ("lazy".to_string(), 1),
                ("quick".to_string(), 2),
                ("the".to_string(), 3),
            ]
        );
        assert_eq!(metrics.rounds, 1);
    }

    #[test]
    fn combiner_preserves_output_and_cuts_communication() {
        let docs: Vec<String> = (0..8)
            .map(|i| {
                // Skewed corpus: "the" everywhere, a few rare words.
                format!("the the the the word{} the", i % 3)
            })
            .collect();
        let job = MapReduceJob::new(
            |doc: &String, em: &mut Emitter<String, u64>| {
                for w in doc.split_whitespace() {
                    em.emit(w.to_string(), 1);
                }
            },
            |k: &String, vs: Vec<u64>| vec![(k.clone(), vs.iter().sum::<u64>())],
        );
        let inputs = partition_round_robin(docs, 4);
        let (plain, m_plain) = job
            .run(ClusterConfig::new(4, 100_000), inputs.clone())
            .unwrap();
        let (combined, m_comb) = job
            .run_with_combiner(ClusterConfig::new(4, 100_000), inputs, |_, vs: Vec<u64>| {
                vs.iter().sum::<u64>()
            })
            .unwrap();
        let norm = |outs: Vec<Vec<(String, u64)>>| {
            let mut all: Vec<(String, u64)> = outs.into_iter().flatten().collect();
            all.sort();
            all
        };
        assert_eq!(norm(plain), norm(combined));
        assert!(
            m_comb.total_message_words < m_plain.total_message_words,
            "combiner moved {} words, plain {}",
            m_comb.total_message_words,
            m_plain.total_message_words
        );
        assert_eq!(m_comb.rounds, 1);
    }

    #[test]
    fn combiner_on_empty_and_single_key_input() {
        let job = MapReduceJob::new(
            |x: &u64, em: &mut Emitter<u32, u64>| em.emit(0u32, *x),
            |k: &u32, vs: Vec<u64>| vec![(*k, vs.iter().sum::<u64>())],
        );
        let inputs: Vec<Vec<u64>> = vec![vec![], vec![1, 2, 3], vec![]];
        let (outs, _) = job
            .run_with_combiner(ClusterConfig::new(3, 1000), inputs, |_, vs: Vec<u64>| {
                vs.iter().sum::<u64>()
            })
            .unwrap();
        let all: Vec<(u32, u64)> = outs.into_iter().flatten().collect();
        assert_eq!(all, vec![(0, 6)]);
    }

    #[test]
    fn reduce_groups_are_complete() {
        // All values for one key meet at one reducer even when emitted from
        // every machine.
        let inputs: Vec<Vec<u64>> = (0..4).map(|m| vec![m as u64; 5]).collect();
        let job = MapReduceJob::new(
            |x: &u64, em: &mut Emitter<u32, u64>| em.emit((*x % 2) as u32, *x),
            |k: &u32, vs: Vec<u64>| vec![(*k, vs.len() as u64)],
        );
        let (outputs, _) = job.run(ClusterConfig::new(4, 10_000), inputs).unwrap();
        let mut all: Vec<(u32, u64)> = outputs.into_iter().flatten().collect();
        all.sort();
        assert_eq!(all, vec![(0, 10), (1, 10)]);
    }

    #[test]
    fn partition_round_robin_balanced() {
        let parts = partition_round_robin((0..10).collect::<Vec<u32>>(), 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], vec![0, 3, 6, 9]);
        assert_eq!(parts[1], vec![1, 4, 7]);
        assert_eq!(parts[2], vec![2, 5, 8]);
    }

    #[test]
    fn partition_by_hash_deterministic_and_complete() {
        let a = partition_by_hash((0..100).collect::<Vec<u32>>(), 7, 42);
        let b = partition_by_hash((0..100).collect::<Vec<u32>>(), 7, 42);
        assert_eq!(a, b);
        let total: usize = a.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        // Different seed gives a different assignment.
        let c = partition_by_hash((0..100).collect::<Vec<u32>>(), 7, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn key_hashes_differ() {
        assert_ne!(3u32.key_hash(), 4u32.key_hash());
        assert_ne!(3u32.key_hash(), 3u64.key_hash());
        assert_ne!(String::from("ab").key_hash(), String::from("ba").key_hash());
        assert_ne!((1u32, 2u32).key_hash(), (2u32, 1u32).key_hash());
    }
}
