//! # mrlr-mapreduce — a deterministic MPC/MapReduce cluster simulator
//!
//! This crate is the substrate for the `mrlr` workspace's reproduction of
//! *"Greedy and Local Ratio Algorithms in the MapReduce Model"* (Harvey,
//! Liaw, Liu; SPAA 2018). The paper's model — the MRC formalization of
//! Karloff, Suri and Vassilvitskii, refined by the MPC model of Beame et
//! al. — gives each of `M` machines `O(n^{1+µ})` words of memory and charges
//! one *round* per synchronous communication step; the round count is the
//! primary cost measure.
//!
//! The simulator makes those constraints executable and measurable:
//!
//! * [`cluster::Cluster`] runs per-machine state through supersteps
//!   ([`cluster::Cluster::local`], [`cluster::Cluster::exchange`],
//!   [`cluster::Cluster::gather`], [`cluster::Cluster::broadcast`],
//!   [`cluster::Cluster::aggregate`]) with strict word budgets, tree-depth
//!   round accounting for broadcasts/aggregations (the paper's `n^µ`-ary
//!   broadcast tree), and full [`metrics::Metrics`]. It is a thin facade
//!   over three owned runtime layers: [`shard`] (per-machine state, RNG
//!   and space accounting), [`router`] (the message-delivery plane) and
//!   [`superstep`] (shard→thread scheduling over the executor seam).
//! * [`job::MapReduceJob`] layers the classic map → shuffle → reduce
//!   interface on top.
//! * [`rng`] provides partition-stable hash-derived randomness so that a
//!   distributed run is bit-identical to its sequential counterpart.
//! * [`bitset::Bitset`] and [`words::WordSized`] handle exact word-level
//!   space accounting.
//! * [`model::ComputeModel`] audits cluster shapes against the MRC/MPC side
//!   conditions; [`partition`] provides hash/block/range placement;
//!   [`trace::Timeline`] renders per-round traces (CSV/ASCII) including
//!   per-superstep wall-clock and straggler skew; and [`faults`] prices
//!   crash/straggler plans against a completed run.
//!
//! ## The runtime seam
//!
//! [`cluster::ClusterConfig::runtime`] selects which of the three engines
//! ([`superstep::RuntimeKind`]) executes the supersteps: `Classic`
//! (dynamic index claiming + sequential global message merge), `Shard`
//! (work-stealing-free static shard→thread assignment +
//! [`router::RouterKind::Columnar`] counting-sort routing — the engine
//! behind the solver API's `Backend::Shard`), or `Dist` (the [`dist`]
//! master/worker control plane: real OS transport, barrier heartbeats and
//! fault-tolerant re-execution — the engine behind `Backend::Dist`). All
//! are **bit-identical** in every model-level observable; the
//! `MRLR_BACKEND` environment variable sets the process default.
//!
//! ## The executor seam
//!
//! Machine supersteps run on a pluggable [`executor::Executor`]:
//! [`executor::SeqExecutor`] runs machines inline in id order, and
//! [`executor::ThreadPoolExecutor`] (a persistent `std::thread` + channel
//! pool — the offline build has no rayon) runs them genuinely
//! concurrently. Every ordered observable — outputs, message delivery,
//! metrics, failures — is merged in machine-id order after each pass, so
//! a run is **bit-identical across executors and thread counts** given
//! the seed; only the wall-clock [`metrics::SuperstepTiming`]s differ.
//! Select the executor with [`cluster::ClusterConfig::threads`] (default:
//! the `MRLR_THREADS` environment variable) or inject one through
//! [`cluster::Cluster::with_executor`]. If crates.io access returns, a
//! rayon-backed executor is a small impl of the same trait — no call
//! sites change.
//!
//! ```
//! use mrlr_mapreduce::cluster::{Cluster, ClusterConfig};
//!
//! // Four machines, 1000 words each; each holds a list of numbers.
//! let states: Vec<Vec<u64>> = (0..4).map(|m| vec![m as u64; 10]).collect();
//! let mut cluster = Cluster::new(ClusterConfig::new(4, 1000), states).unwrap();
//!
//! // One aggregation: total count across machines (costs tree-depth rounds).
//! let total = cluster.aggregate_sum(|_, s| s.len()).unwrap();
//! assert_eq!(total, 40);
//! assert_eq!(cluster.rounds(), 1);
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod cluster;
pub mod dist;
pub mod error;
pub mod executor;
pub mod faults;
pub mod ingest;
pub mod job;
pub mod metrics;
pub mod model;
pub mod partition;
pub mod payload;
pub mod rng;
pub mod router;
pub mod shard;
pub mod superstep;
pub mod trace;
pub mod words;

pub use bitset::Bitset;
pub use cluster::{
    tree_depth, Cluster, ClusterConfig, Enforcement, Inbox, MachineId, MachineState, Outbox,
};
pub use dist::{DistConfig, DistParams, SpawnKind, Wire, WireError, WireReader};
pub use error::{CapacityKind, MrError, MrResult};
pub use executor::{default_threads, executor_for, Executor, SeqExecutor, ThreadPoolExecutor};
pub use faults::{
    FaultEvent, FaultKind, FaultPlan, MeasuredRecovery, RecoveryReport, StragglerCost, WorkerKill,
};
pub use ingest::Ingest;
pub use metrics::{
    DistSummary, Metrics, RecoveryEvent, RoundKind, RoundRecord, ServeSummary, SuperstepTiming,
    Violation, WorkerShuffle,
};
pub use model::{paper_graph_regime, ComputeModel, ModelCheck};
pub use partition::{
    balance_stats, split, BalanceStats, BlockPartitioner, HashPartitioner, Partitioner,
    RangePartitioner,
};
pub use payload::{
    PayloadBatch, PayloadInbox, PayloadOutbox, PayloadSink, PayloadSinkWriter, PayloadWriter,
};
pub use rng::{coin, mix2, mix_tags, unit_f64, DetRng};
pub use router::RouterKind;
pub use shard::Shard;
pub use superstep::{default_runtime, RuntimeKind, SchedulePolicy, Scheduler, StaticAssignment};
pub use trace::{KindSummary, Timeline, TimelineRow};
pub use words::{Payload, WordSized};
