//! Fault-tolerance cost model: what crashes and stragglers do to a run.
//!
//! The paper motivates MapReduce partly by fault tolerance (§1): shuffle
//! outputs are durable, so a machine crash loses only the current round's
//! work, and the runtime re-executes the lost tasks while surviving machines
//! wait. Stragglers do not change the round count but stretch wall-clock,
//! because the model is bulk-synchronous — every round ends when its slowest
//! machine does.
//!
//! This module prices a [`FaultPlan`] against the per-round records of a
//! completed run. It is a *post-hoc cost model*, deliberately decoupled from
//! the simulator: the algorithms' outputs are deterministic functions of the
//! seed and are unaffected by faults (exactly the MapReduce recovery
//! contract); only the round count and the makespan change. Assumptions,
//! documented and tested:
//!
//! * A crash in round `r` adds one re-execution round per affected round
//!   (re-executions of multiple machines in the same round run in parallel).
//!   Crashes during re-execution are not modelled (second-order).
//! * A straggler with slowdown `s ≥ 1` multiplies the duration of its round;
//!   the round's duration is the maximum slowdown among its machines.
//! * Fault events aimed at rounds the run never executed are ignored.
//!
//! Straggler costs come in two flavours: [`apply`] uses the plan's
//! synthetic multipliers, while [`apply_measured`] prices each straggler
//! from the run's **measured** per-superstep wall-clock skew
//! ([`Metrics::superstep_timings`]) and falls back to the synthetic
//! multiplier only when the struck superstep carries no timing signal
//! (e.g. masked timings).
//!
//! ```
//! use mrlr_mapreduce::faults::{apply, FaultEvent, FaultKind, FaultPlan};
//! use mrlr_mapreduce::metrics::{Metrics, RoundKind};
//!
//! let mut m = Metrics::new(4, 1000);
//! m.record_round(RoundKind::Exchange, 1, 1, 1);
//! m.record_round(RoundKind::Exchange, 1, 1, 1);
//! let plan = FaultPlan::new(vec![FaultEvent {
//!     round: 1, machine: 0, kind: FaultKind::Crash,
//! }]);
//! let r = apply(&m, &plan);
//! assert_eq!(r.effective_rounds, 3); // one re-execution round
//! ```

use crate::cluster::MachineId;
use crate::metrics::Metrics;
use crate::rng::DetRng;

/// What goes wrong on one machine in one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The machine dies mid-round; its round work is re-executed.
    Crash,
    /// The machine runs `slowdown ≥ 1` times slower this round.
    Straggler(f64),
}

/// One fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// 1-based round the fault strikes in.
    pub round: usize,
    /// The affected machine.
    pub machine: MachineId,
    /// The failure mode.
    pub kind: FaultKind,
}

/// A *live* fault injection: kill worker `worker` of a [`crate::dist`]
/// session once it has acked superstep `superstep`'s barrier. Unlike
/// [`FaultEvent`]s — which price simulated faults post-hoc — worker kills
/// are executed for real by the dist transport, and the master's recovery
/// (respawn + deterministic re-derivation + batch replay) must reproduce
/// the fault-free run bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerKill {
    /// The dist worker to kill (`0..workers`).
    pub worker: usize,
    /// The 1-based superstep after whose barrier ack the worker dies.
    pub superstep: usize,
}

/// A set of fault events to price against a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    kills: Vec<WorkerKill>,
}

impl FaultPlan {
    /// Creates a plan from explicit events.
    ///
    /// # Panics
    /// Panics if any straggler slowdown is below 1 or not finite.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        for e in &events {
            if let FaultKind::Straggler(s) = e.kind {
                assert!(s.is_finite() && s >= 1.0, "slowdown must be >= 1, got {s}");
            }
        }
        FaultPlan {
            events,
            kills: Vec::new(),
        }
    }

    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Draws a random plan: in each of `rounds` rounds, every one of
    /// `machines` machines independently crashes with probability `crash_p`
    /// and (if it survives) straggles with probability `straggle_p` at the
    /// given `slowdown`. Deterministic in `seed`.
    pub fn random(
        machines: usize,
        rounds: usize,
        crash_p: f64,
        straggle_p: f64,
        slowdown: f64,
        seed: u64,
    ) -> Self {
        assert!(slowdown >= 1.0, "slowdown must be >= 1");
        let mut rng = DetRng::derive(seed, &[0x0066_6175_6c74]);
        let mut events = Vec::new();
        for round in 1..=rounds {
            for machine in 0..machines {
                if rng.bernoulli(crash_p) {
                    events.push(FaultEvent {
                        round,
                        machine,
                        kind: FaultKind::Crash,
                    });
                } else if rng.bernoulli(straggle_p) {
                    events.push(FaultEvent {
                        round,
                        machine,
                        kind: FaultKind::Straggler(slowdown),
                    });
                }
            }
        }
        FaultPlan {
            events,
            kills: Vec::new(),
        }
    }

    /// Adds a live worker kill (see [`WorkerKill`]). Kills are injected
    /// and survived by the dist transport at run time; the post-hoc
    /// pricing functions ([`apply`] / [`apply_measured`]) ignore them,
    /// since their cost is *measured* — it lands in
    /// [`crate::metrics::RecoveryEvent::wall_nanos`], not in a model.
    pub fn kill_worker(mut self, worker: usize, superstep: usize) -> Self {
        self.kills.push(WorkerKill { worker, superstep });
        self
    }

    /// The plan's live worker kills.
    pub fn worker_kills(&self) -> &[WorkerKill] {
        &self.kills
    }

    /// The plan's events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of crash events.
    pub fn crashes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Crash))
            .count()
    }

    /// Number of straggler events.
    pub fn stragglers(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Straggler(_)))
            .count()
    }
}

/// Priced outcome of a fault plan over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Rounds the fault-free run took.
    pub base_rounds: usize,
    /// Extra re-execution rounds caused by crashes (one per round with at
    /// least one crash).
    pub redo_rounds: usize,
    /// `base_rounds + redo_rounds`.
    pub effective_rounds: usize,
    /// Wall-clock in round-units: each round contributes the maximum
    /// straggler slowdown among its machines (1.0 if none), re-execution
    /// rounds contribute 1.0 each.
    pub makespan: f64,
    /// Crash events that landed on executed rounds.
    pub crashes_applied: usize,
    /// Straggler events that landed on executed rounds.
    pub stragglers_applied: usize,
    /// Straggler events whose cost came from *measured*
    /// [`Metrics::superstep_timings`] skew rather than the plan's
    /// synthetic multiplier. Always 0 for [`apply`]; see
    /// [`apply_measured`].
    pub stragglers_measured: usize,
}

impl RecoveryReport {
    /// Makespan relative to the fault-free run (1.0 = no slowdown).
    pub fn slowdown_factor(&self) -> f64 {
        if self.base_rounds == 0 {
            1.0
        } else {
            self.makespan / self.base_rounds as f64
        }
    }
}

/// How one straggler event of a plan was priced by [`apply_measured`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StragglerCost {
    /// The struck round's superstep carried real timing signal; the
    /// straggler was priced at the observed skew (clamped to ≥ 1).
    Measured {
        /// The struck 1-based round.
        round: usize,
        /// The observed (clamped) skew used as the slowdown.
        skew: f64,
    },
    /// The struck superstep carried **no** timing signal (masked
    /// timings, synthetic metrics, or no measurable work): the event's
    /// synthetic multiplier was used instead. Previously this fallback
    /// was silent; it is now an explicit outcome callers can log (see
    /// [`crate::trace::Timeline::annotate_straggler_pricing`]).
    SyntheticFallback {
        /// The struck 1-based round.
        round: usize,
        /// The plan's synthetic multiplier that was fallen back to.
        multiplier: f64,
    },
}

/// Result of [`apply_measured`]: the priced report plus how each applied
/// straggler's cost was obtained.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredRecovery {
    /// The priced outcome (same shape [`apply`] returns).
    pub report: RecoveryReport,
    /// One entry per straggler event that landed on an executed round, in
    /// plan order: measured skew or explicit synthetic fallback.
    pub pricing: Vec<StragglerCost>,
}

impl MeasuredRecovery {
    /// The pricing entries that fell back to the synthetic multiplier.
    pub fn fallbacks(&self) -> impl Iterator<Item = &StragglerCost> {
        self.pricing
            .iter()
            .filter(|c| matches!(c, StragglerCost::SyntheticFallback { .. }))
    }
}

/// Prices `plan` against the per-round records in `metrics`, costing
/// every straggler at its event's synthetic multiplier.
pub fn apply(metrics: &Metrics, plan: &FaultPlan) -> RecoveryReport {
    price(metrics, plan, false).report
}

/// Prices `plan` with **measured** straggler costs: a straggler striking
/// round `r` slows that round by the worst skew
/// ([`crate::metrics::SuperstepTiming::skew`]) actually observed in the
/// executor passes of `r`'s superstep — the empirical "slowest machine
/// over mean machine" ratio of the real run — clamped to at least 1.
///
/// The synthetic multiplier of the event is the *documented fallback*:
/// it is used whenever the struck superstep carries no timing signal
/// (timings masked to zero for golden-file determinism, synthetic
/// `Metrics` built by [`Metrics::record_round`] alone, or passes with no
/// measurable work). Every fallback is reported explicitly as a
/// [`StragglerCost::SyntheticFallback`] entry in the returned
/// [`MeasuredRecovery::pricing`];
/// [`RecoveryReport::stragglers_measured`] still counts the events priced
/// from measurements.
pub fn apply_measured(metrics: &Metrics, plan: &FaultPlan) -> MeasuredRecovery {
    price(metrics, plan, true)
}

fn price(metrics: &Metrics, plan: &FaultPlan, measured: bool) -> MeasuredRecovery {
    let base_rounds = metrics.rounds;
    let mut round_slowdown = vec![1.0f64; base_rounds + 1];
    let mut round_crashed = vec![false; base_rounds + 1];
    let mut crashes_applied = 0usize;
    let mut stragglers_applied = 0usize;
    let mut stragglers_measured = 0usize;
    let mut pricing = Vec::new();
    for e in plan.events() {
        if e.round == 0 || e.round > base_rounds || e.machine >= metrics.machines {
            continue;
        }
        match e.kind {
            FaultKind::Crash => {
                round_crashed[e.round] = true;
                crashes_applied += 1;
            }
            FaultKind::Straggler(synthetic) => {
                let slowdown = if measured {
                    match metrics
                        .per_round
                        .get(e.round - 1)
                        .and_then(|r| metrics.superstep_skew(r.superstep))
                    {
                        Some(skew) => {
                            stragglers_measured += 1;
                            let skew = skew.max(1.0);
                            pricing.push(StragglerCost::Measured {
                                round: e.round,
                                skew,
                            });
                            skew
                        }
                        None => {
                            pricing.push(StragglerCost::SyntheticFallback {
                                round: e.round,
                                multiplier: synthetic,
                            });
                            synthetic
                        }
                    }
                } else {
                    synthetic
                };
                round_slowdown[e.round] = round_slowdown[e.round].max(slowdown);
                stragglers_applied += 1;
            }
        }
    }
    let redo_rounds = round_crashed.iter().filter(|&&c| c).count();
    let makespan: f64 = round_slowdown[1..].iter().sum::<f64>() + redo_rounds as f64;
    MeasuredRecovery {
        report: RecoveryReport {
            base_rounds,
            redo_rounds,
            effective_rounds: base_rounds + redo_rounds,
            makespan,
            crashes_applied,
            stragglers_applied,
            stragglers_measured,
        },
        pricing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Metrics, RoundKind};

    fn run_of(rounds: usize, machines: usize) -> Metrics {
        let mut m = Metrics::new(machines, 1000);
        for _ in 0..rounds {
            m.record_round(RoundKind::Exchange, 1, 1, 1);
        }
        m
    }

    #[test]
    fn no_faults_no_overhead() {
        let m = run_of(5, 4);
        let r = apply(&m, &FaultPlan::none());
        assert_eq!(r.base_rounds, 5);
        assert_eq!(r.redo_rounds, 0);
        assert_eq!(r.effective_rounds, 5);
        assert!((r.makespan - 5.0).abs() < 1e-12);
        assert!((r.slowdown_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn crash_adds_one_redo_round_per_round() {
        let m = run_of(5, 4);
        // Two crashes in the same round: still one redo round (parallel
        // re-execution); a third crash in another round adds another.
        let plan = FaultPlan::new(vec![
            FaultEvent {
                round: 2,
                machine: 0,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                round: 2,
                machine: 3,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                round: 4,
                machine: 1,
                kind: FaultKind::Crash,
            },
        ]);
        let r = apply(&m, &plan);
        assert_eq!(r.redo_rounds, 2);
        assert_eq!(r.effective_rounds, 7);
        assert_eq!(r.crashes_applied, 3);
        assert!((r.makespan - 7.0).abs() < 1e-12);
    }

    #[test]
    fn stragglers_stretch_makespan_not_rounds() {
        let m = run_of(4, 4);
        let plan = FaultPlan::new(vec![
            FaultEvent {
                round: 1,
                machine: 0,
                kind: FaultKind::Straggler(3.0),
            },
            FaultEvent {
                round: 1,
                machine: 1,
                kind: FaultKind::Straggler(2.0),
            },
            FaultEvent {
                round: 3,
                machine: 2,
                kind: FaultKind::Straggler(1.5),
            },
        ]);
        let r = apply(&m, &plan);
        assert_eq!(r.effective_rounds, 4);
        // Round 1 runs at the max slowdown 3.0, round 3 at 1.5.
        assert!((r.makespan - (3.0 + 1.0 + 1.5 + 1.0)).abs() < 1e-12);
        assert_eq!(r.stragglers_applied, 3);
        assert!(r.slowdown_factor() > 1.0);
    }

    #[test]
    fn events_outside_run_ignored() {
        let m = run_of(3, 2);
        let plan = FaultPlan::new(vec![
            FaultEvent {
                round: 9,
                machine: 0,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                round: 0,
                machine: 0,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                round: 1,
                machine: 99,
                kind: FaultKind::Crash,
            },
        ]);
        let r = apply(&m, &plan);
        assert_eq!(r.redo_rounds, 0);
        assert_eq!(r.crashes_applied, 0);
        assert_eq!(r.effective_rounds, 3);
    }

    #[test]
    fn mixed_faults_compose() {
        let m = run_of(2, 2);
        let plan = FaultPlan::new(vec![
            FaultEvent {
                round: 1,
                machine: 0,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                round: 1,
                machine: 1,
                kind: FaultKind::Straggler(4.0),
            },
        ]);
        let r = apply(&m, &plan);
        assert_eq!(r.effective_rounds, 3);
        // round 1 at 4.0 + round 2 at 1.0 + one redo at 1.0
        assert!((r.makespan - 6.0).abs() < 1e-12);
    }

    /// A two-round run whose first superstep measured a 3× straggler
    /// skew (one machine took 600ns against a 200ns mean).
    fn measured_run() -> Metrics {
        let mut m = Metrics::new(4, 1000);
        m.supersteps = 1;
        m.record_round(RoundKind::Exchange, 1, 1, 1);
        m.record_timing(700, &[600, 100, 50, 50]);
        m.supersteps = 2;
        m.record_round(RoundKind::Gather, 1, 1, 1);
        m.record_timing(100, &[25, 25, 25, 25]);
        m
    }

    #[test]
    fn measured_skew_prices_stragglers() {
        let m = measured_run();
        let plan = FaultPlan::new(vec![FaultEvent {
            round: 1,
            machine: 0,
            kind: FaultKind::Straggler(10.0), // synthetic guess, ignored
        }]);
        let r = apply_measured(&m, &plan);
        // Round 1's superstep measured skew 600 / (800/4) = 3.0; the
        // synthetic 10× multiplier is not used.
        assert_eq!(r.report.stragglers_measured, 1);
        assert_eq!(
            r.pricing,
            vec![StragglerCost::Measured {
                round: 1,
                skew: 3.0
            }]
        );
        let r = r.report;
        assert!((r.makespan - (3.0 + 1.0)).abs() < 1e-12, "{}", r.makespan);
        // The synthetic path still prices the same plan at 10×.
        let synthetic = apply(&m, &plan);
        assert_eq!(synthetic.stragglers_measured, 0);
        assert!((synthetic.makespan - 11.0).abs() < 1e-12);
    }

    #[test]
    fn measured_skew_clamps_to_at_least_one() {
        // Round 2's superstep is perfectly balanced (skew exactly 1.0):
        // a measured straggler there cannot speed the round up.
        let m = measured_run();
        let plan = FaultPlan::new(vec![FaultEvent {
            round: 2,
            machine: 1,
            kind: FaultKind::Straggler(5.0),
        }]);
        let r = apply_measured(&m, &plan);
        assert_eq!(r.report.stragglers_measured, 1);
        assert!((r.report.makespan - 2.0).abs() < 1e-12);
        assert!(r.fallbacks().next().is_none());
    }

    #[test]
    fn masked_timings_fall_back_to_synthetic() {
        // Synthetic metrics (record_round only, no timings) are exactly
        // the masked case: apply_measured must price with the plan's
        // multiplier and report zero measured events.
        let m = run_of(3, 4);
        let plan = FaultPlan::new(vec![FaultEvent {
            round: 2,
            machine: 0,
            kind: FaultKind::Straggler(2.5),
        }]);
        let measured = apply_measured(&m, &plan);
        assert_eq!(measured.report.stragglers_measured, 0);
        assert_eq!(measured.report, apply(&m, &plan));
        assert!((measured.report.makespan - 4.5).abs() < 1e-12);
        // Regression: the fallback is no longer silent — it must surface
        // as an explicit pricing entry carrying the multiplier used.
        assert_eq!(
            measured.pricing,
            vec![StragglerCost::SyntheticFallback {
                round: 2,
                multiplier: 2.5
            }]
        );
        assert_eq!(measured.fallbacks().count(), 1);
    }

    #[test]
    fn worker_kills_ride_the_plan_but_are_not_priced() {
        let m = run_of(3, 4);
        let plan = FaultPlan::none().kill_worker(1, 2).kill_worker(0, 3);
        assert_eq!(
            plan.worker_kills(),
            &[
                WorkerKill {
                    worker: 1,
                    superstep: 2
                },
                WorkerKill {
                    worker: 0,
                    superstep: 3
                }
            ]
        );
        // Kills are executed live by the dist transport and recovered
        // bit-identically; the post-hoc cost model must ignore them.
        let r = apply(&m, &plan);
        assert_eq!(r.redo_rounds, 0);
        assert_eq!(r.crashes_applied, 0);
        assert!((r.makespan - 3.0).abs() < 1e-12);
    }

    #[test]
    fn random_plan_deterministic_and_counted() {
        let a = FaultPlan::random(8, 20, 0.05, 0.1, 2.0, 7);
        let b = FaultPlan::random(8, 20, 0.05, 0.1, 2.0, 7);
        assert_eq!(a, b);
        let c = FaultPlan::random(8, 20, 0.05, 0.1, 2.0, 8);
        assert_ne!(a, c);
        assert_eq!(a.crashes() + a.stragglers(), a.events().len());
        // With 160 trials at p=0.05 the expected crash count is 8; allow a
        // wide deterministic band.
        assert!(a.crashes() > 0);
        assert!(a.crashes() < 40);
    }

    #[test]
    fn random_plan_rates_scale() {
        let none = FaultPlan::random(10, 50, 0.0, 0.0, 1.0, 3);
        assert!(none.events().is_empty());
        let all = FaultPlan::random(4, 10, 1.0, 0.0, 1.0, 3);
        assert_eq!(all.crashes(), 40);
    }

    #[test]
    #[should_panic(expected = "slowdown")]
    fn rejects_sub_unit_slowdown() {
        FaultPlan::new(vec![FaultEvent {
            round: 1,
            machine: 0,
            kind: FaultKind::Straggler(0.5),
        }]);
    }

    #[test]
    fn zero_round_run_degenerate() {
        let m = run_of(0, 2);
        let r = apply(&m, &FaultPlan::none());
        assert_eq!(r.effective_rounds, 0);
        assert!((r.slowdown_factor() - 1.0).abs() < 1e-12);
    }
}
