//! Shards: exclusive ownership of one simulated machine's resources.
//!
//! In the paper's model each of the `M` machines owns `O(n^{1+µ})` words
//! of memory and its private random coins; nothing is shared except what
//! moves through a metered communication round. A [`Shard`] makes that
//! ownership structural: it holds one machine's resident state, its
//! machine-local [`DetRng`] stream, and its space accounting
//! ([`Shard::words`]) — and hands out exclusive access one superstep at a
//! time through the [`crate::superstep::Scheduler`]. The cluster facade
//! ([`crate::cluster::Cluster`]) is a `Vec<Shard<S>>` plus a router and a
//! scheduler.
//!
//! The shard RNG is derived from `(cluster seed, shard id)`, so its
//! stream is a pure function of the configuration — independent of the
//! executor schedule, thread count and runtime, like every other
//! observable. Drivers that need per-entity, partition-stable coins keep
//! using the stateless [`crate::rng::coin`] hashes — those survive
//! re-partitioning and keep the committed goldens stable — while the
//! shard stream ([`Shard::rng_mut`]) serves machine-local decisions
//! where per-entity stability is not required (e.g. local sampling
//! without entity ids, synthetic benchmark workloads).
//!
//! # Shards and the columnar routing plane
//!
//! Shards never see the router, but their exchange traffic flows through
//! it: the cluster stages each shard's sends in an
//! [`Outbox`](crate::router::Outbox) whose columns (messages +
//! destinations) are drawn from a pooled
//! [`RouterScratch`](crate::router::RouterScratch), and
//! [`RouterKind::Columnar`](crate::router::RouterKind) counting-sorts
//! them into one flat inbox arena. Steady-state supersteps therefore
//! allocate nothing on the routing path — buffers cycle
//! outbox → arena → scratch → outbox across rounds. Pooling is purely a
//! memory-reuse concern: delivery order stays `(sender id, send order)`,
//! so the shard-observable byte stream is identical to the `Merge`
//! reference plane. Fault-tolerant replay in `Backend::Dist` is likewise
//! unaffected — recovery re-reads retained serialized batch bytes, never
//! pooled buffers (see [`crate::router`] module docs).

use crate::rng::DetRng;
use crate::words::WordSized;

/// Identifier of a simulated machine: `0..machines`.
pub type MachineId = usize;

/// Resident per-machine state.
pub trait MachineState: Send + Sync {
    /// Words of simulated memory this state occupies.
    fn words(&self) -> usize;
}

impl<T: WordSized + Send + Sync> MachineState for T {
    fn words(&self) -> usize {
        WordSized::words(self)
    }
}

/// Domain-separation tag of the shard RNG streams.
const SHARD_RNG_TAG: u64 = 0x7368_6172_6421;

/// One simulated machine: exclusive owner of its resident state, its
/// machine-local RNG stream, and its space accounting.
#[derive(Debug)]
pub struct Shard<S> {
    id: MachineId,
    state: S,
    rng: DetRng,
}

impl<S: MachineState> Shard<S> {
    /// A shard for machine `id`, seeding the machine-local RNG from
    /// `(cluster_seed, id)`.
    pub fn new(id: MachineId, state: S, cluster_seed: u64) -> Self {
        Shard {
            id,
            state,
            rng: DetRng::derive(cluster_seed, &[SHARD_RNG_TAG, id as u64]),
        }
    }

    /// This shard's machine id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// Immutable view of the resident state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the resident state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// The machine-local deterministic RNG stream (a pure function of
    /// `(cluster seed, shard id)` and the number of draws so far).
    pub fn rng_mut(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Words of simulated memory currently resident on this shard.
    pub fn words(&self) -> usize {
        self.state.words()
    }

    /// Consumes the shard, returning the resident state.
    pub fn into_state(self) -> S {
        self.state
    }
}

/// Builds one shard per machine from the per-machine states, in id order.
pub fn shards_from_states<S: MachineState>(states: Vec<S>, cluster_seed: u64) -> Vec<Shard<S>> {
    states
        .into_iter()
        .enumerate()
        .map(|(id, state)| Shard::new(id, state, cluster_seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_owns_state_and_accounts_words() {
        let mut shard = Shard::new(3, vec![1u64, 2, 3], 7);
        assert_eq!(shard.id(), 3);
        assert_eq!(shard.words(), 4); // length word + payload
        shard.state_mut().push(9);
        assert_eq!(shard.state(), &vec![1, 2, 3, 9]);
        assert_eq!(shard.into_state(), vec![1, 2, 3, 9]);
    }

    #[test]
    fn shard_rngs_are_deterministic_and_distinct() {
        let mut a = Shard::new(0, vec![0u64], 42);
        let mut b = Shard::new(0, vec![0u64], 42);
        let mut c = Shard::new(1, vec![0u64], 42);
        let mut d = Shard::new(0, vec![0u64], 43);
        let draw =
            |s: &mut Shard<Vec<u64>>| (0..8).map(|_| s.rng_mut().next_u64()).collect::<Vec<_>>();
        let xa = draw(&mut a);
        assert_eq!(xa, draw(&mut b), "same (seed, id) must replay");
        assert_ne!(xa, draw(&mut c), "shards must have distinct streams");
        assert_ne!(xa, draw(&mut d), "seeds must separate streams");
    }

    #[test]
    fn shards_from_states_assigns_ids_in_order() {
        let shards = shards_from_states(vec![vec![1u64], vec![2u64]], 5);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].id(), 0);
        assert_eq!(shards[1].id(), 1);
        assert_eq!(shards[1].state(), &vec![2]);
    }
}
