//! Data partitioners: how records are assigned to machines.
//!
//! The MRC model distributes the input "arbitrarily" across machines; the
//! algorithms' guarantees must hold for *any* placement, and the randomized
//! drivers additionally rely on hash placement for load balance (the
//! Chernoff-bound space arguments in Theorems 2.4/3.3/5.6). This module
//! makes placement a first-class, testable object: hash, contiguous-block
//! and range partitioners behind one trait, plus balance diagnostics for the
//! space experiments.
//!
//! ```
//! use mrlr_mapreduce::partition::{split, HashPartitioner, Partitioner};
//!
//! let p = HashPartitioner::new(42, 4);
//! let parts = split((0u64..100).collect(), |&x| x, &p);
//! assert_eq!(parts.len(), 4);
//! assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 100);
//! assert_eq!(p.place(7), p.place(7)); // placement is pure
//! ```

use crate::cluster::MachineId;
use crate::rng::mix2;

/// Assigns 64-bit record keys to machines. Implementations must be pure:
/// the same key always lands on the same machine.
pub trait Partitioner: Sync {
    /// The machine for `key`.
    fn place(&self, key: u64) -> MachineId;

    /// Number of machines being partitioned over.
    fn machines(&self) -> usize;
}

/// Seeded hash placement — the default for all randomized drivers. Balanced
/// w.h.p. for any key set (keys are mixed through SplitMix64, so adversarial
/// key patterns do not skew placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPartitioner {
    seed: u64,
    machines: usize,
}

impl HashPartitioner {
    /// Creates a hash partitioner over `machines` machines.
    ///
    /// # Panics
    /// Panics if `machines == 0`.
    pub fn new(seed: u64, machines: usize) -> Self {
        assert!(machines > 0, "need at least one machine");
        HashPartitioner { seed, machines }
    }
}

impl Partitioner for HashPartitioner {
    fn place(&self, key: u64) -> MachineId {
        (mix2(self.seed ^ 0x7061_7274, key) % self.machines as u64) as MachineId
    }

    fn machines(&self) -> usize {
        self.machines
    }
}

/// Contiguous-block placement: keys `0..items` are split into `machines`
/// blocks of near-equal size, in key order. This is the "element `j` is
/// assigned arbitrarily, `n^{1+µ}` elements per machine" layout of
/// Theorem 2.4, and the worst case for any placement-sensitive logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockPartitioner {
    items: u64,
    machines: usize,
}

impl BlockPartitioner {
    /// Creates a block partitioner for keys `0..items`.
    ///
    /// # Panics
    /// Panics if `machines == 0`.
    pub fn new(items: u64, machines: usize) -> Self {
        assert!(machines > 0, "need at least one machine");
        BlockPartitioner { items, machines }
    }

    /// The key range `[lo, hi)` owned by `machine`.
    pub fn block(&self, machine: MachineId) -> (u64, u64) {
        let m = self.machines as u64;
        let base = self.items / m;
        let extra = self.items % m;
        let i = machine as u64;
        // The first `extra` machines get one extra key.
        let lo = i * base + i.min(extra);
        let hi = lo + base + u64::from(i < extra);
        (lo, hi)
    }
}

impl Partitioner for BlockPartitioner {
    fn place(&self, key: u64) -> MachineId {
        assert!(key < self.items, "key {key} outside 0..{}", self.items);
        let m = self.machines as u64;
        let base = self.items / m;
        let extra = self.items % m;
        let boundary = extra * (base + 1);
        let i = if key < boundary {
            key / (base + 1)
        } else {
            extra + (key - boundary) / base.max(1)
        };
        i as MachineId
    }

    fn machines(&self) -> usize {
        self.machines
    }
}

/// Range placement over explicit upper bounds: machine `i` owns keys
/// `< bounds[i]` not owned by an earlier machine; the last machine owns the
/// rest. Used to model skewed or locality-preserving layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangePartitioner {
    bounds: Vec<u64>,
}

impl RangePartitioner {
    /// Creates a range partitioner with `bounds.len() + 1` machines.
    ///
    /// # Panics
    /// Panics if `bounds` is not strictly increasing.
    pub fn new(bounds: Vec<u64>) -> Self {
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "bounds must be strictly increasing");
        }
        RangePartitioner { bounds }
    }
}

impl Partitioner for RangePartitioner {
    fn place(&self, key: u64) -> MachineId {
        self.bounds.partition_point(|&b| b <= key)
    }

    fn machines(&self) -> usize {
        self.bounds.len() + 1
    }
}

/// Splits `items` into per-machine vectors under `part`, keying each item
/// with `key`. Item order is preserved within each machine.
pub fn split<T, K, P>(items: Vec<T>, key: K, part: &P) -> Vec<Vec<T>>
where
    K: Fn(&T) -> u64,
    P: Partitioner + ?Sized,
{
    let mut out: Vec<Vec<T>> = (0..part.machines()).map(|_| Vec::new()).collect();
    for item in items {
        let m = part.place(key(&item));
        out[m].push(item);
    }
    out
}

/// Load-balance summary of a placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceStats {
    /// Smallest per-machine count.
    pub min: usize,
    /// Largest per-machine count.
    pub max: usize,
    /// Mean per-machine count.
    pub mean: f64,
    /// `max / mean` — 1.0 is perfectly balanced. 0 when there are no items.
    pub imbalance: f64,
}

/// Computes [`BalanceStats`] for per-machine counts.
pub fn balance_stats(counts: &[usize]) -> BalanceStats {
    if counts.is_empty() {
        return BalanceStats {
            min: 0,
            max: 0,
            mean: 0.0,
            imbalance: 0.0,
        };
    }
    let min = counts.iter().copied().min().unwrap_or(0);
    let max = counts.iter().copied().max().unwrap_or(0);
    let total: usize = counts.iter().sum();
    let mean = total as f64 / counts.len() as f64;
    let imbalance = if mean > 0.0 { max as f64 / mean } else { 0.0 };
    BalanceStats {
        min,
        max,
        mean,
        imbalance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_bounded() {
        let p = HashPartitioner::new(7, 13);
        for key in 0..200u64 {
            let a = p.place(key);
            assert_eq!(a, p.place(key));
            assert!(a < 13);
        }
        assert_eq!(p.machines(), 13);
    }

    #[test]
    fn hash_balances_sequential_keys() {
        let p = HashPartitioner::new(3, 8);
        let mut counts = vec![0usize; 8];
        for key in 0..8000u64 {
            counts[p.place(key)] += 1;
        }
        let s = balance_stats(&counts);
        assert!(s.imbalance < 1.15, "imbalance {}", s.imbalance);
        assert!(s.min > 0);
    }

    #[test]
    fn hash_seeds_differ() {
        let a = HashPartitioner::new(1, 16);
        let b = HashPartitioner::new(2, 16);
        let same = (0..256u64).filter(|&k| a.place(k) == b.place(k)).count();
        assert!(
            same < 64,
            "placements nearly identical across seeds: {same}"
        );
    }

    #[test]
    fn block_blocks_are_contiguous_and_exhaustive() {
        for (items, machines) in [(10u64, 3usize), (7, 7), (100, 8), (5, 9)] {
            let p = BlockPartitioner::new(items, machines);
            let mut next = 0u64;
            for m in 0..machines {
                let (lo, hi) = p.block(m);
                assert_eq!(lo, next, "items {items} machines {machines}");
                assert!(hi >= lo);
                for key in lo..hi {
                    assert_eq!(p.place(key), m);
                }
                next = hi;
            }
            assert_eq!(next, items);
        }
    }

    #[test]
    fn block_sizes_near_equal() {
        let p = BlockPartitioner::new(103, 10);
        let sizes: Vec<u64> = (0..10)
            .map(|m| {
                let (lo, hi) = p.block(m);
                hi - lo
            })
            .collect();
        assert!(sizes.iter().all(|&s| s == 10 || s == 11));
        assert_eq!(sizes.iter().sum::<u64>(), 103);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn block_rejects_out_of_range_key() {
        BlockPartitioner::new(10, 2).place(10);
    }

    #[test]
    fn range_partitions_by_bounds() {
        let p = RangePartitioner::new(vec![10, 20, 30]);
        assert_eq!(p.machines(), 4);
        assert_eq!(p.place(0), 0);
        assert_eq!(p.place(9), 0);
        assert_eq!(p.place(10), 1);
        assert_eq!(p.place(29), 2);
        assert_eq!(p.place(30), 3);
        assert_eq!(p.place(u64::MAX), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn range_rejects_unsorted_bounds() {
        RangePartitioner::new(vec![5, 5]);
    }

    #[test]
    fn split_preserves_order_within_machine() {
        let p = BlockPartitioner::new(6, 2);
        let parts = split(vec![5u64, 0, 3, 1, 4, 2], |&x| x, &p);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], vec![0, 1, 2]);
        assert_eq!(parts[1], vec![5, 3, 4]);
    }

    #[test]
    fn balance_stats_basics() {
        let s = balance_stats(&[10, 10, 10, 10]);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 10);
        assert!((s.imbalance - 1.0).abs() < 1e-12);
        let skew = balance_stats(&[0, 0, 0, 40]);
        assert_eq!(skew.min, 0);
        assert!((skew.imbalance - 4.0).abs() < 1e-12);
        let empty = balance_stats(&[]);
        assert_eq!(empty.max, 0);
        assert_eq!(empty.imbalance, 0.0);
        let zeroes = balance_stats(&[0, 0]);
        assert_eq!(zeroes.imbalance, 0.0);
    }
}
