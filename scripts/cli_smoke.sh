#!/usr/bin/env bash
# CLI smoke loop: `mrlr gen → solve → verify → batch` for every registry
# key, diffing masked JSON reports (full, re-verifiable certificates)
# against the checked-in golden files AND re-verifying every golden
# offline with `mrlr verify`. Runs the same matrix as
# crates/cli/tests/cli_smoke.rs (the matrix file is the single source of
# truth for both); CI invokes this under MRLR_THREADS={1,4} crossed with
# MRLR_BACKEND={mr,shard,dist} — the env var swaps the cluster runtime
# under Backend::Mr, and because the runtimes are bit-identical the SAME
# golden files must match on every axis. Explicit `--backend shard` and
# `--backend dist` solves are additionally diffed against the mr golden
# modulo the backend tag (the dist leg spawns real worker processes),
# and the batch document is audited whole by `mrlr verify <batch.json>`.
# Regenerate goldens after an intentional format change with
# `MRLR_UPDATE_GOLDEN=1 cargo test -p mrlr-cli`.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
matrix="$root/crates/cli/tests/smoke_matrix.txt"
golden="$root/crates/cli/tests/golden"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

mrlr() { cargo run -q --release -p mrlr-cli -- "$@"; }

cd "$root"
while IFS='|' read -r key family gen_args solve_args; do
  case "$key" in ''|\#*) continue ;; esac
  # shellcheck disable=SC2086  # word-splitting of the arg columns is the point
  mrlr gen "$family" $gen_args --out "$work/$key.inst"
  # shellcheck disable=SC2086
  mrlr solve "$key" --input "$work/$key.inst" $solve_args \
    --format json --mask-timings --out "$work/$key.json"
  diff -u "$golden/$key.json" "$work/$key.json"
  # Every stored report is an auditable artifact: replay the golden's
  # certificate witness offline against the (regenerated) instance.
  mrlr verify "$work/$key.inst" "$golden/$key.json" --quiet
  echo "ok: $key (diff + verify)"
done < "$matrix"

# Explicit shard backend: the payload is bit-identical to the mr golden
# (only the backend tag differs), and the stored report still verifies.
mrlr solve matching --input "$work/matching.inst" --backend shard \
  --format json --mask-timings --out "$work/matching.shard.json"
sed 's/"backend": "shard"/"backend": "mr"/' "$work/matching.shard.json" \
  | diff -u "$golden/matching.json" -
mrlr verify "$work/matching.inst" "$work/matching.shard.json" --quiet
echo "ok: shard backend (diff modulo tag + verify)"

# Explicit dist backend: worker processes over the Unix-socket control
# plane; the payload is still bit-identical to the mr golden.
mrlr solve matching --input "$work/matching.inst" --backend dist --workers 2 \
  --format json --mask-timings --out "$work/matching.dist.json"
sed 's/"backend": "dist"/"backend": "mr"/' "$work/matching.dist.json" \
  | diff -u "$golden/matching.json" -
mrlr verify "$work/matching.inst" "$work/matching.dist.json" --quiet
echo "ok: dist backend (diff modulo tag + verify)"

cp "$golden/batch.manifest" "$work/batch.manifest"
mrlr batch "$work/batch.manifest" --mask-timings --out "$work/batch.json"
diff -u "$golden/batch.json" "$work/batch.json"
mrlr batch "$work/batch.manifest" --mask-timings --format csv --out "$work/batch.csv"
diff -u "$golden/batch.csv" "$work/batch.csv"
# Audit the whole batch document offline (error slots are skipped).
mrlr verify "$work/batch.json" --quiet
echo "ok: batch (diff + verify)"

mrlr list --format json > "$work/list.json"
diff -u "$golden/list.json" "$work/list.json"
echo "ok: list"

echo "cli smoke passed (MRLR_THREADS=${MRLR_THREADS:-unset}, MRLR_BACKEND=${MRLR_BACKEND:-unset})"
