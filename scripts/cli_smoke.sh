#!/usr/bin/env bash
# CLI smoke loop: `mrlr gen → solve → verify → batch` for every registry
# key, diffing masked JSON reports (full, re-verifiable certificates)
# against the checked-in golden files AND re-verifying every golden
# offline with `mrlr verify`. Runs the same matrix as
# crates/cli/tests/cli_smoke.rs (the matrix file is the single source of
# truth for both); CI invokes this under MRLR_THREADS=1 and
# MRLR_THREADS=4, so format *and* thread determinism are pinned.
# Regenerate goldens after an intentional format change with
# `MRLR_UPDATE_GOLDEN=1 cargo test -p mrlr-cli`.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
matrix="$root/crates/cli/tests/smoke_matrix.txt"
golden="$root/crates/cli/tests/golden"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

mrlr() { cargo run -q --release -p mrlr-cli -- "$@"; }

cd "$root"
while IFS='|' read -r key family gen_args solve_args; do
  case "$key" in ''|\#*) continue ;; esac
  # shellcheck disable=SC2086  # word-splitting of the arg columns is the point
  mrlr gen "$family" $gen_args --out "$work/$key.inst"
  # shellcheck disable=SC2086
  mrlr solve "$key" --input "$work/$key.inst" $solve_args \
    --format json --mask-timings --out "$work/$key.json"
  diff -u "$golden/$key.json" "$work/$key.json"
  # Every stored report is an auditable artifact: replay the golden's
  # certificate witness offline against the (regenerated) instance.
  mrlr verify "$work/$key.inst" "$golden/$key.json" --quiet
  echo "ok: $key (diff + verify)"
done < "$matrix"

cp "$golden/batch.manifest" "$work/batch.manifest"
mrlr batch "$work/batch.manifest" --mask-timings --out "$work/batch.json"
diff -u "$golden/batch.json" "$work/batch.json"
mrlr batch "$work/batch.manifest" --mask-timings --format csv --out "$work/batch.csv"
diff -u "$golden/batch.csv" "$work/batch.csv"
echo "ok: batch"

mrlr list --format json > "$work/list.json"
diff -u "$golden/list.json" "$work/list.json"
echo "ok: list"

echo "cli smoke passed (MRLR_THREADS=${MRLR_THREADS:-unset})"
