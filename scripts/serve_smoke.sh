#!/usr/bin/env bash
# Serve smoke loop: start the `mrlr serve` daemon on a Unix socket and
# drive it with `mrlr client` through the same matrix as
# scripts/cli_smoke.sh — every served report must be byte-identical to
# the checked-in cli-smoke goldens (the daemon shares the offline
# renderers, so any drift is a protocol bug, not a formatting one).
# Exercises, in order:
#   1. default daemon: client solve for every registry key diffed
#      against crates/cli/tests/golden/<key>.json, explicit shard/dist
#      backend legs diffed modulo the backend tag, client verify for
#      every golden, client batch (json + csv) diffed against the batch
#      goldens and audited whole by offline `mrlr verify`;
#   2. a constrained daemon (--max-inflight 1 --queue 0 --hold-millis):
#      two identical concurrent solves coalesce onto ONE solver run with
#      bit-identical fan-out, and a third, different request is rejected
#      with a `busy` error (exit 1) instead of hanging;
#   3. clean shutdown both times: `client shutdown` drains in-flight
#      work, the socket file is removed, and no orphan mrlr processes
#      (daemon or dist workers) survive.
# CI runs this under MRLR_BACKEND={mr,shard,dist}; the env var swaps the
# cluster runtime the daemon uses under Backend::Mr, and the SAME golden
# files must match on every leg.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
matrix="$root/crates/cli/tests/smoke_matrix.txt"
golden="$root/crates/cli/tests/golden"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

cd "$root"
# Build once and call the binary directly: the daemon runs in the
# background, and two concurrent `cargo run`s would contend on the
# target-dir lock.
cargo build --release -q -p mrlr-cli
mrlr() { "$root/target/release/mrlr" "$@"; }

wait_ready() { # wait_ready <socket>
  for _ in $(seq 1 150); do
    if [ -S "$1" ] && mrlr client ping --socket "$1" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "error: daemon did not come up on $1" >&2
  return 1
}

stat_field() { # stat_field <socket> <field>
  mrlr client stats --socket "$1" | grep -o "\"$2\": [0-9]*" | grep -o '[0-9]*$'
}

assert_stat() { # assert_stat <socket> <field> <expected>
  local got
  got="$(stat_field "$1" "$2")"
  if [ "$got" != "$3" ]; then
    echo "error: daemon stat $2 = $got, expected $3" >&2
    exit 1
  fi
}

assert_down() { # assert_down <socket> <daemon pid>
  wait "$2"
  if [ -e "$1" ]; then
    echo "error: socket $1 still present after shutdown" >&2
    exit 1
  fi
  if pgrep -x mrlr >/dev/null 2>&1; then
    echo "error: orphan mrlr processes after shutdown:" >&2
    pgrep -ax mrlr >&2
    exit 1
  fi
}

# ---------------------------------------------------- phase 1: matrix --
sock="$work/serve.sock"
mrlr serve --socket "$sock" 2>"$work/serve.log" &
daemon=$!
wait_ready "$sock"

while IFS='|' read -r key family gen_args solve_args; do
  case "$key" in ''|\#*) continue ;; esac
  # shellcheck disable=SC2086  # word-splitting of the arg columns is the point
  mrlr gen "$family" $gen_args --out "$work/$key.inst"
  # shellcheck disable=SC2086
  mrlr client solve "$key" --socket "$sock" --input "$work/$key.inst" $solve_args \
    --format json --mask-timings --out "$work/$key.json" 2>/dev/null
  diff -u "$golden/$key.json" "$work/$key.json"
  # The daemon audits the golden report against the regenerated instance.
  mrlr client verify "$work/$key.inst" "$golden/$key.json" --socket "$sock" --quiet
  echo "ok: served $key (diff + verify)"
done < "$matrix"

# Explicit shard/dist backends through the daemon: payloads bit-identical
# to the mr golden modulo the backend tag, and the daemon audits both.
# The dist leg makes the daemon spawn real worker processes — the orphan
# check after shutdown covers them too.
for b in shard dist; do
  mrlr client solve matching --socket "$sock" --input "$work/matching.inst" \
    --backend "$b" --format json --mask-timings --out "$work/matching.$b.json" 2>/dev/null
  sed "s/\"backend\": \"$b\"/\"backend\": \"mr\"/" "$work/matching.$b.json" \
    | diff -u "$golden/matching.json" -
  mrlr client verify "$work/matching.inst" "$work/matching.$b.json" --socket "$sock" --quiet
  echo "ok: served $b backend (diff modulo tag + verify)"
done

# Served batch: the client ships manifest-relative instance files; the
# document (deliberate per-slot errors included) must match the offline
# goldens byte-for-byte, and the whole document still audits offline.
cp "$golden/batch.manifest" "$work/batch.manifest"
mrlr client batch "$work/batch.manifest" --socket "$sock" --mask-timings \
  --out "$work/batch.json" 2>/dev/null
diff -u "$golden/batch.json" "$work/batch.json"
mrlr client batch "$work/batch.manifest" --socket "$sock" --mask-timings \
  --format csv --out "$work/batch.csv" 2>/dev/null
diff -u "$golden/batch.csv" "$work/batch.csv"
mrlr verify "$work/batch.json" --quiet
echo "ok: served batch (diff + offline verify)"

# 10 matrix solves + 10 verifies + 2 backend solves + 2 verifies +
# 2 batches; pings/stats are not solve requests and must not count.
assert_stat "$sock" requests 26
assert_stat "$sock" coalesce_hits 0
assert_stat "$sock" busy_rejects 0
assert_stat "$sock" timeouts 0
mrlr client shutdown --socket "$sock" >/dev/null
assert_down "$sock" "$daemon"
echo "ok: matrix daemon drained (socket removed, no orphans)"

# -------------------------------- phase 2: coalescing and admission --
# One solver slot, no queue, and a 4s post-solve hold so concurrent
# requests deterministically overlap: an identical second request must
# coalesce (no slot, no extra run), a different third must bounce.
sock2="$work/serve-tight.sock"
mrlr serve --socket "$sock2" --max-inflight 1 --queue 0 --hold-millis 4000 \
  2>"$work/serve-tight.log" &
daemon2=$!
wait_ready "$sock2"

mrlr client solve matching --socket "$sock2" --input "$work/matching.inst" \
  --format json --mask-timings --out "$work/co.a.json" 2>"$work/co.a.err" &
runner=$!
sleep 1
mrlr client solve matching --socket "$sock2" --input "$work/matching.inst" \
  --format json --mask-timings --out "$work/co.b.json" 2>"$work/co.b.err" &
waiter=$!
sleep 1
# Slot held, queue full (capacity 0): a non-identical request must be
# rejected immediately with a busy error, not queued and not hung.
if mrlr client solve matching --socket "$sock2" --input "$work/matching.inst" \
  --seed 7 --format json --mask-timings --out "$work/busy.json" 2>"$work/busy.err"; then
  echo "error: overload request succeeded; expected busy rejection" >&2
  exit 1
fi
grep -q "busy" "$work/busy.err" || {
  echo "error: rejection did not mention busy:" >&2
  cat "$work/busy.err" >&2
  exit 1
}
wait "$runner"
wait "$waiter"
grep -q "coalesced" "$work/co.b.err" || {
  echo "error: second identical request was not coalesced:" >&2
  cat "$work/co.b.err" >&2
  exit 1
}
# Fan-out is bit-identical, and both match the offline golden.
diff -u "$work/co.a.json" "$work/co.b.json"
diff -u "$golden/matching.json" "$work/co.a.json"
assert_stat "$sock2" solver_runs 1
assert_stat "$sock2" coalesce_hits 1
assert_stat "$sock2" busy_rejects 1
mrlr client shutdown --socket "$sock2" >/dev/null
assert_down "$sock2" "$daemon2"
echo "ok: coalesce + busy daemon drained (1 solver run for 2 reports)"

echo "serve smoke passed (MRLR_THREADS=${MRLR_THREADS:-unset}, MRLR_BACKEND=${MRLR_BACKEND:-unset})"
