#!/usr/bin/env bash
# Fault-injection smoke: the headline property of the distributed
# runtime, exercised through the real CLI on real worker processes.
# A clean `--backend dist` solve and one where worker 1 is killed after
# superstep 1's barrier ack must produce byte-identical masked reports;
# the recovery must be visible on stderr (so the kill demonstrably
# fired); and the recovered certificate must re-verify offline with
# `mrlr verify` — proving recovery without re-running anything.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

mrlr() { cargo run -q --release -p mrlr-cli -- "$@"; }

cd "$root"
mrlr gen densified --n 200 --c 0.4 --seed 7 --out "$work/g.inst"

mrlr solve matching --input "$work/g.inst" --backend dist --workers 2 \
  --format json --mask-timings --out "$work/clean.json"

mrlr solve matching --input "$work/g.inst" --backend dist --workers 2 \
  --kill 1@1 --format json --mask-timings --out "$work/healed.json" \
  2> "$work/healed.err"

grep -q "recovery: worker 1" "$work/healed.err" || {
  echo "FAIL: injected kill left no recovery note on stderr:" >&2
  cat "$work/healed.err" >&2
  exit 1
}
echo "ok: kill fired ($(grep -c 'recovery:' "$work/healed.err") recovery)"

diff -u "$work/clean.json" "$work/healed.json"
echo "ok: recovered report byte-identical to clean run"

mrlr verify "$work/g.inst" "$work/healed.json" --quiet
echo "ok: recovered certificate re-verified offline"

echo "fault smoke passed"
