#!/usr/bin/env bash
# One-command regeneration of the committed BENCH_exec.json perf
# trajectory. Runs the executor/routing benchmark (crates/bench
# bench_exec) in release mode and rewrites the `after` rows in place —
# rows from the other phase are preserved (except the `payload`
# section, which re-measures both of its phases every run), so the
# before/after pairs in the committed file stay comparable across
# regenerations. The bench itself asserts Merge-vs-columnar and
# nested-vs-payload-plane bit-identity (checksums + Metrics) before
# emitting any row; a divergence panics instead of writing.
#
#   ./scripts/bench_exec.sh             # full run, rewrites BENCH_exec.json
#   ./scripts/bench_exec.sh --quick     # small sizes, for a fast sanity pass
#   ./scripts/bench_exec.sh --phase before   # re-measure the baseline rows
#
# Validate the committed artifact without touching it (also the CI
# alloc-regression gate: fails if any freshly measured columnar row
# exceeds its committed allocs-per-superstep baseline by more than 25%
# plus a +16 absolute grace):
#   cargo run --release -p mrlr-bench --bin bench_exec -- --check
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

cargo build -q --release -p mrlr-bench --bin bench_exec
cargo run -q --release -p mrlr-bench --bin bench_exec -- "$@" BENCH_exec.json
cargo run -q --release -p mrlr-bench --bin bench_exec -- --check BENCH_exec.json
echo "BENCH_exec.json regenerated and checked"
