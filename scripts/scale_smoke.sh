#!/usr/bin/env bash
# Out-of-core smoke: a ~10^6-edge generated instance (densified n=19307,
# m = n^{1.4}) through the streamed ingest path end to end, under a hard
# address-space ceiling (ulimit -v) that the central-materialization
# path cannot rely on — the streamed solve never holds the document text
# or a central Graph. The solve emits a committed (Merkle-hashed)
# witness; the report is then audited in full against its transcript
# sidecar, a single chunk is re-authenticated alone, a piped
# generator-fed solve (`gen --pipe | solve --input - --stream`) must
# produce the byte-identical report, and a tampered transcript must be
# rejected with a located error.
#
# Override the ceiling (KiB of virtual address space) with
# MRLR_SMOKE_ULIMIT_KB; the default leaves the streamed path ample
# headroom while still bounding it hard.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
cd "$root"

cargo build -q --release -p mrlr-cli
bin="$root/target/release/mrlr"
ceiling_kb="${MRLR_SMOKE_ULIMIT_KB:-800000}"

# 1. Generate the ~10^6-edge instance once, to a file.
"$bin" gen densified --n 19307 --c 0.4 --seed 7 --out "$work/scale.inst"
edges="$(head -n1 "$work/scale.inst" | cut -d' ' -f4)"
echo "instance: n=19307, m=$edges edges ($(du -h "$work/scale.inst" | cut -f1))"

# 2. Streamed solve with a committed witness, under the ceiling.
(
  ulimit -v "$ceiling_kb"
  "$bin" solve matching --input "$work/scale.inst" --stream \
    --certificates committed --chunk-len 4096 --witness-out "$work/scale.wit" \
    --format json --mask-timings --out "$work/scale.json"
)
echo "ok: streamed solve under ulimit -v ${ceiling_kb} KiB"

# 3. Full offline audit: commitment re-authenticated, transcript
#    replayed through the ordinary witness audit.
"$bin" verify "$work/scale.inst" "$work/scale.json" --witness "$work/scale.wit" --quiet
echo "ok: full committed-witness audit"

# 4. A single chunk re-authenticates alone against the root.
"$bin" verify "$work/scale.inst" "$work/scale.json" --witness "$work/scale.wit" --chunk 0 --quiet
echo "ok: chunk 0 audits alone"

# 5. The generator-fed pipe leg never touches disk and must be
#    byte-identical (witness commitment included) to the file leg.
(
  ulimit -v "$ceiling_kb"
  "$bin" gen densified --n 19307 --c 0.4 --seed 7 --pipe \
    | "$bin" solve matching --input - --stream \
        --certificates committed --chunk-len 4096 --witness-out "$work/pipe.wit" \
        --format json --mask-timings --out "$work/pipe.json"
)
diff -q "$work/scale.json" "$work/pipe.json"
diff -q "$work/scale.wit" "$work/pipe.wit"
echo "ok: gen --pipe | solve --input - --stream is byte-identical"

# 6. Tampering: flip one data byte mid-transcript — the audit must fail
#    (exit 1) with an error locating the damaged chunk.
half=$(( $(wc -c < "$work/scale.wit") / 2 ))
{ head -c "$half" "$work/scale.wit"; printf 'X'; tail -c +$((half + 2)) "$work/scale.wit"; } \
  > "$work/tampered.wit"
if "$bin" verify "$work/scale.inst" "$work/scale.json" --witness "$work/tampered.wit" --quiet \
    2> "$work/tamper.err"; then
  echo "tampered transcript was accepted" >&2
  exit 1
fi
grep -q "transcript" "$work/tamper.err"
echo "ok: tampered transcript rejected with a located error"

echo "scale smoke passed (MRLR_THREADS=${MRLR_THREADS:-unset}, MRLR_BACKEND=${MRLR_BACKEND:-unset})"
