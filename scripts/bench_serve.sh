#!/usr/bin/env bash
# One-command regeneration of the committed BENCH_serve.json serving
# benchmark. Runs the load generator (crates/bench bench_serve) in
# release mode against throwaway daemons: a sequential latency scenario
# (p50/p99/throughput), a coalescing burst (identical concurrent
# requests must share solver runs), and an overload scenario (a
# 1-slot/0-queue daemon must reject with busy, not hang). The bench
# asserts the served report is byte-identical to a direct
# Registry::solve before emitting any row.
#
#   ./scripts/bench_serve.sh            # full run, rewrites BENCH_serve.json
#   ./scripts/bench_serve.sh --quick    # small instance, for a fast sanity pass
#
# Validate the committed artifact without touching it:
#   cargo run --release -p mrlr-bench --bin bench_serve -- --check
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

cargo build -q --release -p mrlr-bench --bin bench_serve
cargo run -q --release -p mrlr-bench --bin bench_serve -- "$@" BENCH_serve.json
cargo run -q --release -p mrlr-bench --bin bench_serve -- --check BENCH_serve.json
echo "BENCH_serve.json regenerated and checked"
