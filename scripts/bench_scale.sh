#!/usr/bin/env bash
# One-command regeneration of the committed BENCH_scale.json out-of-core
# scaling benchmark. Runs crates/bench bench_scale in release mode over
# the scripts/scale_ladder.spec size ladder (densified graphs up to
# ~10^7 edges): every rung is rendered to a temp file once and solved in
# two subprocess legs — streamed ingest vs full materialization — whose
# peak RSS (VmHWM) is recorded per leg, with the objectives asserted
# equal before any row is emitted.
#
#   ./scripts/bench_scale.sh            # full ladder, rewrites BENCH_scale.json
#   ./scripts/bench_scale.sh --quick    # first rung only, fast sanity pass
#
# Validate the committed artifact without touching it:
#   cargo run --release -p mrlr-bench --bin bench_scale -- --check
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

cargo build -q --release -p mrlr-bench --bin bench_scale
cargo run -q --release -p mrlr-bench --bin bench_scale -- "$@" BENCH_scale.json
cargo run -q --release -p mrlr-bench --bin bench_scale -- --check BENCH_scale.json
echo "BENCH_scale.json regenerated and checked"
