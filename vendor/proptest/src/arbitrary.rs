//! `any::<T>()` — the full-domain strategy for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: tests feed these into arithmetic.
        rng.unit_f64() * 2e6 - 1e6
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
