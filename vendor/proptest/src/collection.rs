//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A vector of values from `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<S::Value>`.
///
/// Draws a target size, then inserts that many generated values; duplicate
/// draws mean the set may end up smaller (real proptest retries — the shim
/// keeps it simple, which matches how the tests use it).
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A `BTreeSet` of values from `element` with up to `size` entries.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
