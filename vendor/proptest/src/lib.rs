//! Minimal offline shim of the `proptest` property-testing API.
//!
//! Implements the subset this workspace's tests use: the `proptest!` macro
//! (with `#![proptest_config(...)]`), `prop_assert*!` / `prop_assume!`,
//! `any::<T>()`, integer/float range strategies, tuple strategies,
//! `prop_map` / `prop_flat_map`, and `proptest::collection::{vec,
//! btree_set}`. Values are generated from a deterministic per-test seed
//! (FNV-1a of the test's module path and name), so failures are
//! reproducible; there is **no shrinking** — a failing case reports its
//! seed and case index instead of a minimized input.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// item expands to a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng = $crate::test_runner::TestRng::new(__seed);
            let mut __case: u32 = 0;
            let mut __tries: u32 = 0;
            while __case < __config.cases {
                __tries += 1;
                if __tries > __config.cases.saturating_mul(20) + 1000 {
                    panic!(
                        "proptest shim: too many rejected cases in {}",
                        stringify!($name)
                    );
                }
                $(let $arg_pat =
                    $crate::strategy::Strategy::new_value(&($arg_strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => { __case += 1; }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} (seed {:#x}) failed: {}",
                            __case, stringify!($name), __seed, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Skips the current case (without counting it) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
