//! The [`Strategy`] trait and the combinators/primitive strategies the
//! workspace uses: integer and float ranges, tuples, `prop_map`, and
//! `prop_flat_map`.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates values of an associated type from the test RNG.
///
/// Unlike real proptest there is no value *tree* (no shrinking): a strategy
/// simply produces one value per call.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategies are used by reference inside combinators.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: any value.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}
