//! Test-runner types: configuration, case errors, and the deterministic RNG.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; the shim keeps suites quick.
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one generated case (other than plain success).
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: generate a fresh case instead.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// FNV-1a hash of a string; used to derive a stable per-test seed.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
        i += 1;
    }
    hash
}

/// SplitMix64: small, fast, deterministic. Good enough for case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`. `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % n
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
