//! Minimal offline shim of the `criterion` benchmarking API.
//!
//! Implements exactly the subset this workspace's benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs a
//! short warm-up followed by timed batches and prints the mean wall-clock
//! time per iteration. There is no statistical analysis or HTML report.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevents the optimizer from eliding a value. Best-effort shim.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-group settings: sample size and measurement time.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.measurement_time, |b| f(b));
        self.criterion.ran += 1;
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self.criterion.ran += 1;
        self
    }

    /// Ends the group (printing nothing extra in this shim).
    pub fn finish(&mut self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    // Warm-up + calibration: one iteration to estimate per-iter cost.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    // Pick an iteration count so `sample_size` samples fit the budget.
    let budget = measurement_time.max(Duration::from_millis(10));
    let per_sample = budget / sample_size.max(1) as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let started = Instant::now();
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
        if started.elapsed() > budget {
            break;
        }
    }
    let mean = total.as_secs_f64() / total_iters.max(1) as f64;
    println!(
        "bench {label:<60} {:>12.3} µs/iter ({total_iters} iters)",
        mean * 1e6
    );
}

/// Shim of criterion's top-level driver.
#[derive(Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Benchmarks `f` outside a group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 20, Duration::from_secs(2), |b| f(b));
        self.ran += 1;
        self
    }

    /// Final hook for `criterion_main!`; prints a one-line summary.
    pub fn final_summary(&mut self) {
        println!(
            "\n{} benchmarks run (criterion shim — wall-clock means only)",
            self.ran
        );
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}
