//! # mrlr — Greedy and Local Ratio Algorithms in the MapReduce Model
//!
//! Facade crate re-exporting the whole workspace. See the individual crates:
//!
//! * [`mapreduce`] — the MPC/MapReduce cluster simulator substrate.
//! * [`graph`] — weighted graphs and generators (`m = n^{1+c}` families).
//! * [`setsys`] — weighted set systems and generators.
//! * [`core`] — the paper's algorithms (sequential, randomized, MapReduce).
//! * [`baselines`] — literature baselines from Figure 1 (filtering, Luby).

pub use mrlr_baselines as baselines;
pub use mrlr_core as core;
pub use mrlr_graph as graph;
pub use mrlr_mapreduce as mapreduce;
pub use mrlr_setsys as setsys;
